//! Core-status feedback — the abstraction the paper says existing NIC
//! frameworks lack.
//!
//! §2.3: "they lack one key abstraction necessary for centralized
//! preemptive scheduling. Host cores need to provide feedback to the
//! SmartNIC at a fine granularity. More specifically, they have to
//! indicate whether they are busy or ready to receive more work."
//!
//! [`CoreFeedback`] is that message; [`FeedbackChannel`] models the
//! transport with its path-dependent latency and keeps the dispatcher's
//! view of each core honestly *stale* by exactly that latency — the "gap"
//! in the paper's title.

use sim_core::{SimDuration, SimTime};

/// One core-status message from a worker to the NIC scheduler.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CoreFeedback {
    /// Reporting worker.
    pub worker: usize,
    /// Requests the worker currently holds (running + stashed).
    pub occupancy: u32,
    /// Whether the worker is executing right now.
    pub busy: bool,
    /// When the worker emitted this report.
    pub reported_at: SimTime,
}

/// The dispatcher-side view of worker state, fed by delayed reports.
///
/// `view(worker)` returns the *latest delivered* report, which lags truth
/// by the channel latency — quantifying how informed the scheduler can be
/// on each hardware path (packet 2.56 µs vs CXL vs coherent memory).
#[derive(Debug)]
pub struct FeedbackChannel {
    latency: SimDuration,
    /// In-flight reports, ordered by delivery time.
    in_flight: std::collections::VecDeque<(SimTime, CoreFeedback)>,
    delivered: Vec<Option<CoreFeedback>>,
    /// Total reports sent.
    pub sent: u64,
}

impl FeedbackChannel {
    /// A channel for `n_workers` workers with one-way `latency`.
    pub fn new(n_workers: usize, latency: SimDuration) -> FeedbackChannel {
        FeedbackChannel {
            latency,
            in_flight: std::collections::VecDeque::new(),
            delivered: vec![None; n_workers],
            sent: 0,
        }
    }

    /// Worker side: emit a report at `now`.
    pub fn send(&mut self, now: SimTime, feedback: CoreFeedback) {
        debug_assert_eq!(feedback.reported_at, now, "report timestamp mismatch");
        self.in_flight.push_back((now + self.latency, feedback));
        self.sent += 1;
    }

    /// Dispatcher side: absorb every report that has arrived by `now`,
    /// then read the freshest view of `worker`.
    pub fn view(&mut self, now: SimTime, worker: usize) -> Option<CoreFeedback> {
        self.absorb(now);
        self.delivered[worker]
    }

    /// Absorb all reports delivered by `now`.
    pub fn absorb(&mut self, now: SimTime) {
        while let Some(&(deliver_at, fb)) = self.in_flight.front() {
            if deliver_at > now {
                break;
            }
            self.in_flight.pop_front();
            self.delivered[fb.worker] = Some(fb);
        }
    }

    /// How stale the dispatcher's view of `worker` is at `now`.
    pub fn staleness(&mut self, now: SimTime, worker: usize) -> Option<SimDuration> {
        self.view(now, worker)
            .map(|fb| now.saturating_duration_since(fb.reported_at))
    }

    /// The channel's one-way latency.
    pub fn latency(&self) -> SimDuration {
        self.latency
    }

    /// Reports still in transit (a probe-friendly gauge of how much of
    /// the scheduler's picture is currently stuck in the gap).
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// The worst staleness across all workers at `now`: the scheduler's
    /// most out-of-date belief. `None` until every worker has reported.
    pub fn worst_staleness(&mut self, now: SimTime) -> Option<SimDuration> {
        self.absorb(now);
        self.delivered
            .iter()
            .map(|slot| slot.map(|fb| now.saturating_duration_since(fb.reported_at)))
            .collect::<Option<Vec<_>>>()
            .and_then(|v| v.into_iter().max())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> SimTime {
        SimTime::from_micros(n)
    }

    fn fb(worker: usize, occupancy: u32, at: SimTime) -> CoreFeedback {
        CoreFeedback {
            worker,
            occupancy,
            busy: occupancy > 0,
            reported_at: at,
        }
    }

    #[test]
    fn reports_arrive_after_latency() {
        let mut ch = FeedbackChannel::new(2, SimDuration::from_micros_f64(2.56));
        ch.send(us(0), fb(0, 1, us(0)));
        assert_eq!(ch.view(us(2), 0), None, "still in flight");
        let seen = ch.view(SimTime::from_nanos(2_560), 0).unwrap();
        assert_eq!(seen.occupancy, 1);
    }

    #[test]
    fn freshest_report_wins() {
        let mut ch = FeedbackChannel::new(1, SimDuration::from_micros(1));
        ch.send(us(0), fb(0, 3, us(0)));
        ch.send(us(5), fb(0, 0, us(5)));
        assert_eq!(ch.view(us(2), 0).unwrap().occupancy, 3);
        assert_eq!(ch.view(us(6), 0).unwrap().occupancy, 0);
    }

    #[test]
    fn staleness_is_the_gap() {
        // The scheduler's knowledge lags truth by at least the path
        // latency — the paper's central "gap".
        let mut ch = FeedbackChannel::new(1, SimDuration::from_micros_f64(2.56));
        ch.send(us(10), fb(0, 1, us(10)));
        let staleness = ch.staleness(us(20), 0).unwrap();
        assert_eq!(staleness, SimDuration::from_micros(10));
        assert!(staleness >= ch.latency());
    }

    #[test]
    fn per_worker_views_are_independent() {
        let mut ch = FeedbackChannel::new(3, SimDuration::ZERO);
        ch.send(us(1), fb(0, 1, us(1)));
        ch.send(us(2), fb(2, 4, us(2)));
        assert_eq!(ch.view(us(3), 0).unwrap().occupancy, 1);
        assert_eq!(ch.view(us(3), 1), None);
        assert_eq!(ch.view(us(3), 2).unwrap().occupancy, 4);
        assert_eq!(ch.sent, 2);
    }

    #[test]
    fn coherent_channel_is_nearly_live() {
        let mut fast = FeedbackChannel::new(1, SimDuration::from_nanos(120));
        fast.send(us(0), fb(0, 2, us(0)));
        assert!(fast.view(SimTime::from_nanos(120), 0).is_some());
    }

    #[test]
    fn in_flight_tracks_undelivered_reports() {
        let mut ch = FeedbackChannel::new(2, SimDuration::from_micros(5));
        ch.send(us(0), fb(0, 1, us(0)));
        ch.send(us(1), fb(1, 2, us(1)));
        assert_eq!(ch.in_flight(), 2);
        ch.absorb(us(5));
        assert_eq!(ch.in_flight(), 1, "first report delivered at t=5us");
        ch.absorb(us(6));
        assert_eq!(ch.in_flight(), 0);
    }

    #[test]
    fn worst_staleness_needs_full_coverage_then_takes_the_max() {
        let mut ch = FeedbackChannel::new(2, SimDuration::ZERO);
        ch.send(us(0), fb(0, 1, us(0)));
        assert_eq!(ch.worst_staleness(us(10)), None, "worker 1 never reported");
        ch.send(us(8), fb(1, 0, us(8)));
        assert_eq!(
            ch.worst_staleness(us(10)),
            Some(SimDuration::from_micros(10))
        );
    }
}
