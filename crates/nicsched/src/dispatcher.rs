//! The centralized, preemptive dispatcher — placement-independent.
//!
//! This is the logic the paper moves between silicon: request queuing,
//! request selection, core selection, and the outstanding-requests cap of
//! the queuing optimization (§3.4.5). `systems::shinjuku` runs it on a
//! host core behind shared-memory queues; `systems::offload` runs it on
//! the SmartNIC ARM cores behind packet I/O; `systems::ideal_nic` runs it
//! in a line-rate ASIC model. The scheduling *semantics* are identical —
//! which is precisely the paper's claim that only the placement and the
//! feedback path change.
//!
//! The dispatcher is a pure decision structure: embeddings feed it
//! arrivals and worker feedback, it returns [`Assignment`]s; the embedding
//! charges compute time and transport latency for each decision.
//!
//! Policy hooks: each dispatch goes through the policy's
//! [`pick_next`](SchedPolicy::pick_next) (which may bind a worker) and
//! [`should_preempt`](SchedPolicy::should_preempt) (whose grant is stamped
//! on the assigned task); completions, preemptions, and core-status
//! reports are mirrored to [`feedback`](SchedPolicy::feedback).
//!
//! # Failure recovery
//!
//! With [`enable_recovery`](Dispatcher::enable_recovery) the dispatcher
//! runs a [`HealthTracker`] over its workers: every completion, preemption
//! notice, or heartbeat renews the worker's lease, and
//! [`check_health`](Dispatcher::check_health) (driven by the embedding's
//! periodic event) suspects workers whose lease expired while they held
//! outstanding work. A suspected worker's in-flight requests are
//! *reclaimed*: released from its outstanding count, re-queued through the
//! policy, and re-dispatched to healthy workers — instead of stranding
//! until the client-side retry timeout. Exactly-once accounting handles
//! the false positive: if the suspect was merely slow and later reports a
//! completion (or preemption) for a reclaimed request, the stale report is
//! absorbed into the recovery ledger ([`DispatchStats::late_duplicates`])
//! without double-completing, and the worker is readmitted.

use std::collections::BTreeMap;

use sim_core::{SimDuration, SimTime};

use crate::admission::{Admission, AdmissionPolicy};
use crate::feedback::CoreFeedback;
use crate::policy::{FeedbackEvent, RunningTask, SchedPolicy};
use crate::recovery::{HealthTracker, RecoveryPolicy, WorkerHealth};
use crate::select::{CoreSelector, WorkerView};
use crate::task::Task;

/// A dispatch decision: send `task` to `worker`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Assignment {
    /// Target worker index.
    pub worker: usize,
    /// The request to run (its [`Task::preempt`] carries the policy's
    /// slice grant for this dispatch).
    pub task: Task,
}

/// Counters the embeddings export into run metrics.
#[derive(Clone, Copy, Debug, Default)]
pub struct DispatchStats {
    /// New requests admitted to the queue.
    pub admitted: u64,
    /// Assignments issued.
    pub assigned: u64,
    /// Completions processed.
    pub completions: u64,
    /// Preemption notifications processed (tasks re-queued).
    pub requeued: u64,
    /// Requests refused by the admission policy.
    pub shed: u64,
    /// In-flight requests reclaimed from suspected workers and re-queued
    /// for re-dispatch (also counted in `requeued`).
    pub recovered: u64,
    /// Late done/preempt reports from a worker a request was already
    /// reclaimed from, absorbed by the exactly-once filter.
    pub late_duplicates: u64,
}

/// Outcome of [`Dispatcher::offer`]: either the request was admitted (with
/// any assignments it unlocked), or the admission policy shed it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AdmitOutcome {
    /// The request entered the queue; these assignments were issued.
    Admitted(Vec<Assignment>),
    /// The request was refused. `nack` says whether the policy wants the
    /// client notified with an early NACK.
    Shed {
        /// Send an early NACK back to the client.
        nack: bool,
    },
}

#[derive(Clone, Copy, Debug)]
struct WorkerState {
    outstanding: u32,
    last_req: Option<u64>,
    idle_since: Option<SimTime>,
}

/// A dispatched request the dispatcher is still waiting on: which worker
/// owns it and the task as last dispatched (so a reclaim can re-queue it
/// and a completion can report the true service to the policy — the
/// wire's Done frame does not carry the service time back).
#[derive(Clone, Copy, Debug)]
struct InFlight {
    worker: usize,
    task: Task,
}

/// The centralized dispatcher state machine.
///
/// # Example
///
/// ```
/// use nicsched::{Dispatcher, Fcfs, LeastOutstanding, Task};
/// use sim_core::{SimDuration, SimTime};
///
/// // Two workers, up to two outstanding requests each (§3.4.5).
/// let mut d = Dispatcher::new(2, 2, Fcfs::new(), LeastOutstanding);
/// let t0 = SimTime::ZERO;
/// let task = Task::new(1, 0, SimDuration::from_micros(5), t0, t0, 64);
///
/// let assignments = d.on_request(t0, task);
/// assert_eq!(assignments.len(), 1);
/// let a = assignments[0];
///
/// // The worker finishes; the dispatcher is ready for more.
/// let next = d.on_done(SimTime::from_micros(10), a.worker, a.task.req_id);
/// assert!(next.is_empty());
/// assert_eq!(d.total_outstanding(), 0);
/// ```
#[derive(Debug)]
pub struct Dispatcher<P, S> {
    policy: P,
    selector: S,
    workers: Vec<WorkerState>,
    outstanding_cap: u32,
    admission: AdmissionPolicy,
    // Stale-feedback fallback: when set, worker selection ignores the
    // configured selector and hashes the request id RSS-style, because the
    // informed state it would steer on is known to be dead.
    degraded: bool,
    // Workers quarantined from selection (crashed or silent too long).
    excluded: Vec<bool>,
    // Every dispatched request the dispatcher is waiting on, keyed by
    // request id (deterministic iteration order for reclaims).
    in_flight: BTreeMap<u64, InFlight>,
    // The failure detector; `None` (recovery off) is bit-identical to the
    // pre-recovery dispatcher.
    health: Option<HealthTracker>,
    // Exactly-once filter: how many zombie copies of (req_id, worker) are
    // owed a stale report — one per reclaim of that request from that
    // worker. A late report matching an entry is absorbed instead of
    // re-counted. Counted, not a set: a request can be reclaimed from the
    // same worker twice across a readmission, and from several workers
    // along a re-dispatch chain.
    reclaimed: BTreeMap<(u64, usize), u32>,
    /// Exported counters.
    pub stats: DispatchStats,
}

impl<P: SchedPolicy, S: CoreSelector> Dispatcher<P, S> {
    /// A dispatcher over `n_workers` workers, keeping at most
    /// `outstanding_cap` requests outstanding per worker (1 = no stashing;
    /// the paper finds 5 best for its 1 µs workload, §4.1). Calls the
    /// policy's [`init`](SchedPolicy::init) with the worker count.
    pub fn new(n_workers: usize, outstanding_cap: u32, mut policy: P, selector: S) -> Self {
        assert!(n_workers > 0, "dispatcher needs at least one worker");
        assert!(outstanding_cap >= 1, "outstanding cap must be at least 1");
        policy.init(n_workers);
        Dispatcher {
            policy,
            selector,
            workers: vec![
                WorkerState {
                    outstanding: 0,
                    last_req: None,
                    idle_since: Some(SimTime::ZERO)
                };
                n_workers
            ],
            outstanding_cap,
            admission: AdmissionPolicy::Open,
            degraded: false,
            excluded: vec![false; n_workers],
            in_flight: BTreeMap::new(),
            health: None,
            reclaimed: BTreeMap::new(),
            stats: DispatchStats::default(),
        }
    }

    /// Arm NIC-side failure detection with the given lease policy. Until
    /// this is called the dispatcher behaves bit-identically to the
    /// pre-recovery code path.
    pub fn enable_recovery(&mut self, policy: RecoveryPolicy) {
        self.health = Some(HealthTracker::new(self.workers.len(), policy));
    }

    /// The failure detector, when recovery is armed.
    pub fn health(&self) -> Option<&HealthTracker> {
        self.health.as_ref()
    }

    /// Whether NIC-side failure detection is armed.
    pub fn recovery_enabled(&self) -> bool {
        self.health.is_some()
    }

    /// Replace the admission policy (default: [`AdmissionPolicy::Open`]).
    pub fn set_admission(&mut self, admission: AdmissionPolicy) {
        self.admission = admission;
    }

    /// Enter or leave stale-feedback fallback: while degraded, worker
    /// selection hashes the request id over the non-excluded workers
    /// instead of consulting the configured selector.
    pub fn set_degraded(&mut self, degraded: bool) {
        self.degraded = degraded;
    }

    /// Whether the dispatcher is currently in hashed fallback.
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// Quarantine `worker` from (or readmit it to) selection. Outstanding
    /// bookkeeping is untouched: work already on the worker stays counted
    /// until it completes or the run ends.
    pub fn set_excluded(&mut self, worker: usize, excluded: bool) {
        self.excluded[worker] = excluded;
    }

    /// Whether `worker` is currently quarantined.
    pub fn is_excluded(&self, worker: usize) -> bool {
        self.excluded[worker]
    }

    /// A new request arrived from the networking subsystem. Bypasses
    /// admission control — the pre-fault-injection entry point, kept for
    /// embeddings that do their own shedding (or none).
    pub fn on_request(&mut self, now: SimTime, task: Task) -> Vec<Assignment> {
        self.policy.enqueue(now, task);
        self.stats.admitted += 1;
        self.drain(now)
    }

    /// A new request arrived; run it through the admission policy first.
    pub fn offer(&mut self, now: SimTime, task: Task) -> AdmitOutcome {
        match self.admission.admit(self.policy.len()) {
            Admission::Accept => AdmitOutcome::Admitted(self.on_request(now, task)),
            Admission::ShedSilent => {
                self.stats.shed += 1;
                AdmitOutcome::Shed { nack: false }
            }
            Admission::ShedNack => {
                self.stats.shed += 1;
                AdmitOutcome::Shed { nack: true }
            }
        }
    }

    /// A worker reported finishing `req_id`.
    pub fn on_done(&mut self, now: SimTime, worker: usize, req_id: u64) -> Vec<Assignment> {
        if self.is_stale_report(worker, req_id) {
            return self.absorb_stale_report(now, worker, req_id);
        }
        self.note_activity(now, worker);
        self.stats.completions += 1;
        let w = &mut self.workers[worker];
        debug_assert!(
            w.outstanding > 0,
            "completion from a worker with nothing outstanding"
        );
        w.outstanding = w.outstanding.saturating_sub(1);
        w.last_req = Some(req_id);
        if w.outstanding == 0 {
            w.idle_since = Some(now);
        }
        let service = self
            .in_flight
            .remove(&req_id)
            .map(|e| e.task.service)
            .unwrap_or(SimDuration::ZERO);
        self.policy.feedback(
            now,
            &FeedbackEvent::Completed {
                worker,
                req_id,
                service,
            },
        );
        self.drain(now)
    }

    /// A worker reported preempting `task` (with `remaining` updated); the
    /// task returns to the queue and may later run on any worker the
    /// policy allows.
    pub fn on_preempted(&mut self, now: SimTime, worker: usize, task: Task) -> Vec<Assignment> {
        if self.is_stale_report(worker, task.req_id) {
            return self.absorb_stale_report(now, worker, task.req_id);
        }
        self.note_activity(now, worker);
        self.stats.requeued += 1;
        let w = &mut self.workers[worker];
        debug_assert!(
            w.outstanding > 0,
            "preemption from a worker with nothing outstanding"
        );
        w.outstanding = w.outstanding.saturating_sub(1);
        w.last_req = Some(task.req_id);
        if w.outstanding == 0 {
            w.idle_since = Some(now);
        }
        self.in_flight.remove(&task.req_id);
        self.policy.feedback(
            now,
            &FeedbackEvent::Preempted {
                worker,
                req_id: task.req_id,
                remaining: task.remaining,
            },
        );
        self.policy.requeue(now, task);
        self.drain(now)
    }

    /// A heartbeat frame arrived from `worker` (the lease-renewal signal
    /// on the completion path). Renews the lease; if this readmits a
    /// suspected worker, queued work may flow to it again.
    pub fn on_heartbeat(&mut self, now: SimTime, worker: usize) -> Vec<Assignment> {
        if self.note_activity(now, worker) {
            self.drain(now)
        } else {
            Vec::new()
        }
    }

    /// Advance the failure detector to `now` (driven by the embedding's
    /// periodic health event — the suspicion "timer" is this event, not a
    /// wall clock). Newly suspected workers have their in-flight requests
    /// reclaimed and re-dispatched to healthy workers. No-op when recovery
    /// is off.
    pub fn check_health(&mut self, now: SimTime) -> Vec<Assignment> {
        let Some(h) = self.health.as_mut() else {
            return Vec::new();
        };
        let outstanding: Vec<u32> = self.workers.iter().map(|w| w.outstanding).collect();
        let suspects = h.check(now, &outstanding);
        if suspects.is_empty() {
            return Vec::new();
        }
        for w in suspects {
            self.policy.worker_down(now, w);
            self.reclaim(now, w);
        }
        self.drain(now)
    }

    /// Release every in-flight request charged to `worker` and re-queue it
    /// through the policy, marking each for the exactly-once filter.
    fn reclaim(&mut self, now: SimTime, worker: usize) {
        let ids: Vec<u64> = self
            .in_flight
            .iter()
            .filter(|(_, e)| e.worker == worker)
            .map(|(&id, _)| id)
            .collect();
        for id in ids {
            let e = self.in_flight.remove(&id).expect("collected above");
            let w = &mut self.workers[worker];
            w.outstanding = w.outstanding.saturating_sub(1);
            if w.outstanding == 0 {
                w.idle_since = Some(now);
            }
            *self.reclaimed.entry((id, worker)).or_insert(0) += 1;
            self.stats.recovered += 1;
            self.stats.requeued += 1;
            self.policy.requeue(now, e.task);
        }
    }

    /// NI-fabric dedup for integrated designs (RPCValet): a delayed
    /// delivery of a request whose lease was reclaimed from `worker` is a
    /// zombie copy — the queue already re-dispatched the request. Returns
    /// `true` when the delivery must be dropped, consuming one reclaim
    /// marker. Unlike a report, a delivery is NIC-side and proves nothing
    /// about the worker, so this never readmits.
    pub fn absorb_stale_delivery(&mut self, worker: usize, req_id: u64) -> bool {
        if !self.is_stale_report(worker, req_id) {
            return false;
        }
        if let Some(c) = self.reclaimed.get_mut(&(req_id, worker)) {
            *c -= 1;
            if *c == 0 {
                self.reclaimed.remove(&(req_id, worker));
            }
        }
        self.stats.late_duplicates += 1;
        true
    }

    /// A report for `req_id` from `worker` is stale when the request was
    /// reclaimed from that worker and is not currently charged to it (the
    /// charge was released at reclaim time). The second clause keeps the
    /// accounting exact if a reclaimed request was later re-assigned to
    /// the same worker after readmission: the live copy's report then
    /// takes the normal path and the leftover zombie report is absorbed,
    /// in either arrival order.
    fn is_stale_report(&self, worker: usize, req_id: u64) -> bool {
        self.reclaimed.contains_key(&(req_id, worker))
            && self.in_flight.get(&req_id).map(|e| e.worker) != Some(worker)
    }

    /// Absorb a stale report: count it in the recovery ledger, never
    /// double-complete. The report is still proof of life — the suspicion
    /// was a false positive — so the worker is readmitted.
    fn absorb_stale_report(&mut self, now: SimTime, worker: usize, req_id: u64) -> Vec<Assignment> {
        if let Some(c) = self.reclaimed.get_mut(&(req_id, worker)) {
            *c -= 1;
            if *c == 0 {
                self.reclaimed.remove(&(req_id, worker));
            }
        }
        self.stats.late_duplicates += 1;
        if self.note_activity(now, worker) {
            self.drain(now)
        } else {
            Vec::new()
        }
    }

    /// Record proof of life; fires `worker_up` and returns `true` on
    /// readmission.
    fn note_activity(&mut self, now: SimTime, worker: usize) -> bool {
        let readmitted = match self.health.as_mut() {
            Some(h) => h.on_activity(now, worker),
            None => false,
        };
        if readmitted {
            self.policy.worker_up(now, worker);
        }
        readmitted
    }

    /// A core-status report arrived over the feedback channel; mirror it
    /// to the policy and re-run assignment (the report may change what the
    /// policy is willing to dispatch).
    pub fn on_feedback(&mut self, now: SimTime, report: CoreFeedback) -> Vec<Assignment> {
        self.policy.feedback(now, &FeedbackEvent::Core(report));
        self.drain(now)
    }

    /// Re-run assignment after external scheduler-state changes — a
    /// quarantine lift or a degraded-mode flip — that may have unparked
    /// queued work without any request/completion event to trigger a
    /// drain.
    pub fn kick(&mut self, now: SimTime) -> Vec<Assignment> {
        self.drain(now)
    }

    /// Issue assignments while the queue is non-empty, a worker is below
    /// the outstanding cap, and the policy keeps picking.
    fn drain(&mut self, now: SimTime) -> Vec<Assignment> {
        let mut out = Vec::new();
        loop {
            if self.policy.is_empty() {
                break;
            }
            // Gather non-quarantined, health-selectable candidates below
            // the cap.
            let candidates: Vec<WorkerView> = self
                .workers
                .iter()
                .enumerate()
                .filter(|(i, w)| {
                    !self.excluded[*i]
                        && w.outstanding < self.outstanding_cap
                        && self.health.as_ref().map_or(true, |h| h.selectable(*i))
                })
                .map(|(i, w)| WorkerView {
                    worker: i,
                    outstanding: w.outstanding,
                    last_req: w.last_req,
                    idle_since: w.idle_since,
                    health: self
                        .health
                        .as_ref()
                        .map_or(WorkerHealth::Healthy, |h| h.state_of(i)),
                })
                .collect();
            if candidates.is_empty() {
                break;
            }
            let Some(pick) = self.policy.pick_next(now, &candidates) else {
                // The policy parks the queue: none of its queued work may
                // run on any candidate (e.g. dFCFS with busy home cores).
                break;
            };
            let task = pick.task;
            let worker = match pick.worker {
                // Policy-bound worker: must be one of the candidates it
                // was shown. Binding overrides the selector *and* the
                // degraded hash — a worker-binding policy (dFCFS) is
                // already feedback-free.
                Some(w) => {
                    assert!(
                        candidates.iter().any(|c| c.worker == w),
                        "policy picked worker {w} outside the candidate set"
                    );
                    w
                }
                None => {
                    let chosen = if self.degraded {
                        // RSS-style static hashing: informed state is
                        // stale, so spread by request id alone.
                        (task.req_id.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33) as usize
                            % candidates.len()
                    } else {
                        self.selector.select(&candidates, task.req_id)
                    };
                    candidates[chosen].worker
                }
            };
            // The policy rules on this dispatch's slice budget; the grant
            // rides the task to the worker.
            let decision = self.policy.should_preempt(
                now,
                &RunningTask {
                    worker,
                    task: &task,
                },
            );
            let mut task = task;
            task.preempt = decision;
            let w = &mut self.workers[worker];
            w.outstanding += 1;
            w.idle_since = None;
            self.stats.assigned += 1;
            if let Some(h) = self.health.as_mut() {
                // Lease renewal: the worker owes this request back within
                // the suspicion window from now.
                h.on_assign(now, worker);
            }
            self.in_flight
                .insert(task.req_id, InFlight { worker, task });
            out.push(Assignment { worker, task });
        }
        out
    }

    /// Requests waiting in the centralized queue.
    pub fn queue_len(&self) -> usize {
        self.policy.len()
    }

    /// Outstanding count the dispatcher believes `worker` has.
    pub fn outstanding(&self, worker: usize) -> u32 {
        self.workers[worker].outstanding
    }

    /// Total outstanding across all workers.
    pub fn total_outstanding(&self) -> u32 {
        self.workers.iter().map(|w| w.outstanding).sum()
    }

    /// Number of workers.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// The configured outstanding cap.
    pub fn outstanding_cap(&self) -> u32 {
        self.outstanding_cap
    }

    /// Access the queue policy (e.g. for depth statistics).
    pub fn policy(&self) -> &P {
        &self.policy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disciplines::{Dfcfs, Srpt};
    use crate::policy::{Fcfs, PreemptDecision};
    use crate::select::LeastOutstanding;
    use sim_core::{SimDuration, SimTime};

    fn disp(workers: usize, cap: u32) -> Dispatcher<Fcfs, LeastOutstanding> {
        Dispatcher::new(workers, cap, Fcfs::new(), LeastOutstanding)
    }

    fn task(id: u64) -> Task {
        Task::new(
            id,
            0,
            SimDuration::from_micros(5),
            SimTime::ZERO,
            SimTime::ZERO,
            0,
        )
    }

    fn us(n: u64) -> SimTime {
        SimTime::from_micros(n)
    }

    #[test]
    fn request_to_idle_worker_assigns_immediately() {
        let mut d = disp(2, 1);
        let a = d.on_request(us(0), task(1));
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].task.req_id, 1);
        assert_eq!(d.total_outstanding(), 1);
        assert_eq!(d.queue_len(), 0);
    }

    #[test]
    fn cap_one_queues_when_all_busy() {
        let mut d = disp(2, 1);
        assert_eq!(d.on_request(us(0), task(1)).len(), 1);
        assert_eq!(d.on_request(us(0), task(2)).len(), 1);
        // Both workers at cap: third request waits.
        assert_eq!(d.on_request(us(0), task(3)).len(), 0);
        assert_eq!(d.queue_len(), 1);
        // A completion frees a slot and drains the queue.
        let a = d.on_done(us(1), 0, 1);
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].worker, 0);
        assert_eq!(a[0].task.req_id, 3);
    }

    #[test]
    fn queuing_optimization_stashes_up_to_cap() {
        // §3.4.5: the dispatcher keeps multiple requests outstanding per
        // worker so the worker never waits for the NIC round trip.
        let mut d = disp(1, 5);
        for id in 1..=7 {
            d.on_request(us(0), task(id));
        }
        assert_eq!(d.outstanding(0), 5, "exactly cap outstanding");
        assert_eq!(d.queue_len(), 2, "the rest wait centrally");
    }

    #[test]
    fn preemption_requeues_at_tail_and_any_worker_may_resume() {
        let mut d = disp(2, 1);
        d.on_request(us(0), task(1));
        d.on_request(us(0), task(2));
        d.on_request(us(0), task(3)); // queued
                                      // Worker 0 preempts task 1; task 3 takes its slot (FIFO head),
                                      // task 1 goes to the tail.
        let t1 = task(1).after_preemption(SimDuration::from_micros(3));
        let a = d.on_preempted(us(10), 0, t1);
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].task.req_id, 3);
        assert_eq!(a[0].worker, 0);
        // Worker 1 finishes task 2; preempted task 1 resumes there.
        let a = d.on_done(us(11), 1, 2);
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].task.req_id, 1);
        assert_eq!(a[0].worker, 1, "resumed on a different worker");
        assert_eq!(a[0].task.remaining, SimDuration::from_micros(2));
    }

    #[test]
    fn least_outstanding_balances() {
        let mut d = disp(3, 2);
        let mut assigned = vec![0usize; 3];
        for id in 0..6 {
            for a in d.on_request(us(0), task(id)) {
                assigned[a.worker] += 1;
            }
        }
        assert_eq!(assigned, vec![2, 2, 2], "even spread under the cap");
    }

    #[test]
    fn stats_account_for_everything() {
        let mut d = disp(1, 1);
        d.on_request(us(0), task(1));
        d.on_request(us(0), task(2));
        let t1 = task(1).after_preemption(SimDuration::from_micros(1));
        d.on_preempted(us(1), 0, t1);
        d.on_done(us(2), 0, 2);
        d.on_done(us(3), 0, 1);
        assert_eq!(d.stats.admitted, 2);
        assert_eq!(d.stats.requeued, 1);
        assert_eq!(d.stats.completions, 2);
        // assignments: t1, then t2 (after preempt), then t1 again = 3
        assert_eq!(d.stats.assigned, 3);
        assert_eq!(d.total_outstanding(), 0);
        assert_eq!(d.queue_len(), 0);
    }

    #[test]
    fn work_conservation_no_idle_worker_with_queued_work() {
        let mut d = disp(4, 2);
        // Fill unevenly, then verify the invariant after every event.
        for id in 0..20 {
            d.on_request(us(0), task(id));
            let any_below_cap = (0..4).any(|w| d.outstanding(w) < 2);
            assert!(
                !(any_below_cap && d.queue_len() > 0),
                "queued work while a worker has slack"
            );
        }
    }

    #[test]
    fn offer_respects_admission_cap() {
        let mut d = disp(1, 1);
        d.set_admission(crate::AdmissionPolicy::NackShed { cap: 2 });
        // Worker takes the first; the next two queue up to the cap.
        assert!(matches!(d.offer(us(0), task(1)), AdmitOutcome::Admitted(a) if a.len() == 1));
        assert!(matches!(d.offer(us(0), task(2)), AdmitOutcome::Admitted(_)));
        assert!(matches!(d.offer(us(0), task(3)), AdmitOutcome::Admitted(_)));
        // Queue is at cap 2: the fourth is shed with a NACK.
        assert_eq!(d.offer(us(0), task(4)), AdmitOutcome::Shed { nack: true });
        assert_eq!(d.stats.shed, 1);
        assert_eq!(d.queue_len(), 2);
        // Silent tail-drop variant sheds without the NACK flag.
        d.set_admission(crate::AdmissionPolicy::TailDrop { cap: 2 });
        assert_eq!(d.offer(us(0), task(5)), AdmitOutcome::Shed { nack: false });
        assert_eq!(d.stats.shed, 2);
    }

    #[test]
    fn excluded_worker_receives_nothing() {
        let mut d = disp(2, 1);
        d.set_excluded(0, true);
        for id in 1..=4 {
            for a in d.on_request(us(0), task(id)) {
                assert_eq!(a.worker, 1, "quarantined worker 0 must stay idle");
            }
        }
        assert_eq!(d.outstanding(0), 0);
        assert_eq!(d.outstanding(1), 1);
        assert_eq!(
            d.queue_len(),
            3,
            "work waits rather than hit the dead worker"
        );
        // Readmission drains the backlog to worker 0 as well.
        d.set_excluded(0, false);
        let a = d.on_done(us(1), 1, 1);
        assert!(a.iter().any(|a| a.worker == 0) || d.outstanding(0) > 0 || !a.is_empty());
    }

    #[test]
    fn all_workers_excluded_parks_the_queue() {
        let mut d = disp(2, 1);
        d.set_excluded(0, true);
        d.set_excluded(1, true);
        assert!(d.on_request(us(0), task(1)).is_empty());
        assert_eq!(d.queue_len(), 1);
        // Readmitting a worker lets the next dispatcher event drain it.
        d.set_excluded(1, false);
        let a = d.on_request(us(1), task(2));
        assert_eq!(a.len(), 1, "cap 1: exactly one task flows");
        assert_eq!(a[0].worker, 1);
        assert_eq!(a[0].task.req_id, 1, "the parked task goes first");
        assert_eq!(d.queue_len(), 1);
    }

    #[test]
    fn degraded_mode_hashes_instead_of_selecting() {
        let spread = || {
            let mut d = disp(4, 64);
            d.set_degraded(true);
            let mut per = vec![0usize; 4];
            for id in 0..256 {
                for a in d.on_request(us(0), task(id)) {
                    per[a.worker] += 1;
                }
            }
            per
        };
        let hashed = spread();
        assert_eq!(hashed, spread(), "hashing is deterministic");
        assert!(
            hashed.iter().all(|&n| n > 20),
            "hash spreads load: {hashed:?}"
        );
        // The RSS property informed selection lacks: the same request id
        // lands on the same worker regardless of load history.
        let mut d = disp(4, 2);
        d.set_degraded(true);
        let first = d.on_request(us(0), task(42))[0].worker;
        d.on_done(us(1), first, 42);
        d.on_request(us(2), task(7)); // perturb the load state
        let again = d.on_request(us(3), task(42))[0].worker;
        assert_eq!(first, again, "static hash ignores load state");
    }

    #[test]
    fn degraded_hashing_avoids_excluded_workers() {
        let mut d = disp(3, 64);
        d.set_degraded(true);
        d.set_excluded(1, true);
        for id in 0..64 {
            for a in d.on_request(us(0), task(id)) {
                assert_ne!(a.worker, 1);
            }
        }
        assert!(d.is_degraded());
        assert!(d.is_excluded(1));
    }

    #[test]
    fn worker_binding_policies_override_the_selector() {
        // dFCFS binds every task to its RSS home; the dispatcher must
        // honour the binding and park the queue when homes are busy.
        let mut d = Dispatcher::new(4, 1, Dfcfs::new(), LeastOutstanding);
        let mut homes = std::collections::BTreeMap::new();
        for id in 0..32 {
            for a in d.on_request(us(id), task(id)) {
                homes.insert(a.task.req_id, a.worker);
            }
        }
        // Drain the rest through completions; every req lands on one home.
        let mut now = 100;
        while d.total_outstanding() > 0 {
            let w = (0..4).find(|&w| d.outstanding(w) > 0).unwrap();
            // Find which req is on w from our map... instead just pop via
            // on_done with any req we recorded for w.
            let (&rid, _) = homes.iter().find(|(_, &hw)| hw == w).unwrap();
            homes.remove(&rid);
            for a in d.on_done(us(now), w, rid) {
                homes.insert(a.task.req_id, a.worker);
            }
            now += 1;
        }
        assert_eq!(d.queue_len(), 0);
        assert_eq!(d.stats.assigned, 32);
    }

    #[test]
    fn preempt_grants_ride_assignments() {
        // SRPT grants no budget before its first completion sample, then
        // budgets every dispatch.
        let mut d = Dispatcher::new(1, 1, Srpt::new(), LeastOutstanding);
        let a = d.on_request(us(0), task(1));
        assert_eq!(a[0].task.preempt, PreemptDecision::Inherit);
        let a = d.on_done(us(10), 0, 1); // feedback: service = 5us
        assert!(a.is_empty());
        let a = d.on_request(us(11), task(2));
        assert_eq!(
            a[0].task.preempt,
            PreemptDecision::Budget(SimDuration::from_micros(10)),
            "200% of the learned 5us estimate"
        );
    }

    #[test]
    fn completions_feed_the_policy_the_true_service() {
        let mut d = Dispatcher::new(2, 1, Srpt::new(), LeastOutstanding);
        let a = d.on_request(us(0), task(7));
        d.on_done(us(9), a[0].worker, 7);
        assert_eq!(
            d.policy().estimate(),
            SimDuration::from_micros(5),
            "in-flight map recovered the service time at completion"
        );
    }

    #[test]
    fn core_feedback_reaches_the_policy_and_redrains() {
        let mut d = disp(1, 1);
        let report = CoreFeedback {
            worker: 0,
            occupancy: 3,
            busy: true,
            reported_at: us(5),
        };
        let a = d.on_feedback(us(5), report);
        assert!(
            a.is_empty(),
            "nothing queued: feedback alone assigns nothing"
        );
    }

    fn recovery_disp(workers: usize, cap: u32) -> Dispatcher<Fcfs, LeastOutstanding> {
        let mut d = disp(workers, cap);
        d.enable_recovery(crate::RecoveryPolicy::paper_default());
        d
    }

    #[test]
    fn suspected_worker_orphans_are_redispatched() {
        let mut d = recovery_disp(2, 1);
        let a = d.on_request(us(0), task(1));
        assert_eq!(a.len(), 1);
        let victim = a[0].worker;
        // Worker goes silent past the 30us suspicion window: the health
        // check reclaims its request and re-dispatches to the other worker.
        let a = d.check_health(us(40));
        assert_eq!(a.len(), 1, "orphan re-dispatched");
        assert_eq!(a[0].task.req_id, 1);
        assert_ne!(a[0].worker, victim, "suspect is out of the candidate set");
        assert_eq!(d.outstanding(victim), 0, "charge released at reclaim");
        assert_eq!(d.stats.recovered, 1);
        assert_eq!(d.stats.requeued, 1);
        assert_eq!(
            d.health().unwrap().state_of(victim),
            crate::WorkerHealth::Suspected
        );
        // The healthy copy completes normally: exactly one completion.
        let done = d.on_done(us(45), a[0].worker, 1);
        assert!(done.is_empty());
        assert_eq!(d.stats.completions, 1);
    }

    #[test]
    fn late_completion_is_absorbed_exactly_once_and_readmits() {
        let mut d = recovery_disp(2, 1);
        let a = d.on_request(us(0), task(1));
        let victim = a[0].worker;
        let re = d.check_health(us(40));
        let healthy = re[0].worker;
        // The stalled-but-alive victim wakes up and reports the very
        // completion we already re-dispatched: absorbed, never counted as
        // a completion, and the false positive readmits the worker.
        let out = d.on_done(us(50), victim, 1);
        assert_eq!(d.stats.completions, 0, "stale report must not complete");
        assert_eq!(d.stats.late_duplicates, 1);
        assert!(d.health().unwrap().selectable(victim), "readmitted");
        assert!(out.is_empty(), "nothing queued to flow");
        // The live copy still completes exactly once.
        d.on_done(us(55), healthy, 1);
        assert_eq!(d.stats.completions, 1);
        assert_eq!(d.stats.late_duplicates, 1);
        assert_eq!(d.total_outstanding(), 0);
    }

    #[test]
    fn heartbeat_keeps_a_busy_worker_healthy() {
        let mut d = recovery_disp(1, 1);
        d.on_request(us(0), task(1));
        // Heartbeats every 5us: the lease never lapses even though the
        // request takes far longer than the suspicion window.
        for t in (5..100).step_by(5) {
            assert!(d.on_heartbeat(us(t), 0).is_empty());
            assert!(d.check_health(us(t)).is_empty());
        }
        assert_eq!(d.stats.recovered, 0);
        assert_eq!(
            d.health().unwrap().state_of(0),
            crate::WorkerHealth::Healthy
        );
    }

    #[test]
    fn reclaim_to_same_worker_after_readmission_accounts_exactly() {
        // The ambiguous case: a reclaimed request is re-assigned to the
        // very worker it was reclaimed from (after readmission). Two
        // physical copies live on one worker, but only one charge — both
        // report orders must keep the ledger exact.
        let mut d = recovery_disp(1, 1);
        d.on_request(us(0), task(1));
        assert!(d.check_health(us(40)).is_empty(), "sole worker suspected");
        assert_eq!(d.queue_len(), 1, "orphan parked: no healthy candidate");
        // Heartbeat readmits; the parked orphan flows back to worker 0.
        let a = d.on_heartbeat(us(45), 0);
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].worker, 0);
        // First report: the charged live copy completes normally.
        d.on_done(us(50), 0, 1);
        assert_eq!(d.stats.completions, 1);
        assert_eq!(d.outstanding(0), 0);
        // Second report: the zombie copy is absorbed.
        d.on_done(us(51), 0, 1);
        assert_eq!(d.stats.completions, 1, "no double completion");
        assert_eq!(d.stats.late_duplicates, 1);
        assert_eq!(d.outstanding(0), 0, "no underflow");
    }

    #[test]
    fn recovery_off_ignores_health_entry_points() {
        let mut d = disp(2, 1);
        d.on_request(us(0), task(1));
        assert!(d.check_health(us(1_000)).is_empty());
        assert!(d.on_heartbeat(us(1_000), 0).is_empty());
        assert_eq!(d.stats.recovered, 0);
        assert!(d.health().is_none());
        assert!(!d.recovery_enabled());
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = disp(0, 1);
    }

    #[test]
    #[should_panic(expected = "outstanding cap")]
    fn zero_cap_rejected() {
        let _ = disp(1, 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::policy::{Fcfs, ShortestRemaining};
    use crate::registry::PolicyRegistry;
    use crate::select::{LeastOutstanding, RoundRobin};
    use proptest::prelude::*;
    use sim_core::{SimDuration, SimTime};

    /// Drive a dispatcher with a random interleaving of arrivals and
    /// worker completions, checking the conservation and cap invariants
    /// after every step. `work_conserving` asserts the no-slack invariant,
    /// which worker-binding policies (dFCFS) legitimately violate.
    fn check<P: SchedPolicy, S: CoreSelector>(
        ops: &[u8],
        d: &mut Dispatcher<P, S>,
        workers: usize,
        cap: u32,
        work_conserving: bool,
    ) -> Result<(), TestCaseError> {
        let mut in_flight: Vec<Vec<Task>> = vec![Vec::new(); workers];
        let mut next_id = 1u64;
        let mut t = 0u64;
        let absorb = |assignments: Vec<Assignment>,
                      in_flight: &mut Vec<Vec<Task>>|
         -> Result<(), TestCaseError> {
            for a in assignments {
                in_flight[a.worker].push(a.task);
                prop_assert!(
                    in_flight[a.worker].len() <= cap as usize,
                    "cap violated at worker {}",
                    a.worker
                );
            }
            Ok(())
        };
        for &op in ops {
            t += 1;
            let now = SimTime::from_micros(t);
            match op % 3 {
                // Arrival.
                0 | 1 => {
                    let service = SimDuration::from_micros(1 + u64::from(op) % 50);
                    let task = Task::new(next_id, 0, service, now, now, 0);
                    next_id += 1;
                    let a = d.on_request(now, task);
                    absorb(a, &mut in_flight)?;
                }
                // Completion or preemption at a pseudo-random worker.
                _ => {
                    let w = (op as usize / 3) % workers;
                    if let Some(task) = in_flight[w].pop() {
                        let a = if op % 2 == 0 {
                            d.on_done(now, w, task.req_id)
                        } else {
                            d.on_preempted(
                                now,
                                w,
                                task.after_preemption(SimDuration::from_nanos(500)),
                            )
                        };
                        absorb(a, &mut in_flight)?;
                    }
                }
            }
            // Invariants after every step:
            let total_in_flight: usize = in_flight.iter().map(|v| v.len()).sum();
            prop_assert_eq!(
                d.total_outstanding() as usize,
                total_in_flight,
                "dispatcher bookkeeping out of sync"
            );
            // Conservation: admitted = queued + in flight + retired.
            let retired = d.stats.completions;
            prop_assert_eq!(
                d.stats.admitted + d.stats.requeued,
                d.queue_len() as u64 + d.stats.assigned,
                "admission/assignment ledger must balance with the queue"
            );
            let _ = retired;
            if work_conserving {
                // Work conservation: never queued work alongside capacity.
                let slack = (0..workers).any(|w| d.outstanding(w) < cap);
                prop_assert!(
                    !(slack && d.queue_len() > 0),
                    "queued work while a worker has slack"
                );
            }
        }
        Ok(())
    }

    fn drive(ops: Vec<u8>, workers: usize, cap: u32, srf: bool) -> Result<(), TestCaseError> {
        if srf {
            let mut d = Dispatcher::new(
                workers,
                cap,
                ShortestRemaining::new(),
                RoundRobin::default(),
            );
            check(&ops, &mut d, workers, cap, true)
        } else {
            let mut d = Dispatcher::new(workers, cap, Fcfs::new(), LeastOutstanding);
            check(&ops, &mut d, workers, cap, true)
        }
    }

    /// Same invariant run for every standard-registry policy, via the
    /// boxed path experiments actually use.
    fn drive_spec(ops: Vec<u8>, workers: usize, cap: u32, spec: &str) -> Result<(), TestCaseError> {
        let policy = PolicyRegistry::standard().build(spec).expect(spec);
        let mut d = Dispatcher::new(workers, cap, policy, LeastOutstanding);
        // dFCFS may park work while its home cores are busy.
        let work_conserving = spec != "dfcfs";
        check(&ops, &mut d, workers, cap, work_conserving)
    }

    proptest! {
        #[test]
        fn fcfs_invariants_hold_under_random_interleavings(
            ops in proptest::collection::vec(any::<u8>(), 1..300),
            workers in 1usize..6,
            cap in 1u32..5,
        ) {
            drive(ops, workers, cap, false)?;
        }

        #[test]
        fn srf_invariants_hold_under_random_interleavings(
            ops in proptest::collection::vec(any::<u8>(), 1..300),
            workers in 1usize..6,
            cap in 1u32..5,
        ) {
            drive(ops, workers, cap, true)?;
        }

        #[test]
        fn every_registry_policy_holds_the_ledger_invariants(
            ops in proptest::collection::vec(any::<u8>(), 1..200),
            workers in 1usize..6,
            cap in 1u32..5,
            which in 0usize..8,
        ) {
            let specs = [
                "fcfs",
                "cfcfs",
                "dfcfs",
                "srf",
                "srpt",
                "edf:deadline=50us",
                "class-priority:cutoff=10us",
                "wfq:w=4,1,1",
            ];
            drive_spec(ops, workers, cap, specs[which])?;
        }

        /// With recovery armed and workers going arbitrarily silent, the
        /// admission/assignment ledger must still balance, no request may
        /// complete more often than it was assigned, and stale reports
        /// must never exceed reclaims.
        #[test]
        fn recovery_keeps_the_ledger_exact_under_random_silence(
            ops in proptest::collection::vec(any::<u8>(), 1..300),
            workers in 1usize..5,
            cap in 1u32..4,
            which in 0usize..8,
        ) {
            let specs = [
                "fcfs",
                "cfcfs",
                "dfcfs",
                "srf",
                "srpt",
                "edf:deadline=50us",
                "class-priority:cutoff=10us",
                "wfq:w=4,1,1",
            ];
            let policy = PolicyRegistry::standard().build(specs[which]).unwrap();
            let mut d = Dispatcher::new(workers, cap, policy, LeastOutstanding);
            d.enable_recovery(crate::RecoveryPolicy::with_suspicion(
                SimDuration::from_micros(5),
            ));
            // Mirror of physical copies per worker — reclaimed zombies
            // stay physical until their report is delivered, so the
            // mirror may exceed the dispatcher's charge but never the
            // other way around.
            let mut phys: Vec<Vec<Task>> = vec![Vec::new(); workers];
            let mut completions_per_req: BTreeMap<u64, u64> = BTreeMap::new();
            let mut next_id = 1u64;
            let mut t = 0u64;
            for &op in &ops {
                t += u64::from(op % 7) + 1;
                let now = SimTime::from_micros(t);
                let absorb = |a: Vec<Assignment>, phys: &mut Vec<Vec<Task>>| {
                    for x in a {
                        phys[x.worker].push(x.task);
                    }
                };
                match op % 4 {
                    0 | 1 => {
                        let service = SimDuration::from_micros(1 + u64::from(op) % 50);
                        let task = Task::new(next_id, 0, service, now, now, 0);
                        next_id += 1;
                        let a = d.on_request(now, task);
                        absorb(a, &mut phys);
                    }
                    2 => {
                        let w = (op as usize / 4) % workers;
                        if let Some(task) = phys[w].pop() {
                            let before = d.stats.completions;
                            let a = d.on_done(now, w, task.req_id);
                            if d.stats.completions > before {
                                *completions_per_req.entry(task.req_id).or_insert(0) += 1;
                            }
                            absorb(a, &mut phys);
                        }
                    }
                    _ => {
                        let a = d.check_health(now);
                        absorb(a, &mut phys);
                    }
                }
                prop_assert_eq!(
                    d.stats.admitted + d.stats.requeued,
                    d.queue_len() as u64 + d.stats.assigned,
                    "ledger must balance under reclaims"
                );
                prop_assert!(d.stats.late_duplicates <= d.stats.recovered);
                let physical: usize = phys.iter().map(|v| v.len()).sum();
                prop_assert!(
                    (d.total_outstanding() as usize) <= physical,
                    "dispatcher charges more than physically dispatched"
                );
            }
            // Deliver every remaining physical report: zombies are
            // absorbed, live copies complete; nothing completes twice.
            t += 1_000;
            for w in 0..workers {
                while let Some(task) = phys[w].pop() {
                    t += 1;
                    let before = d.stats.completions;
                    let a = d.on_done(SimTime::from_micros(t), w, task.req_id);
                    if d.stats.completions > before {
                        *completions_per_req.entry(task.req_id).or_insert(0) += 1;
                    }
                    for x in a {
                        phys[x.worker].push(x.task);
                    }
                }
            }
            for (req, n) in &completions_per_req {
                prop_assert!(*n <= 1, "request {} completed {} times", req, n);
            }
        }
    }
}
