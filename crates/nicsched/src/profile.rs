//! NIC profiles: where the dispatcher runs and what it costs to talk.
//!
//! §5.1 enumerates the hardware axes that decide whether NIC-side
//! scheduling wins: scheduling compute (ARM software vs line-rate
//! ASIC/FPGA), the dispatcher↔worker communication path (packets over the
//! NIC vs CXL vs coherent shared memory), and the preemption path. A
//! [`NicProfile`] bundles one point in that space; the offload system is
//! generic over it, which is how the ablation experiments sweep the axes.

use cpu_model::{CoreSpec, InterruptPath, TimerMode};
use sim_core::SimDuration;

use crate::params;

/// How fast the NIC-resident scheduler retires its pipeline stages.
#[derive(Clone, Copy, Debug)]
pub enum SchedCompute {
    /// The Stingray prototype: DPDK software on ARM A72 cores, split into
    /// networker / queue-manager / TX / RX stages (§3.4.1).
    ArmCores(CoreSpec),
    /// A line-rate ASIC/FPGA scheduler (§5.1(1)): every stage costs a
    /// fixed, tiny latency and never becomes the bottleneck.
    Asic {
        /// Per-operation latency of the hardware pipeline.
        per_op: SimDuration,
    },
}

impl SchedCompute {
    /// Time to retire a stage whose cost is `host_cycles` on the host
    /// baseline.
    pub fn stage_cost(&self, host_cycles: u64) -> SimDuration {
        match *self {
            SchedCompute::ArmCores(spec) => spec.cycles(host_cycles),
            SchedCompute::Asic { per_op } => per_op,
        }
    }
}

/// One complete hardware design point for the NIC-side scheduler.
#[derive(Clone, Copy, Debug)]
pub struct NicProfile {
    /// Human-readable name for reports.
    pub name: &'static str,
    /// Scheduling compute model.
    pub compute: SchedCompute,
    /// One-way dispatcher → worker *transport* latency, charged after the
    /// sender's packet-construction compute. For the Stingray, TX build
    /// (≈680 ns) + this transport = the measured 2.56 µs (§3.3, §5.1).
    pub to_worker: SimDuration,
    /// One-way worker → dispatcher transport latency (after the worker's
    /// packet-construction cost).
    pub from_worker: SimDuration,
    /// Latency of one hop between dispatcher pipeline stages (shared
    /// memory between ARM cores; zero inside an ASIC).
    pub stage_hop: SimDuration,
    /// How preemption interrupts reach workers.
    pub interrupt: InterruptPath,
}

impl NicProfile {
    /// The Broadcom Stingray PS225 as measured in the paper: ARM compute,
    /// 2.56 µs packet path each way (§3.3), worker-local Dune-mapped APIC
    /// timers for preemption (§3.4.4).
    pub fn stingray() -> NicProfile {
        NicProfile {
            name: "stingray",
            compute: SchedCompute::ArmCores(CoreSpec::nic_arm()),
            to_worker: params::ARM_TO_HOST_TRANSPORT,
            from_worker: params::HOST_TO_ARM_TRANSPORT,
            stage_hop: params::ARM_QUEUE_HOP,
            interrupt: InterruptPath::LocalTimer(TimerMode::DuneMapped),
        }
    }

    /// Stingray compute with a CXL-class coherent link to the host
    /// (§5.1(2)): same ARM dispatcher, ~400 ns one-way instead of 2.56 µs.
    pub fn stingray_cxl() -> NicProfile {
        NicProfile {
            name: "stingray+cxl",
            to_worker: params::CXL_ONE_WAY,
            from_worker: params::CXL_ONE_WAY,
            ..NicProfile::stingray()
        }
    }

    /// The paper's ideal SmartNIC (§3.1, §6): line-rate ASIC scheduling,
    /// coherent shared-memory feedback, direct interrupts to host cores.
    pub fn ideal() -> NicProfile {
        NicProfile {
            name: "ideal",
            compute: SchedCompute::Asic {
                per_op: params::ASIC_SCHED_PER_REQ,
            },
            to_worker: params::COHERENT_ONE_WAY,
            from_worker: params::COHERENT_ONE_WAY,
            stage_hop: SimDuration::ZERO,
            interrupt: InterruptPath::DirectFromNic {
                latency: params::COHERENT_ONE_WAY,
            },
        }
    }

    /// A Stingray forced to preempt by sending packets instead of local
    /// timers — the design §3.4.4 rejects ("given the communication
    /// latency of 2.56 µs, this would not be efficient"). Used by the
    /// preemption-path ablation.
    pub fn stingray_packet_preemption() -> NicProfile {
        NicProfile {
            name: "stingray-pkt-preempt",
            interrupt: InterruptPath::PacketFromNic {
                one_way: params::ARM_HOST_ONE_WAY,
            },
            ..NicProfile::stingray()
        }
    }

    /// Round-trip dispatcher↔worker latency (excluding compute).
    pub fn round_trip(&self) -> SimDuration {
        self.to_worker + self.from_worker
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stingray_matches_paper_numbers() {
        let p = NicProfile::stingray();
        // Build + transport reproduces the measured 2.56 µs one-way (§3.3):
        let tx_build = p.compute.stage_cost(params::ARM_TX_BUILD_CYCLES);
        assert_eq!(
            (tx_build + p.to_worker).as_nanos(),
            params::ARM_HOST_ONE_WAY.as_nanos(),
            "ARM→host: construct + traverse = 2.56us"
        );
        assert_eq!(
            (params::WORKER_TX_COST + p.from_worker).as_nanos(),
            params::ARM_HOST_ONE_WAY.as_nanos(),
            "host→ARM: construct + traverse = 2.56us"
        );
        assert!(matches!(p.compute, SchedCompute::ArmCores(_)));
        assert!(matches!(
            p.interrupt,
            InterruptPath::LocalTimer(TimerMode::DuneMapped)
        ));
    }

    #[test]
    fn ideal_dominates_stingray_on_every_axis() {
        let s = NicProfile::stingray();
        let i = NicProfile::ideal();
        assert!(i.to_worker < s.to_worker);
        assert!(i.from_worker < s.from_worker);
        assert!(i.stage_hop < s.stage_hop);
        assert!(
            i.compute.stage_cost(params::ARM_TX_BUILD_CYCLES)
                < s.compute.stage_cost(params::ARM_TX_BUILD_CYCLES)
        );
    }

    #[test]
    fn asic_cost_is_flat() {
        let asic = SchedCompute::Asic {
            per_op: SimDuration::from_nanos(10),
        };
        assert_eq!(asic.stage_cost(100), asic.stage_cost(100_000));
    }

    #[test]
    fn arm_cost_scales_with_cycles() {
        let arm = SchedCompute::ArmCores(CoreSpec::nic_arm());
        assert!(arm.stage_cost(1000) > arm.stage_cost(100));
    }

    #[test]
    fn cxl_variant_only_changes_transport() {
        let s = NicProfile::stingray();
        let c = NicProfile::stingray_cxl();
        assert!(c.to_worker < s.to_worker);
        assert_eq!(
            c.compute.stage_cost(params::ARM_TX_BUILD_CYCLES),
            s.compute.stage_cost(params::ARM_TX_BUILD_CYCLES)
        );
    }
}
