//! Calibration constants — the single source of every latency/cost number
//! in the reproduction.
//!
//! Two kinds of numbers live here:
//!
//! * **Paper-sourced** — taken verbatim from the text, cited by section.
//! * **Fitted** — not reported by the paper; chosen so the simulated
//!   systems reproduce the *shapes* of Figures 2–6 (see DESIGN.md §4).
//!   Each is marked `fitted` in its doc comment.

use sim_core::SimDuration;

/// One-way ARM-CPU ↔ host-CPU communication latency through the Stingray:
/// "The ARM CPU to host CPU communication latency is 2.56 µs" (§3.3) —
/// §5.1 clarifies this covers *both* constructing the packet and its
/// one-way traversal of the NIC.
pub const ARM_HOST_ONE_WAY: SimDuration = SimDuration::from_nanos(2_560);

/// Pure transport share of the ARM → host path: [`ARM_HOST_ONE_WAY`]
/// minus the ARM TX core's packet-construction time (≈ 680 ns), so that
/// build + transport reproduces the measured 2.56 µs exactly.
pub const ARM_TO_HOST_TRANSPORT: SimDuration = SimDuration::from_nanos(1_880);

/// Pure transport share of the host → ARM path: [`ARM_HOST_ONE_WAY`]
/// minus the worker's packet-construction time ([`WORKER_TX_COST`]).
pub const HOST_TO_ARM_TRANSPORT: SimDuration = SimDuration::from_nanos(2_380);

/// Host Shinjuku dispatcher capacity: "Each scheduling core can handle 5M
/// requests per second" (§1). We charge the dispatcher 200 ns of busy time
/// per request, split across enqueue/assign/completion below.
pub const HOST_DISPATCH_PER_REQ: SimDuration = SimDuration::from_nanos(200);

/// Host dispatcher: cost to ingest one new request from the networker
/// (fitted share of [`HOST_DISPATCH_PER_REQ`]).
pub const HOST_DISPATCH_ENQUEUE: SimDuration = SimDuration::from_nanos(60);

/// Host dispatcher: cost to select a worker and hand off one request
/// (fitted share of [`HOST_DISPATCH_PER_REQ`]).
pub const HOST_DISPATCH_ASSIGN: SimDuration = SimDuration::from_nanos(80);

/// Host dispatcher: cost to process one completion/preemption notification
/// (fitted share of [`HOST_DISPATCH_PER_REQ`]).
pub const HOST_DISPATCH_COMPLETE: SimDuration = SimDuration::from_nanos(60);

/// Host networking subsystem per-packet parse/steer cost (fitted; ~345
/// cycles at 2.3 GHz, consistent with a DPDK+UDP fast path).
pub const HOST_NET_PER_PACKET: SimDuration = SimDuration::from_nanos(150);

/// Visibility latency of one inter-core shared-memory queue hop on the
/// host (producer write → consumer poll observes). Fitted so that the
/// networker → dispatcher → worker chain plus the return hop adds ≈ 2 µs
/// of tail latency for minimal-work requests, the §2.2 measurement.
pub const HOST_QUEUE_HOP: SimDuration = SimDuration::from_nanos(450);

/// Default preemption time slice (§4.1: "The preemption time slice is
/// 10 µs").
pub const TIME_SLICE: SimDuration = SimDuration::from_micros(10);

/// Worker cost to build and push one response/notification packet onto its
/// TX path (fitted; DPDK tx-burst of a small UDP frame).
pub const WORKER_TX_COST: SimDuration = SimDuration::from_nanos(180);

/// Worker cost to parse one received assignment before starting work
/// (fitted).
pub const WORKER_RX_COST: SimDuration = SimDuration::from_nanos(120);

/// ARM networking-subsystem per-packet parse cost, in host-baseline cycles
/// (fitted; runs on a [`cpu_model::CoreSpec::nic_arm`] core whose work
/// factor makes this ≈ 350 ns of ARM time).
pub const ARM_NET_PARSE_CYCLES: u64 = 350;

/// ARM queue-manager core: cycles per queue operation (enqueue, dequeue +
/// worker selection, or completion bookkeeping). Fitted → ≈ 140 ns per op
/// on the ARM core, ≈ 2.4 M req/s stage capacity.
pub const ARM_QUEUE_OP_CYCLES: u64 = 140;

/// ARM TX core: cycles to construct and send one packet to a worker.
/// Fitted → ≈ 680 ns on the ARM core, making TX the bottleneck stage at
/// ≈ 1.45 M req/s — the §4.1/Figure 6 dispatcher bottleneck ("due to the
/// high overhead of constructing and sending packets", §3.4.1).
pub const ARM_TX_BUILD_CYCLES: u64 = 680;

/// ARM RX core: cycles to poll and parse one worker response/notification
/// (fitted → ≈ 300 ns on the ARM core).
pub const ARM_RX_PARSE_CYCLES: u64 = 300;

/// Visibility latency of the shared-memory queues between the three ARM
/// dispatcher cores (§3.4.1: "These three cores communicate via shared
/// memory"). Fitted: A72 cross-core line transfer plus polling.
pub const ARM_QUEUE_HOP: SimDuration = SimDuration::from_nanos(250);

/// PCIe DMA latency between the NIC and host memory (fitted: one PCIe x8
/// round half; typical ~900 ns posted-write visibility).
pub const PCIE_DMA: SimDuration = SimDuration::from_nanos(900);

/// Client ↔ server one-way propagation excluding serialization (in-rack:
/// cable + PHY). The systems build their links via
/// [`nic_model::Link::ten_gbe`], which uses this value. Fitted, and
/// irrelevant to the figures — it shifts all curves by a constant.
pub const NETWORK_PROPAGATION: SimDuration = SimDuration::from_nanos(500);

/// Default outstanding-request cap for the queuing optimization: "it is
/// best to set it to 5" (§4.1). `OffloadConfig::paper` takes the cap per
/// figure caption; this is the recommended general-purpose value.
pub const DEFAULT_OUTSTANDING: u32 = 5;

/// Cost for an idle core to steal one request from another core's queue
/// (ZygOS-style work stealing, §2.1): cross-core synchronization plus
/// cache-line ping-pong. Fitted; §2.2(4) notes "the high overhead of work
/// stealing render\[s\] ZygOS unusable" at high stealing rates.
pub const WORK_STEAL_COST: SimDuration = SimDuration::from_nanos(600);

/// CXL-class NIC↔host one-way latency for the ideal-NIC ablation (§5.1:
/// "likely a few hundred nanoseconds to a microsecond for a one-way
/// trip").
pub const CXL_ONE_WAY: SimDuration = SimDuration::from_nanos(400);

/// Coherent-shared-memory feedback latency for the ideal NIC (§3.1): the
/// cost of a cache-line transfer the NIC snoops.
pub const COHERENT_ONE_WAY: SimDuration = SimDuration::from_nanos(120);

/// Per-request scheduling cost of an ASIC/FPGA line-rate scheduler in the
/// ideal NIC (§5.1(1): "scheduling work is so simple and parallel that an
/// FPGA or ASIC is a better fit").
pub const ASIC_SCHED_PER_REQ: SimDuration = SimDuration::from_nanos(10);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_dispatcher_splits_sum_to_capacity() {
        assert_eq!(
            HOST_DISPATCH_ENQUEUE + HOST_DISPATCH_ASSIGN + HOST_DISPATCH_COMPLETE,
            HOST_DISPATCH_PER_REQ
        );
        // 200 ns per request = 5M requests/second (§1).
        let cap = 1.0 / HOST_DISPATCH_PER_REQ.as_secs_f64();
        assert!((cap - 5e6).abs() < 1.0, "dispatcher capacity {cap}");
    }

    #[test]
    fn paper_sourced_constants() {
        assert_eq!(ARM_HOST_ONE_WAY.as_nanos(), 2_560);
        assert_eq!(TIME_SLICE, SimDuration::from_micros(10));
        assert_eq!(DEFAULT_OUTSTANDING, 5);
    }

    #[test]
    fn arm_tx_is_the_bottleneck_stage() {
        use cpu_model::CoreSpec;
        let arm = CoreSpec::nic_arm();
        let tx = arm.cycles(ARM_TX_BUILD_CYCLES);
        assert!(tx > arm.cycles(ARM_QUEUE_OP_CYCLES));
        assert!(tx > arm.cycles(ARM_RX_PARSE_CYCLES));
        assert!(tx > arm.cycles(ARM_NET_PARSE_CYCLES));
        // Stage capacity ≈ 1.4–1.5 M req/s (Figures 3 & 6 plateau).
        let cap = 1.0 / tx.as_secs_f64();
        assert!((1.3e6..1.6e6).contains(&cap), "TX stage capacity {cap}");
    }

    #[test]
    fn network_propagation_matches_link_model() {
        // ten_gbe()'s arrival time minus its serialization time is the
        // propagation this constant documents.
        let mut link = nic_model::Link::ten_gbe();
        let ser = link.serialization(100);
        let arrive = link.transmit(sim_core::SimTime::ZERO, 100);
        assert_eq!(
            arrive.as_nanos() - ser.as_nanos(),
            NETWORK_PROPAGATION.as_nanos()
        );
    }

    #[test]
    fn comm_hierarchy_is_ordered() {
        // coherent < CXL < packet-over-NIC, as §5.1 argues.
        assert!(COHERENT_ONE_WAY < CXL_ONE_WAY);
        assert!(CXL_ONE_WAY < ARM_HOST_ONE_WAY);
    }
}
