//! Admission control for the centralized queue.
//!
//! §3.4.5's queuing cap bounds how much work the dispatcher will hold; what
//! happens *past* the cap is a policy choice this module makes explicit.
//! [`AdmissionPolicy::TailDrop`] silently discards the overflow the way a
//! full hardware ring does — the client only learns via timeout.
//! [`AdmissionPolicy::NackShed`] spends a response-path frame to tell the
//! client immediately (an early NACK), trading wire bytes for a much faster
//! client reaction than a timeout. [`AdmissionPolicy::Open`] is the
//! pre-fault-injection behaviour: the central queue grows without bound.

/// What the dispatcher does when a new request arrives while the central
/// queue is at its admission cap.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Admit everything; the central queue is unbounded (legacy default).
    #[default]
    Open,
    /// Silently drop requests arriving while `cap` requests are queued.
    TailDrop {
        /// Maximum central-queue length.
        cap: usize,
    },
    /// Shed requests over `cap`, answering each with an early NACK so the
    /// client can back off before its timeout fires.
    NackShed {
        /// Maximum central-queue length.
        cap: usize,
    },
}

/// The verdict for one arriving request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// Enqueue the request.
    Accept,
    /// Discard it without telling anyone.
    ShedSilent,
    /// Discard it and send the client a NACK.
    ShedNack,
}

impl AdmissionPolicy {
    /// Decide the fate of a request arriving while `queue_len` requests
    /// sit in the central queue.
    pub fn admit(&self, queue_len: usize) -> Admission {
        match *self {
            AdmissionPolicy::Open => Admission::Accept,
            AdmissionPolicy::TailDrop { cap } => {
                if queue_len < cap {
                    Admission::Accept
                } else {
                    Admission::ShedSilent
                }
            }
            AdmissionPolicy::NackShed { cap } => {
                if queue_len < cap {
                    Admission::Accept
                } else {
                    Admission::ShedNack
                }
            }
        }
    }

    /// Whether this policy never sheds.
    pub fn is_open(&self) -> bool {
        matches!(self, AdmissionPolicy::Open)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_always_accepts() {
        assert_eq!(AdmissionPolicy::Open.admit(usize::MAX), Admission::Accept);
        assert!(AdmissionPolicy::Open.is_open());
    }

    #[test]
    fn tail_drop_cuts_at_cap() {
        let p = AdmissionPolicy::TailDrop { cap: 4 };
        assert_eq!(p.admit(3), Admission::Accept);
        assert_eq!(p.admit(4), Admission::ShedSilent);
        assert!(!p.is_open());
    }

    #[test]
    fn nack_shed_notifies() {
        let p = AdmissionPolicy::NackShed { cap: 2 };
        assert_eq!(p.admit(1), Admission::Accept);
        assert_eq!(p.admit(2), Admission::ShedNack);
    }
}
