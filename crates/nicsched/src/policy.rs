//! Request-selection policies for the centralized queue.
//!
//! The prototype uses a single FIFO with tail re-enqueue on preemption
//! (§3.4.1). The informed-scheduling *framework* argument (§2.3, §5.1(4))
//! is that the NIC should make the policy programmable, so the queue is a
//! trait with several implementations; the systems default to [`Fcfs`] to
//! match the paper.

use std::collections::VecDeque;

use sim_core::stats::TimeWeighted;
use sim_core::{SimDuration, SimTime};

use crate::task::Task;

/// A request-selection policy over the centralized task queue.
pub trait SchedPolicy {
    /// Admit a new request.
    fn enqueue(&mut self, now: SimTime, task: Task);
    /// Re-admit a preempted request ("the dispatcher adds the request to
    /// the end of the task queue", §3.4.1 — but a policy may choose
    /// differently).
    fn requeue(&mut self, now: SimTime, task: Task);
    /// Select the next request to dispatch.
    fn dequeue(&mut self, now: SimTime) -> Option<Task>;
    /// Requests currently queued.
    fn len(&self) -> usize;
    /// True when no requests are queued.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Policy name for reports.
    fn name(&self) -> &'static str;
    /// Time-weighted mean queue depth since creation.
    fn mean_depth(&self, now: SimTime) -> f64;
    /// Peak queue depth.
    fn peak_depth(&self) -> usize;
}

/// Depth-tracking shared by the policy implementations.
#[derive(Debug)]
struct DepthStats {
    tw: TimeWeighted,
    peak: usize,
}

impl DepthStats {
    fn new() -> DepthStats {
        DepthStats {
            tw: TimeWeighted::new(SimTime::ZERO, 0.0),
            peak: 0,
        }
    }

    fn set(&mut self, now: SimTime, depth: usize) {
        self.tw.set(now, depth as f64);
        self.peak = self.peak.max(depth);
    }
}

/// First-come-first-served with tail re-enqueue — the paper's policy.
#[derive(Debug)]
pub struct Fcfs {
    queue: VecDeque<Task>,
    depth: DepthStats,
}

impl Fcfs {
    /// An empty FCFS queue.
    pub fn new() -> Fcfs {
        Fcfs {
            queue: VecDeque::new(),
            depth: DepthStats::new(),
        }
    }
}

impl Default for Fcfs {
    fn default() -> Self {
        Self::new()
    }
}

impl SchedPolicy for Fcfs {
    fn enqueue(&mut self, now: SimTime, task: Task) {
        self.queue.push_back(task);
        self.depth.set(now, self.queue.len());
    }

    fn requeue(&mut self, now: SimTime, task: Task) {
        // Preempted requests go to the tail, exactly as §3.4.1 describes.
        self.queue.push_back(task);
        self.depth.set(now, self.queue.len());
    }

    fn dequeue(&mut self, now: SimTime) -> Option<Task> {
        let t = self.queue.pop_front();
        if t.is_some() {
            self.depth.set(now, self.queue.len());
        }
        t
    }

    fn len(&self) -> usize {
        self.queue.len()
    }

    fn name(&self) -> &'static str {
        "fcfs"
    }

    fn mean_depth(&self, now: SimTime) -> f64 {
        self.depth.tw.mean_until(now)
    }

    fn peak_depth(&self) -> usize {
        self.depth.peak
    }
}

/// Shortest-remaining-work-first: dispatches the queued task with the
/// least remaining service. An idealized dispersion-killer the NIC could
/// implement given the service hints requests carry.
#[derive(Debug)]
pub struct ShortestRemaining {
    // Tie-break on (remaining, seq) for deterministic FIFO-within-equal.
    heap: std::collections::BinaryHeap<SrfEntry>,
    seq: u64,
    depth: DepthStats,
}

#[derive(Debug)]
struct SrfEntry {
    task: Task,
    seq: u64,
}

impl PartialEq for SrfEntry {
    fn eq(&self, other: &Self) -> bool {
        self.task.remaining == other.task.remaining && self.seq == other.seq
    }
}
impl Eq for SrfEntry {}
impl PartialOrd for SrfEntry {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for SrfEntry {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        // Reversed: smallest remaining (then earliest seq) pops first.
        (other.task.remaining, other.seq).cmp(&(self.task.remaining, self.seq))
    }
}

impl ShortestRemaining {
    /// An empty SRF queue.
    pub fn new() -> ShortestRemaining {
        ShortestRemaining {
            heap: std::collections::BinaryHeap::new(),
            seq: 0,
            depth: DepthStats::new(),
        }
    }

    fn push(&mut self, now: SimTime, task: Task) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(SrfEntry { task, seq });
        self.depth.set(now, self.heap.len());
    }
}

impl Default for ShortestRemaining {
    fn default() -> Self {
        Self::new()
    }
}

impl SchedPolicy for ShortestRemaining {
    fn enqueue(&mut self, now: SimTime, task: Task) {
        self.push(now, task);
    }

    fn requeue(&mut self, now: SimTime, task: Task) {
        self.push(now, task);
    }

    fn dequeue(&mut self, now: SimTime) -> Option<Task> {
        let t = self.heap.pop().map(|e| e.task);
        if t.is_some() {
            self.depth.set(now, self.heap.len());
        }
        t
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    fn name(&self) -> &'static str {
        "srf"
    }

    fn mean_depth(&self, now: SimTime) -> f64 {
        self.depth.tw.mean_until(now)
    }

    fn peak_depth(&self) -> usize {
        self.depth.peak
    }
}

/// Two-class priority: requests at or below the cutoff form the high
///-priority lane (FIFO each). Models latency-class co-location (§2.2:
/// "multiple co-located applications from different latency classes").
#[derive(Debug)]
pub struct ClassPriority {
    cutoff: SimDuration,
    short: VecDeque<Task>,
    long: VecDeque<Task>,
    depth: DepthStats,
}

impl ClassPriority {
    /// Requests with `service <= cutoff` take priority.
    pub fn new(cutoff: SimDuration) -> ClassPriority {
        ClassPriority {
            cutoff,
            short: VecDeque::new(),
            long: VecDeque::new(),
            depth: DepthStats::new(),
        }
    }

    fn push(&mut self, now: SimTime, task: Task) {
        if task.service <= self.cutoff {
            self.short.push_back(task);
        } else {
            self.long.push_back(task);
        }
        self.depth.set(now, self.len());
    }
}

impl SchedPolicy for ClassPriority {
    fn enqueue(&mut self, now: SimTime, task: Task) {
        self.push(now, task);
    }

    fn requeue(&mut self, now: SimTime, task: Task) {
        self.push(now, task);
    }

    fn dequeue(&mut self, now: SimTime) -> Option<Task> {
        let t = self.short.pop_front().or_else(|| self.long.pop_front());
        if t.is_some() {
            self.depth.set(now, self.len());
        }
        t
    }

    fn len(&self) -> usize {
        self.short.len() + self.long.len()
    }

    fn name(&self) -> &'static str {
        "class-priority"
    }

    fn mean_depth(&self, now: SimTime) -> f64 {
        self.depth.tw.mean_until(now)
    }

    fn peak_depth(&self) -> usize {
        self.depth.peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(id: u64, service_us: u64) -> Task {
        Task::new(
            id,
            0,
            SimDuration::from_micros(service_us),
            SimTime::ZERO,
            SimTime::ZERO,
            0,
        )
    }

    fn us(n: u64) -> SimTime {
        SimTime::from_micros(n)
    }

    #[test]
    fn fcfs_is_fifo() {
        let mut q = Fcfs::new();
        q.enqueue(us(0), task(1, 5));
        q.enqueue(us(1), task(2, 1));
        q.enqueue(us(2), task(3, 100));
        assert_eq!(q.dequeue(us(3)).unwrap().req_id, 1);
        assert_eq!(q.dequeue(us(3)).unwrap().req_id, 2);
        assert_eq!(q.dequeue(us(3)).unwrap().req_id, 3);
        assert!(q.dequeue(us(3)).is_none());
    }

    #[test]
    fn fcfs_requeue_goes_to_tail() {
        let mut q = Fcfs::new();
        q.enqueue(us(0), task(1, 5));
        q.enqueue(us(0), task(2, 5));
        let preempted = task(3, 100).after_preemption(SimDuration::from_micros(10));
        q.requeue(us(1), preempted);
        assert_eq!(q.dequeue(us(2)).unwrap().req_id, 1);
        assert_eq!(q.dequeue(us(2)).unwrap().req_id, 2);
        assert_eq!(
            q.dequeue(us(2)).unwrap().req_id,
            3,
            "preempted task at the tail"
        );
    }

    #[test]
    fn srf_prefers_least_remaining() {
        let mut q = ShortestRemaining::new();
        q.enqueue(us(0), task(1, 100));
        q.enqueue(us(0), task(2, 1));
        q.enqueue(us(0), task(3, 50));
        assert_eq!(q.dequeue(us(1)).unwrap().req_id, 2);
        assert_eq!(q.dequeue(us(1)).unwrap().req_id, 3);
        assert_eq!(q.dequeue(us(1)).unwrap().req_id, 1);
    }

    #[test]
    fn srf_ties_break_fifo() {
        let mut q = ShortestRemaining::new();
        for id in 1..=5 {
            q.enqueue(us(0), task(id, 7));
        }
        for id in 1..=5 {
            assert_eq!(q.dequeue(us(1)).unwrap().req_id, id);
        }
    }

    #[test]
    fn srf_considers_remaining_not_total() {
        let mut q = ShortestRemaining::new();
        // 100us task that has already run 95us beats a fresh 10us task.
        let mostly_done = task(1, 100).after_preemption(SimDuration::from_micros(95));
        q.requeue(us(0), mostly_done);
        q.enqueue(us(0), task(2, 10));
        assert_eq!(q.dequeue(us(1)).unwrap().req_id, 1);
    }

    #[test]
    fn class_priority_lets_shorts_jump() {
        let mut q = ClassPriority::new(SimDuration::from_micros(10));
        q.enqueue(us(0), task(1, 100)); // long
        q.enqueue(us(0), task(2, 5)); // short
        q.enqueue(us(0), task(3, 200)); // long
        q.enqueue(us(0), task(4, 5)); // short
        let order: Vec<u64> = std::iter::from_fn(|| q.dequeue(us(1)).map(|t| t.req_id)).collect();
        assert_eq!(order, vec![2, 4, 1, 3]);
    }

    #[test]
    fn depth_statistics_track() {
        let mut q = Fcfs::new();
        q.enqueue(us(0), task(1, 5));
        q.enqueue(us(10), task(2, 5));
        q.dequeue(us(20));
        q.dequeue(us(30));
        assert_eq!(q.peak_depth(), 2);
        // Depth: 1 on [0,10), 2 on [10,20), 1 on [20,30) -> mean 4/3 over 30us.
        let mean = q.mean_depth(us(30));
        assert!((mean - 4.0 / 3.0).abs() < 1e-9, "mean depth {mean}");
    }

    #[test]
    fn names_distinct() {
        assert_ne!(Fcfs::new().name(), ShortestRemaining::new().name());
        assert_eq!(
            ClassPriority::new(SimDuration::ZERO).name(),
            "class-priority"
        );
    }
}
