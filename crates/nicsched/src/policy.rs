//! Request-selection policies for the centralized queue.
//!
//! The prototype uses a single FIFO with tail re-enqueue on preemption
//! (§3.4.1). The informed-scheduling *framework* argument (§2.3, §5.1(4))
//! is that the NIC should make the policy programmable, so the queue is a
//! trait with several implementations; the systems default to [`Fcfs`] to
//! match the paper.
//!
//! # Hook lifecycle
//!
//! A policy plugs into the [`Dispatcher`](crate::Dispatcher) the way an
//! sched_ext scheduler plugs into the kernel: a fixed set of hooks, each
//! with a conservative default, so a minimal policy only implements the
//! queue itself.
//!
//! 1. [`init`](SchedPolicy::init) — once, with the worker count.
//! 2. [`enqueue`](SchedPolicy::enqueue) / [`requeue`](SchedPolicy::requeue)
//!    — every admission and every preemption re-admission.
//! 3. [`pick_next`](SchedPolicy::pick_next) — per dispatch opportunity,
//!    with the dispatchable workers in view; may bind the task to a
//!    specific worker (e.g. dFCFS) or leave core selection to the
//!    embedding's [`CoreSelector`](crate::CoreSelector).
//! 4. [`should_preempt`](SchedPolicy::should_preempt) — per dispatch, to
//!    grant the slice budget the worker will honour (the decision the
//!    embedding's static `time_slice` used to make alone).
//! 5. [`feedback`](SchedPolicy::feedback) — on every worker report
//!    (completion, preemption, core-status message), closing the paper's
//!    feedback loop into the policy itself.
//! 6. [`worker_down`](SchedPolicy::worker_down) /
//!    [`worker_up`](SchedPolicy::worker_up) — membership changes from the
//!    NIC's failure detector (see [`HealthTracker`](crate::HealthTracker)):
//!    a worker was suspected and its in-flight work reclaimed, or a
//!    suspected worker was readmitted. Policies with per-worker structure
//!    (dFCFS homes, WFQ lanes) or learned state (SRPT size estimates)
//!    react here; stateless queues ignore them.

use std::collections::VecDeque;

use sim_core::stats::TimeWeighted;
use sim_core::{SimDuration, SimTime};

use crate::feedback::CoreFeedback;
use crate::select::WorkerView;
use crate::task::Task;

/// A worker-side event delivered to the policy via
/// [`SchedPolicy::feedback`] — the fine-grained core-status channel of
/// §2.3, surfaced to the scheduling policy rather than consumed solely by
/// the dispatcher's bookkeeping.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FeedbackEvent {
    /// A core-status report arrived over the feedback channel.
    Core(CoreFeedback),
    /// `worker` finished `req_id` after `service` total work. The service
    /// time is what an informed NIC learns from completions — policies
    /// like SRPT build their size estimates from it.
    Completed {
        /// Reporting worker.
        worker: usize,
        /// The finished request.
        req_id: u64,
        /// Total intrinsic service of the finished request.
        service: SimDuration,
    },
    /// `worker` preempted `req_id` with `remaining` work still owed.
    Preempted {
        /// Reporting worker.
        worker: usize,
        /// The preempted request.
        req_id: u64,
        /// Work still owed after the slice.
        remaining: SimDuration,
    },
}

/// The dispatch [`SchedPolicy::should_preempt`] is deciding about: the
/// task about to start on `worker`.
#[derive(Debug)]
pub struct RunningTask<'a> {
    /// The worker the task was assigned to.
    pub worker: usize,
    /// The task about to run.
    pub task: &'a Task,
}

/// A policy's preemption ruling for one dispatch: the slice budget the
/// worker should honour before handing the request back.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PreemptDecision {
    /// Defer to the embedding's configured time slice (the paper's static
    /// 10 µs APIC timer, §3.4.4).
    Inherit,
    /// Grant exactly this much run time before preemption.
    Budget(SimDuration),
    /// Let the request run to completion.
    RunToCompletion,
}

impl PreemptDecision {
    /// Resolve against the embedding's configured slice: the effective
    /// `Option<slice>` the worker arms its timer with.
    pub fn resolve(self, configured: Option<SimDuration>) -> Option<SimDuration> {
        match self {
            PreemptDecision::Inherit => configured,
            PreemptDecision::Budget(d) => Some(d),
            PreemptDecision::RunToCompletion => None,
        }
    }

    /// Encode for the wire's one-byte grant field: 0 = inherit, 255 = run
    /// to completion, otherwise the budget in microseconds (1..=254,
    /// rounded to the nearest microsecond) — the protocol constraint a
    /// real NIC header imposes on grant precision.
    pub fn grant_code(self) -> u8 {
        match self {
            PreemptDecision::Inherit => 0,
            PreemptDecision::RunToCompletion => 255,
            PreemptDecision::Budget(d) => {
                let us = (d.as_nanos() + 500) / 1_000;
                us.clamp(1, 254) as u8
            }
        }
    }

    /// Decode the wire's grant byte (inverse of
    /// [`grant_code`](PreemptDecision::grant_code), up to rounding).
    pub fn from_grant_code(code: u8) -> PreemptDecision {
        match code {
            0 => PreemptDecision::Inherit,
            255 => PreemptDecision::RunToCompletion,
            us => PreemptDecision::Budget(SimDuration::from_micros(us as u64)),
        }
    }
}

/// One dispatch selected by [`SchedPolicy::pick_next`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Pick {
    /// The task to dispatch.
    pub task: Task,
    /// `Some(w)`: the policy binds the task to worker `w`, which must be
    /// one of the candidates it was shown (e.g. dFCFS home queues).
    /// `None`: the embedding's core selector chooses.
    pub worker: Option<usize>,
}

impl Pick {
    /// A pick that leaves worker selection to the embedding.
    pub fn any(task: Task) -> Pick {
        Pick { task, worker: None }
    }

    /// A pick bound to a specific worker.
    pub fn on(task: Task, worker: usize) -> Pick {
        Pick {
            task,
            worker: Some(worker),
        }
    }
}

/// A request-selection policy over the centralized task queue.
///
/// Only the queue methods ([`enqueue`](SchedPolicy::enqueue),
/// [`requeue`](SchedPolicy::requeue), [`dequeue`](SchedPolicy::dequeue),
/// [`len`](SchedPolicy::len), [`label`](SchedPolicy::label), depth stats)
/// are mandatory; the scheduling hooks default to the paper's behaviour —
/// [`pick_next`](SchedPolicy::pick_next) pops the queue and lets the core
/// selector place it, [`should_preempt`](SchedPolicy::should_preempt)
/// inherits the embedding's slice, [`feedback`](SchedPolicy::feedback) is
/// ignored — so a policy that implements nothing extra schedules exactly
/// like the pre-hook dispatcher.
pub trait SchedPolicy {
    /// Called once when a dispatcher adopts the policy, with the number of
    /// workers it will schedule over. Policies with per-worker structure
    /// (e.g. dFCFS home queues) size themselves here.
    fn init(&mut self, n_workers: usize) {
        let _ = n_workers;
    }
    /// Admit a new request.
    fn enqueue(&mut self, now: SimTime, task: Task);
    /// Re-admit a preempted request ("the dispatcher adds the request to
    /// the end of the task queue", §3.4.1 — but a policy may choose
    /// differently).
    fn requeue(&mut self, now: SimTime, task: Task);
    /// Select the next request to dispatch, ignoring worker state.
    fn dequeue(&mut self, now: SimTime) -> Option<Task>;
    /// Select the next dispatch given the workers currently able to accept
    /// work. Returning `None` parks the queue until the next scheduler
    /// event even if tasks are queued (a policy must only do so when none
    /// of its queued work may run on any candidate).
    fn pick_next(&mut self, now: SimTime, candidates: &[WorkerView]) -> Option<Pick> {
        let _ = candidates;
        self.dequeue(now).map(Pick::any)
    }
    /// A worker-side event arrived (completion, preemption, core status).
    fn feedback(&mut self, now: SimTime, event: &FeedbackEvent) {
        let _ = (now, event);
    }
    /// Rule on the slice budget for a dispatch about to start.
    fn should_preempt(&mut self, now: SimTime, running: &RunningTask<'_>) -> PreemptDecision {
        let _ = (now, running);
        PreemptDecision::Inherit
    }
    /// `worker` was suspected by the failure detector: it is out of the
    /// candidate set and its in-flight requests have been reclaimed for
    /// re-dispatch (they arrive back through
    /// [`requeue`](SchedPolicy::requeue) immediately after this call).
    /// Default: no reaction — correct for policies without per-worker
    /// state.
    fn worker_down(&mut self, now: SimTime, worker: usize) {
        let _ = (now, worker);
    }
    /// A suspected/dead worker produced late activity and was readmitted
    /// to the candidate set. Default: no reaction.
    fn worker_up(&mut self, now: SimTime, worker: usize) {
        let _ = (now, worker);
    }
    /// Requests currently queued.
    fn len(&self) -> usize;
    /// True when no requests are queued.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Policy label for tables and CSV, including parameters (so
    /// `class-priority:cutoff=10us` and `class-priority:cutoff=50us` stay
    /// distinguishable in reports).
    fn label(&self) -> String;
    /// Time-weighted mean queue depth since creation.
    fn mean_depth(&self, now: SimTime) -> f64;
    /// Peak queue depth.
    fn peak_depth(&self) -> usize;
}

// Boxed policies are policies, so `Dispatcher<Box<dyn SchedPolicy>, S>`
// works without per-policy monomorphization. Every hook delegates
// explicitly: falling back to the trait defaults here would silently
// bypass an inner policy's overrides.
impl SchedPolicy for Box<dyn SchedPolicy> {
    fn init(&mut self, n_workers: usize) {
        (**self).init(n_workers)
    }
    fn enqueue(&mut self, now: SimTime, task: Task) {
        (**self).enqueue(now, task)
    }
    fn requeue(&mut self, now: SimTime, task: Task) {
        (**self).requeue(now, task)
    }
    fn dequeue(&mut self, now: SimTime) -> Option<Task> {
        (**self).dequeue(now)
    }
    fn pick_next(&mut self, now: SimTime, candidates: &[WorkerView]) -> Option<Pick> {
        (**self).pick_next(now, candidates)
    }
    fn feedback(&mut self, now: SimTime, event: &FeedbackEvent) {
        (**self).feedback(now, event)
    }
    fn should_preempt(&mut self, now: SimTime, running: &RunningTask<'_>) -> PreemptDecision {
        (**self).should_preempt(now, running)
    }
    fn worker_down(&mut self, now: SimTime, worker: usize) {
        (**self).worker_down(now, worker)
    }
    fn worker_up(&mut self, now: SimTime, worker: usize) {
        (**self).worker_up(now, worker)
    }
    fn len(&self) -> usize {
        (**self).len()
    }
    fn is_empty(&self) -> bool {
        (**self).is_empty()
    }
    fn label(&self) -> String {
        (**self).label()
    }
    fn mean_depth(&self, now: SimTime) -> f64 {
        (**self).mean_depth(now)
    }
    fn peak_depth(&self) -> usize {
        (**self).peak_depth()
    }
}

/// Depth-tracking shared by the policy implementations.
#[derive(Debug)]
pub(crate) struct DepthStats {
    pub(crate) tw: TimeWeighted,
    pub(crate) peak: usize,
}

impl DepthStats {
    pub(crate) fn new() -> DepthStats {
        DepthStats {
            tw: TimeWeighted::new(SimTime::ZERO, 0.0),
            peak: 0,
        }
    }

    pub(crate) fn set(&mut self, now: SimTime, depth: usize) {
        self.tw.set(now, depth as f64);
        self.peak = self.peak.max(depth);
    }
}

/// First-come-first-served with tail re-enqueue — the paper's policy.
#[derive(Debug)]
pub struct Fcfs {
    queue: VecDeque<Task>,
    depth: DepthStats,
}

impl Fcfs {
    /// An empty FCFS queue.
    pub fn new() -> Fcfs {
        Fcfs {
            queue: VecDeque::new(),
            depth: DepthStats::new(),
        }
    }
}

impl Default for Fcfs {
    fn default() -> Self {
        Self::new()
    }
}

impl SchedPolicy for Fcfs {
    fn enqueue(&mut self, now: SimTime, task: Task) {
        self.queue.push_back(task);
        self.depth.set(now, self.queue.len());
    }

    fn requeue(&mut self, now: SimTime, task: Task) {
        // Preempted requests go to the tail, exactly as §3.4.1 describes.
        self.queue.push_back(task);
        self.depth.set(now, self.queue.len());
    }

    fn dequeue(&mut self, now: SimTime) -> Option<Task> {
        let t = self.queue.pop_front();
        if t.is_some() {
            self.depth.set(now, self.queue.len());
        }
        t
    }

    fn len(&self) -> usize {
        self.queue.len()
    }

    fn label(&self) -> String {
        "fcfs".to_string()
    }

    fn mean_depth(&self, now: SimTime) -> f64 {
        self.depth.tw.mean_until(now)
    }

    fn peak_depth(&self) -> usize {
        self.depth.peak
    }

    // Failure hooks, explicitly no-ops: FCFS keeps no per-worker state,
    // and reclaimed requests re-enter through `requeue`.
    fn worker_down(&mut self, _now: SimTime, _worker: usize) {}
    fn worker_up(&mut self, _now: SimTime, _worker: usize) {}
    fn feedback(&mut self, _now: SimTime, _event: &FeedbackEvent) {}
}

/// Shortest-remaining-work-first: dispatches the queued task with the
/// least remaining service. An idealized dispersion-killer the NIC could
/// implement given the service hints requests carry. Size-informed but
/// feedback-oblivious — contrast [`Srpt`](crate::Srpt), which learns
/// sizes from worker feedback instead of trusting the wire hint.
#[derive(Debug)]
pub struct ShortestRemaining {
    // Tie-break on (remaining, seq) for deterministic FIFO-within-equal.
    heap: std::collections::BinaryHeap<SrfEntry>,
    seq: u64,
    depth: DepthStats,
}

#[derive(Debug)]
struct SrfEntry {
    task: Task,
    seq: u64,
}

impl PartialEq for SrfEntry {
    fn eq(&self, other: &Self) -> bool {
        self.task.remaining == other.task.remaining && self.seq == other.seq
    }
}
impl Eq for SrfEntry {}
impl PartialOrd for SrfEntry {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for SrfEntry {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        // Reversed: smallest remaining (then earliest seq) pops first.
        (other.task.remaining, other.seq).cmp(&(self.task.remaining, self.seq))
    }
}

impl ShortestRemaining {
    /// An empty SRF queue.
    pub fn new() -> ShortestRemaining {
        ShortestRemaining {
            heap: std::collections::BinaryHeap::new(),
            seq: 0,
            depth: DepthStats::new(),
        }
    }

    fn push(&mut self, now: SimTime, task: Task) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(SrfEntry { task, seq });
        self.depth.set(now, self.heap.len());
    }
}

impl Default for ShortestRemaining {
    fn default() -> Self {
        Self::new()
    }
}

impl SchedPolicy for ShortestRemaining {
    fn enqueue(&mut self, now: SimTime, task: Task) {
        self.push(now, task);
    }

    fn requeue(&mut self, now: SimTime, task: Task) {
        self.push(now, task);
    }

    fn dequeue(&mut self, now: SimTime) -> Option<Task> {
        let t = self.heap.pop().map(|e| e.task);
        if t.is_some() {
            self.depth.set(now, self.heap.len());
        }
        t
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    fn label(&self) -> String {
        "srf".to_string()
    }

    fn mean_depth(&self, now: SimTime) -> f64 {
        self.depth.tw.mean_until(now)
    }

    fn peak_depth(&self) -> usize {
        self.depth.peak
    }

    // Failure hooks, explicitly no-ops: the heap is keyed by remaining
    // service only, never by worker; reclaimed requests re-enter through
    // `requeue` with their remaining work intact.
    fn worker_down(&mut self, _now: SimTime, _worker: usize) {}
    fn worker_up(&mut self, _now: SimTime, _worker: usize) {}
    fn feedback(&mut self, _now: SimTime, _event: &FeedbackEvent) {}
}

/// Two-class priority: requests at or below the cutoff form the high
///-priority lane (FIFO each). Models latency-class co-location (§2.2:
/// "multiple co-located applications from different latency classes").
#[derive(Debug)]
pub struct ClassPriority {
    cutoff: SimDuration,
    short: VecDeque<Task>,
    long: VecDeque<Task>,
    depth: DepthStats,
}

impl ClassPriority {
    /// Requests with `service <= cutoff` take priority.
    pub fn new(cutoff: SimDuration) -> ClassPriority {
        ClassPriority {
            cutoff,
            short: VecDeque::new(),
            long: VecDeque::new(),
            depth: DepthStats::new(),
        }
    }

    fn push(&mut self, now: SimTime, task: Task) {
        if task.service <= self.cutoff {
            self.short.push_back(task);
        } else {
            self.long.push_back(task);
        }
        self.depth.set(now, self.len());
    }
}

impl SchedPolicy for ClassPriority {
    fn enqueue(&mut self, now: SimTime, task: Task) {
        self.push(now, task);
    }

    fn requeue(&mut self, now: SimTime, task: Task) {
        self.push(now, task);
    }

    fn dequeue(&mut self, now: SimTime) -> Option<Task> {
        let t = self.short.pop_front().or_else(|| self.long.pop_front());
        if t.is_some() {
            self.depth.set(now, self.len());
        }
        t
    }

    fn len(&self) -> usize {
        self.short.len() + self.long.len()
    }

    fn label(&self) -> String {
        format!(
            "class-priority:cutoff={}",
            crate::registry::fmt_duration(self.cutoff)
        )
    }

    fn mean_depth(&self, now: SimTime) -> f64 {
        self.depth.tw.mean_until(now)
    }

    fn peak_depth(&self) -> usize {
        self.depth.peak
    }

    // Failure hooks, explicitly no-ops: both lanes are worker-agnostic
    // FIFOs, and reclaimed requests re-enter through `requeue`.
    fn worker_down(&mut self, _now: SimTime, _worker: usize) {}
    fn worker_up(&mut self, _now: SimTime, _worker: usize) {}
    fn feedback(&mut self, _now: SimTime, _event: &FeedbackEvent) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(id: u64, service_us: u64) -> Task {
        Task::new(
            id,
            0,
            SimDuration::from_micros(service_us),
            SimTime::ZERO,
            SimTime::ZERO,
            0,
        )
    }

    fn us(n: u64) -> SimTime {
        SimTime::from_micros(n)
    }

    #[test]
    fn fcfs_is_fifo() {
        let mut q = Fcfs::new();
        q.enqueue(us(0), task(1, 5));
        q.enqueue(us(1), task(2, 1));
        q.enqueue(us(2), task(3, 100));
        assert_eq!(q.dequeue(us(3)).unwrap().req_id, 1);
        assert_eq!(q.dequeue(us(3)).unwrap().req_id, 2);
        assert_eq!(q.dequeue(us(3)).unwrap().req_id, 3);
        assert!(q.dequeue(us(3)).is_none());
    }

    #[test]
    fn fcfs_requeue_goes_to_tail() {
        let mut q = Fcfs::new();
        q.enqueue(us(0), task(1, 5));
        q.enqueue(us(0), task(2, 5));
        let preempted = task(3, 100).after_preemption(SimDuration::from_micros(10));
        q.requeue(us(1), preempted);
        assert_eq!(q.dequeue(us(2)).unwrap().req_id, 1);
        assert_eq!(q.dequeue(us(2)).unwrap().req_id, 2);
        assert_eq!(
            q.dequeue(us(2)).unwrap().req_id,
            3,
            "preempted task at the tail"
        );
    }

    #[test]
    fn srf_prefers_least_remaining() {
        let mut q = ShortestRemaining::new();
        q.enqueue(us(0), task(1, 100));
        q.enqueue(us(0), task(2, 1));
        q.enqueue(us(0), task(3, 50));
        assert_eq!(q.dequeue(us(1)).unwrap().req_id, 2);
        assert_eq!(q.dequeue(us(1)).unwrap().req_id, 3);
        assert_eq!(q.dequeue(us(1)).unwrap().req_id, 1);
    }

    #[test]
    fn srf_ties_break_fifo() {
        let mut q = ShortestRemaining::new();
        for id in 1..=5 {
            q.enqueue(us(0), task(id, 7));
        }
        for id in 1..=5 {
            assert_eq!(q.dequeue(us(1)).unwrap().req_id, id);
        }
    }

    #[test]
    fn srf_considers_remaining_not_total() {
        let mut q = ShortestRemaining::new();
        // 100us task that has already run 95us beats a fresh 10us task.
        let mostly_done = task(1, 100).after_preemption(SimDuration::from_micros(95));
        q.requeue(us(0), mostly_done);
        q.enqueue(us(0), task(2, 10));
        assert_eq!(q.dequeue(us(1)).unwrap().req_id, 1);
    }

    #[test]
    fn class_priority_lets_shorts_jump() {
        let mut q = ClassPriority::new(SimDuration::from_micros(10));
        q.enqueue(us(0), task(1, 100)); // long
        q.enqueue(us(0), task(2, 5)); // short
        q.enqueue(us(0), task(3, 200)); // long
        q.enqueue(us(0), task(4, 5)); // short
        let order: Vec<u64> = std::iter::from_fn(|| q.dequeue(us(1)).map(|t| t.req_id)).collect();
        assert_eq!(order, vec![2, 4, 1, 3]);
    }

    #[test]
    fn depth_statistics_track() {
        let mut q = Fcfs::new();
        q.enqueue(us(0), task(1, 5));
        q.enqueue(us(10), task(2, 5));
        q.dequeue(us(20));
        q.dequeue(us(30));
        assert_eq!(q.peak_depth(), 2);
        // Depth: 1 on [0,10), 2 on [10,20), 1 on [20,30) -> mean 4/3 over 30us.
        let mean = q.mean_depth(us(30));
        assert!((mean - 4.0 / 3.0).abs() < 1e-9, "mean depth {mean}");
    }

    #[test]
    fn labels_distinct_and_parameterized() {
        assert_ne!(Fcfs::new().label(), ShortestRemaining::new().label());
        assert_eq!(
            ClassPriority::new(SimDuration::from_micros(10)).label(),
            "class-priority:cutoff=10us"
        );
        assert_eq!(
            ClassPriority::new(SimDuration::from_micros(50)).label(),
            "class-priority:cutoff=50us",
            "parameterized policies must not collapse to one label"
        );
    }

    #[test]
    fn default_hooks_reduce_to_the_paper_dispatcher() {
        // pick_next defaults to dequeue + selector-chosen worker;
        // should_preempt defaults to the embedding's slice; feedback is
        // inert. A policy overriding nothing schedules like PR-0 FCFS.
        let mut q = Fcfs::new();
        q.init(4);
        q.enqueue(us(0), task(1, 5));
        let views = [WorkerView {
            worker: 2,
            outstanding: 0,
            last_req: None,
            idle_since: Some(SimTime::ZERO),
            health: crate::WorkerHealth::Healthy,
        }];
        let pick = q.pick_next(us(1), &views).unwrap();
        assert_eq!(pick.task.req_id, 1);
        assert_eq!(pick.worker, None, "default pick defers core selection");
        let t = task(2, 5);
        let decision = q.should_preempt(
            us(1),
            &RunningTask {
                worker: 2,
                task: &t,
            },
        );
        assert_eq!(decision, PreemptDecision::Inherit);
        // Membership hooks default to no-ops: FCFS has no per-worker state.
        q.worker_down(us(1), 2);
        q.worker_up(us(1), 2);
        assert_eq!(q.len(), 0);
        q.feedback(
            us(2),
            &FeedbackEvent::Completed {
                worker: 2,
                req_id: 1,
                service: SimDuration::from_micros(5),
            },
        );
        assert!(q.is_empty());
    }

    #[test]
    fn preempt_decisions_resolve_and_round_trip_the_wire() {
        let slice = Some(SimDuration::from_micros(10));
        assert_eq!(PreemptDecision::Inherit.resolve(slice), slice);
        assert_eq!(PreemptDecision::Inherit.resolve(None), None);
        assert_eq!(PreemptDecision::RunToCompletion.resolve(slice), None);
        let b = PreemptDecision::Budget(SimDuration::from_micros(7));
        assert_eq!(b.resolve(None), Some(SimDuration::from_micros(7)));

        // Wire codes: exact for whole microseconds in 1..=254.
        for d in [
            b,
            PreemptDecision::Inherit,
            PreemptDecision::RunToCompletion,
        ] {
            assert_eq!(PreemptDecision::from_grant_code(d.grant_code()), d);
        }
        // Sub-microsecond budgets round to the nearest microsecond.
        let fine = PreemptDecision::Budget(SimDuration::from_nanos(11_400));
        assert_eq!(
            PreemptDecision::from_grant_code(fine.grant_code()),
            PreemptDecision::Budget(SimDuration::from_micros(11))
        );
        // Zero and huge budgets clamp into the representable band.
        assert_eq!(PreemptDecision::Budget(SimDuration::ZERO).grant_code(), 1);
        assert_eq!(
            PreemptDecision::Budget(SimDuration::from_millis(5)).grant_code(),
            254
        );
    }
}
