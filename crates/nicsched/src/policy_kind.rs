//! Deprecated closed-enum policy selector, superseded by the string-keyed
//! [`PolicyRegistry`](crate::PolicyRegistry) / [`PolicySpec`](crate::PolicySpec).
//!
//! [`PolicyKind`] was the PR-2 configuration handle: a closed enum the
//! systems stored in their configs. It cannot name the registry's newer
//! policies (SRPT, EDF, WFQ, the cFCFS/dFCFS split) nor carry arbitrary
//! parameters, so configs now store a [`PolicySpec`](crate::PolicySpec)
//! instead. The enum remains for one release as a shim that forwards to
//! the registry; [`PolicyKind::spec`] is the migration path.

#![allow(deprecated)]

use sim_core::SimDuration;

use crate::policy::SchedPolicy;
use crate::registry::{fmt_duration, PolicySpec};

/// A selectable queue policy (deprecated closed enum).
#[deprecated(
    since = "0.1.0",
    note = "use `PolicySpec` / `PolicyRegistry` — e.g. `PolicySpec::parse(\"fcfs\")`"
)]
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PolicyKind {
    /// FIFO with tail re-enqueue — the paper's policy (§3.4.1).
    Fcfs,
    /// Shortest-remaining-work-first.
    ShortestRemaining,
    /// Two-class priority with the given service-time cutoff.
    ClassPriority(SimDuration),
}

impl PolicyKind {
    /// The equivalent registry spec.
    pub fn spec(self) -> PolicySpec {
        match self {
            PolicyKind::Fcfs => PolicySpec::FCFS,
            PolicyKind::ShortestRemaining => PolicySpec::named("srf"),
            PolicyKind::ClassPriority(cutoff) => {
                let spec = format!("class-priority:cutoff={}", fmt_duration(cutoff));
                PolicySpec::parse(&spec).expect("class-priority spec is always valid")
            }
        }
    }

    /// Instantiate the policy (forwards to the registry).
    pub fn build(self) -> Box<dyn SchedPolicy> {
        self.spec().build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::Task;
    use sim_core::SimTime;

    fn task(id: u64, service_us: u64) -> Task {
        Task::new(
            id,
            0,
            SimDuration::from_micros(service_us),
            SimTime::ZERO,
            SimTime::ZERO,
            0,
        )
    }

    #[test]
    fn kinds_map_to_registry_specs() {
        assert_eq!(PolicyKind::Fcfs.spec(), PolicySpec::FCFS);
        assert_eq!(PolicyKind::ShortestRemaining.spec().as_str(), "srf");
        assert_eq!(
            PolicyKind::ClassPriority(SimDuration::from_micros(10))
                .spec()
                .as_str(),
            "class-priority:cutoff=10us"
        );
    }

    #[test]
    fn kinds_build_the_right_policy() {
        assert_eq!(PolicyKind::Fcfs.build().label(), "fcfs");
        assert_eq!(PolicyKind::ShortestRemaining.build().label(), "srf");
        assert_eq!(
            PolicyKind::ClassPriority(SimDuration::from_micros(10))
                .build()
                .label(),
            "class-priority:cutoff=10us"
        );
    }

    #[test]
    fn boxed_policy_behaves_like_inner() {
        let mut q: Box<dyn SchedPolicy> = PolicyKind::ShortestRemaining.build();
        q.enqueue(SimTime::ZERO, task(1, 100));
        q.enqueue(SimTime::ZERO, task(2, 1));
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
        assert_eq!(q.dequeue(SimTime::ZERO).unwrap().req_id, 2);
        assert_eq!(q.peak_depth(), 2);
    }

    #[test]
    fn boxed_policy_works_inside_dispatcher() {
        use crate::dispatcher::Dispatcher;
        use crate::select::LeastOutstanding;
        let mut d = Dispatcher::new(1, 1, PolicyKind::Fcfs.build(), LeastOutstanding);
        let a = d.on_request(SimTime::ZERO, task(1, 5));
        assert_eq!(a.len(), 1);
        assert_eq!(d.policy().label(), "fcfs");
    }
}
