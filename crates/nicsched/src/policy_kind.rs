//! Runtime-selectable queue policies.
//!
//! §5.1(4) calls for "libraries and tools that make it easy to specify
//! scheduling functions for the SmartNIC". [`PolicyKind`] is the
//! configuration-level handle: systems store it in their configs and
//! instantiate the matching [`SchedPolicy`] at build time, so experiments
//! can sweep policies without monomorphizing every assembly.

use sim_core::{SimDuration, SimTime};

use crate::policy::{ClassPriority, Fcfs, SchedPolicy, ShortestRemaining};
use crate::task::Task;

/// A selectable queue policy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PolicyKind {
    /// FIFO with tail re-enqueue — the paper's policy (§3.4.1).
    Fcfs,
    /// Shortest-remaining-work-first.
    ShortestRemaining,
    /// Two-class priority with the given service-time cutoff.
    ClassPriority(SimDuration),
}

impl PolicyKind {
    /// Instantiate the policy.
    pub fn build(self) -> Box<dyn SchedPolicy> {
        match self {
            PolicyKind::Fcfs => Box::new(Fcfs::new()),
            PolicyKind::ShortestRemaining => Box::new(ShortestRemaining::new()),
            PolicyKind::ClassPriority(cutoff) => Box::new(ClassPriority::new(cutoff)),
        }
    }
}

// Boxed policies are policies, so `Dispatcher<Box<dyn SchedPolicy>, S>`
// works without per-policy monomorphization.
impl SchedPolicy for Box<dyn SchedPolicy> {
    fn enqueue(&mut self, now: SimTime, task: Task) {
        (**self).enqueue(now, task)
    }
    fn requeue(&mut self, now: SimTime, task: Task) {
        (**self).requeue(now, task)
    }
    fn dequeue(&mut self, now: SimTime) -> Option<Task> {
        (**self).dequeue(now)
    }
    fn len(&self) -> usize {
        (**self).len()
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn mean_depth(&self, now: SimTime) -> f64 {
        (**self).mean_depth(now)
    }
    fn peak_depth(&self) -> usize {
        (**self).peak_depth()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(id: u64, service_us: u64) -> Task {
        Task::new(
            id,
            0,
            SimDuration::from_micros(service_us),
            SimTime::ZERO,
            SimTime::ZERO,
            0,
        )
    }

    #[test]
    fn kinds_build_the_right_policy() {
        assert_eq!(PolicyKind::Fcfs.build().name(), "fcfs");
        assert_eq!(PolicyKind::ShortestRemaining.build().name(), "srf");
        assert_eq!(
            PolicyKind::ClassPriority(SimDuration::from_micros(10))
                .build()
                .name(),
            "class-priority"
        );
    }

    #[test]
    fn boxed_policy_behaves_like_inner() {
        let mut q: Box<dyn SchedPolicy> = PolicyKind::ShortestRemaining.build();
        q.enqueue(SimTime::ZERO, task(1, 100));
        q.enqueue(SimTime::ZERO, task(2, 1));
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
        assert_eq!(q.dequeue(SimTime::ZERO).unwrap().req_id, 2);
        assert_eq!(q.peak_depth(), 2);
    }

    #[test]
    fn boxed_policy_works_inside_dispatcher() {
        use crate::dispatcher::Dispatcher;
        use crate::select::LeastOutstanding;
        let mut d = Dispatcher::new(1, 1, PolicyKind::Fcfs.build(), LeastOutstanding);
        let a = d.on_request(SimTime::ZERO, task(1, 5));
        assert_eq!(a.len(), 1);
        assert_eq!(d.policy().name(), "fcfs");
    }
}
