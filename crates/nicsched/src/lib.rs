//! # nicsched — informed request scheduling (the paper's contribution)
//!
//! The placement-independent core of *"Mind the Gap: A Case for Informed
//! Request Scheduling at the NIC"* (HotNets '19):
//!
//! * [`Task`] — the scheduler's view of a request (identity + remaining
//!   work across preemptions).
//! * [`SchedPolicy`] — the programmable scheduling surface, sched_ext
//!   style: queue hooks ([`Fcfs`] is the paper's policy) plus
//!   [`pick_next`](SchedPolicy::pick_next) worker binding,
//!   [`feedback`](SchedPolicy::feedback) consumption, and
//!   [`should_preempt`](SchedPolicy::should_preempt) slice grants.
//!   Implementations: [`Fcfs`], [`Cfcfs`], [`Dfcfs`],
//!   [`ShortestRemaining`], [`Srpt`], [`Edf`], [`ClassPriority`],
//!   [`WeightedFair`].
//! * [`PolicyRegistry`] / [`PolicySpec`] — string-keyed policy lookup with
//!   a spec grammar (`"fcfs"`, `"edf:deadline=50us"`, `"wfq:w=4,1,1"`), so
//!   configs and CLIs name policies without a closed enum.
//! * [`CoreSelector`] — programmable worker selection
//!   ([`LeastOutstanding`], [`RoundRobin`], [`Affinity`],
//!   [`MostRecentlyIdle`]).
//! * [`Dispatcher`] — the centralized, preemptive dispatcher: queuing,
//!   selection, and the §3.4.5 outstanding-requests cap ("queuing
//!   optimization"). The same state machine runs on a host core
//!   (`systems::shinjuku`), on SmartNIC ARM cores (`systems::offload`),
//!   or in a line-rate ASIC model (`systems::ideal_nic`).
//! * [`FeedbackChannel`] — the fine-grained core-status feedback path
//!   whose latency is the "gap" of the title.
//! * [`HealthTracker`] / [`RecoveryPolicy`] — NIC-side failure detection:
//!   a deterministic lease/heartbeat discipline (Healthy → Suspected →
//!   Dead → Readmitted) that lets the dispatcher reclaim and re-dispatch
//!   requests orphaned on a failed worker instead of waiting for the
//!   client's retry timeout, with exactly-once completion accounting for
//!   the false-positive case.
//! * [`NicProfile`] — one point in the §5.1 hardware design space
//!   (compute × transport × interrupt path).
//! * [`params`] — every calibration constant, paper-sourced or fitted,
//!   in one place.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod admission;
mod disciplines;
mod dispatcher;
mod feedback;
pub mod params;
mod policy;
mod profile;
mod recovery;
mod registry;
mod select;
mod task;

pub use admission::{Admission, AdmissionPolicy};
pub use disciplines::{Cfcfs, Dfcfs, Edf, Srpt, WeightedFair};
pub use dispatcher::{AdmitOutcome, Assignment, DispatchStats, Dispatcher};
pub use feedback::{CoreFeedback, FeedbackChannel};
pub use policy::{
    ClassPriority, Fcfs, FeedbackEvent, Pick, PreemptDecision, RunningTask, SchedPolicy,
    ShortestRemaining,
};
pub use profile::{NicProfile, SchedCompute};
pub use recovery::{HealthTracker, RecoveryPolicy, RecoveryStats, WorkerHealth};
pub use registry::{
    fmt_duration, parse_duration, PolicyBuilder, PolicyError, PolicyParams, PolicyRegistry,
    PolicySpec,
};
pub use select::{
    Affinity, CoreSelector, LeastOutstanding, MostRecentlyIdle, RoundRobin, SocketAffinity,
    WorkerView,
};
pub use task::Task;
