//! The scheduler's view of one in-flight request.

use sim_core::{SimDuration, SimTime};

use crate::policy::PreemptDecision;

/// A request as the dispatcher sees it: identity plus remaining work.
///
/// Created when the networking subsystem parses a request packet; carried
/// through the centralized queue; updated on preemption ("the dispatcher
/// adds the request to the end of the task queue", §3.4.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Task {
    /// Client-assigned request id.
    pub req_id: u64,
    /// Originating client.
    pub client_id: u32,
    /// Total intrinsic service time.
    pub service: SimDuration,
    /// Service time still owed (decreases across preemptions).
    pub remaining: SimDuration,
    /// Client send timestamp (wire-carried, for end-to-end latency).
    pub sent_at: SimTime,
    /// When the scheduler first saw this request.
    pub arrived_at: SimTime,
    /// Message body padding length (affects packet sizes on every hop).
    pub body_len: u16,
    /// Times this task has been preempted so far.
    pub preemptions: u32,
    /// The policy's slice grant for the *current* dispatch, stamped by the
    /// dispatcher when the task is assigned. Workers resolve it against
    /// their configured slice; `Inherit` (the default) reproduces the
    /// paper's static timer.
    pub preempt: PreemptDecision,
}

impl Task {
    /// A fresh task with all of its service remaining.
    pub fn new(
        req_id: u64,
        client_id: u32,
        service: SimDuration,
        sent_at: SimTime,
        arrived_at: SimTime,
        body_len: u16,
    ) -> Task {
        Task {
            req_id,
            client_id,
            service,
            remaining: service,
            sent_at,
            arrived_at,
            body_len,
            preemptions: 0,
            preempt: PreemptDecision::Inherit,
        }
    }

    /// Run the task for one slice: subtract `ran` from the remaining work
    /// and count a preemption. Saturates at zero.
    pub fn after_preemption(mut self, ran: SimDuration) -> Task {
        self.remaining = self.remaining.saturating_sub(ran);
        self.preemptions += 1;
        self
    }

    /// True when no work remains.
    pub fn is_finished(&self) -> bool {
        self.remaining.is_zero()
    }

    /// Work already completed.
    pub fn progress(&self) -> SimDuration {
        self.service - self.remaining
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task() -> Task {
        Task::new(
            1,
            2,
            SimDuration::from_micros(25),
            SimTime::from_micros(10),
            SimTime::from_micros(12),
            64,
        )
    }

    #[test]
    fn fresh_task_owes_everything() {
        let t = task();
        assert_eq!(t.remaining, t.service);
        assert_eq!(t.progress(), SimDuration::ZERO);
        assert!(!t.is_finished());
        assert_eq!(t.preemptions, 0);
    }

    #[test]
    fn preemption_subtracts_and_counts() {
        let t = task().after_preemption(SimDuration::from_micros(10));
        assert_eq!(t.remaining, SimDuration::from_micros(15));
        assert_eq!(t.progress(), SimDuration::from_micros(10));
        assert_eq!(t.preemptions, 1);
        let t = t.after_preemption(SimDuration::from_micros(10));
        assert_eq!(t.remaining, SimDuration::from_micros(5));
        assert_eq!(t.preemptions, 2);
    }

    #[test]
    fn over_run_saturates() {
        let t = task().after_preemption(SimDuration::from_micros(100));
        assert!(t.is_finished());
        assert_eq!(t.remaining, SimDuration::ZERO);
    }

    #[test]
    fn identity_survives_preemption() {
        let t = task().after_preemption(SimDuration::from_micros(10));
        assert_eq!(t.req_id, 1);
        assert_eq!(t.sent_at, SimTime::from_micros(10));
        assert_eq!(t.service, SimDuration::from_micros(25));
    }
}
