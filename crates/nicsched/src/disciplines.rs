//! Policies built on the grown hook set: explicit queue disciplines
//! (cFCFS vs dFCFS, after the carvalhof simulator's `QueueDiscipline`
//! split), feedback-driven SRPT, earliest-deadline-first, and
//! weighted-fair queueing across tenants (after SuperNIC's per-tenant
//! arbitration).
//!
//! Everything here is deterministic: ties break on arrival sequence
//! numbers, worker choices derive from request ids, and virtual time is
//! integer arithmetic.

use std::collections::{BinaryHeap, VecDeque};

use sim_core::{SimDuration, SimTime};

use crate::policy::{
    DepthStats, Fcfs, FeedbackEvent, Pick, PreemptDecision, RunningTask, SchedPolicy,
};
use crate::registry::fmt_duration;
use crate::select::WorkerView;
use crate::task::Task;

/// The RSS-style hash the degraded dispatcher uses; dFCFS uses the same
/// function so "dFCFS" and "feedback loss" steer identically (§2.1's
/// d-FCFS is precisely NIC RSS spraying).
fn rss_home(req_id: u64, n: usize) -> usize {
    debug_assert!(n > 0);
    (req_id.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33) as usize % n
}

/// Centralized FCFS (`cFCFS`): a single shared FIFO, any worker may serve
/// any request. Behaviourally identical to [`Fcfs`]; it exists so sweeps
/// can name the discipline split explicitly (carvalhof's
/// `QueueDiscipline::cFCFS`).
#[derive(Debug, Default)]
pub struct Cfcfs(Fcfs);

impl Cfcfs {
    /// An empty centralized FIFO.
    pub fn new() -> Cfcfs {
        Cfcfs(Fcfs::new())
    }
}

impl SchedPolicy for Cfcfs {
    fn enqueue(&mut self, now: SimTime, task: Task) {
        self.0.enqueue(now, task)
    }
    fn requeue(&mut self, now: SimTime, task: Task) {
        self.0.requeue(now, task)
    }
    fn dequeue(&mut self, now: SimTime) -> Option<Task> {
        self.0.dequeue(now)
    }
    fn worker_down(&mut self, now: SimTime, worker: usize) {
        self.0.worker_down(now, worker)
    }
    fn worker_up(&mut self, now: SimTime, worker: usize) {
        self.0.worker_up(now, worker)
    }
    fn feedback(&mut self, now: SimTime, event: &FeedbackEvent) {
        self.0.feedback(now, event)
    }
    fn len(&self) -> usize {
        self.0.len()
    }
    fn label(&self) -> String {
        "cfcfs".to_string()
    }
    fn mean_depth(&self, now: SimTime) -> f64 {
        self.0.mean_depth(now)
    }
    fn peak_depth(&self) -> usize {
        self.0.peak_depth()
    }
}

/// Distributed FCFS (`dFCFS`): each request is hashed to a home worker at
/// admission (NIC RSS, §2.1) and only that worker may serve it. The
/// partitioned queues live inside the policy; [`pick_next`]
/// (SchedPolicy::pick_next) dispatches the globally-oldest request whose
/// home worker is among the candidates.
#[derive(Debug)]
pub struct Dfcfs {
    queues: Vec<VecDeque<(u64, Task)>>,
    /// Workers the failure detector has taken out of the candidate set;
    /// their home traffic re-homes to the next live worker.
    down: Vec<bool>,
    seq: u64,
    queued: usize,
    depth: DepthStats,
}

impl Dfcfs {
    /// An empty dFCFS; the per-worker queues are sized by
    /// [`init`](SchedPolicy::init).
    pub fn new() -> Dfcfs {
        Dfcfs {
            queues: Vec::new(),
            down: Vec::new(),
            seq: 0,
            queued: 0,
            depth: DepthStats::new(),
        }
    }

    /// Where `home`'s traffic lands: `home` itself while it is live,
    /// otherwise the next live worker scanning upward (wrapping). With the
    /// whole fleet down the original home keeps the queue so nothing is
    /// lost.
    fn redirect(&self, home: usize) -> usize {
        let n = self.queues.len();
        if !self.down.get(home).copied().unwrap_or(false) {
            return home;
        }
        (1..n)
            .map(|d| (home + d) % n)
            .find(|&w| !self.down.get(w).copied().unwrap_or(false))
            .unwrap_or(home)
    }

    fn push(&mut self, now: SimTime, task: Task) {
        if self.queues.is_empty() {
            // Standalone use without init(): behave as one shared queue.
            self.queues.push(VecDeque::new());
        }
        let home = self.redirect(rss_home(task.req_id, self.queues.len()));
        let seq = self.seq;
        self.seq += 1;
        self.queues[home].push_back((seq, task));
        self.queued += 1;
        self.depth.set(now, self.queued);
    }

    fn pop_from(&mut self, now: SimTime, queue: usize) -> Option<Task> {
        let (_, t) = self.queues[queue].pop_front()?;
        self.queued -= 1;
        self.depth.set(now, self.queued);
        Some(t)
    }

    /// Index of the non-empty queue with the globally-earliest head, drawn
    /// from `allowed` (or all queues when `allowed` is `None`).
    fn earliest_head(&self, allowed: Option<&[WorkerView]>) -> Option<usize> {
        let mut best: Option<(u64, usize)> = None;
        for (i, q) in self.queues.iter().enumerate() {
            if let Some(views) = allowed {
                if !views.iter().any(|v| v.worker == i) {
                    continue;
                }
            }
            if let Some(&(seq, _)) = q.front() {
                let better = match best {
                    None => true,
                    Some((s, _)) => seq < s,
                };
                if better {
                    best = Some((seq, i));
                }
            }
        }
        best.map(|(_, i)| i)
    }
}

impl Default for Dfcfs {
    fn default() -> Self {
        Self::new()
    }
}

impl SchedPolicy for Dfcfs {
    fn init(&mut self, n_workers: usize) {
        assert!(self.queued == 0, "init() after enqueue would re-home tasks");
        self.queues = (0..n_workers.max(1)).map(|_| VecDeque::new()).collect();
        self.down = vec![false; self.queues.len()];
    }

    fn enqueue(&mut self, now: SimTime, task: Task) {
        self.push(now, task);
    }

    fn requeue(&mut self, now: SimTime, task: Task) {
        // Preempted work returns to the tail of its home queue; the hash
        // is stable in req_id so the home does not move.
        self.push(now, task);
    }

    fn dequeue(&mut self, now: SimTime) -> Option<Task> {
        let q = self.earliest_head(None)?;
        self.pop_from(now, q)
    }

    fn pick_next(&mut self, now: SimTime, candidates: &[WorkerView]) -> Option<Pick> {
        // Only home queues of dispatchable workers may serve; a queued
        // request whose home worker is busy waits even if others idle —
        // the head-of-line blocking the paper pins on d-FCFS (§2.1).
        let q = self.earliest_head(Some(candidates))?;
        let t = self.pop_from(now, q)?;
        Some(Pick::on(t, q))
    }

    fn worker_down(&mut self, _now: SimTime, worker: usize) {
        if worker >= self.queues.len() {
            return;
        }
        if self.down.len() < self.queues.len() {
            self.down.resize(self.queues.len(), false);
        }
        self.down[worker] = true;
        // Re-home everything queued on the dead worker. Admission
        // sequence numbers travel with the tasks and each destination
        // queue stays seq-sorted, so global FIFO order survives the move.
        let orphans: Vec<(u64, Task)> = self.queues[worker].drain(..).collect();
        for (seq, task) in orphans {
            let dest = self.redirect(rss_home(task.req_id, self.queues.len()));
            let q = &mut self.queues[dest];
            let pos = q.partition_point(|&(s, _)| s < seq);
            q.insert(pos, (seq, task));
        }
    }

    fn worker_up(&mut self, _now: SimTime, worker: usize) {
        if let Some(d) = self.down.get_mut(worker) {
            // Re-homed tasks stay put; only new arrivals home here again.
            *d = false;
        }
    }

    // Explicitly no-op: d-FCFS homes by RSS hash at admission and learns
    // nothing from completions; liveness arrives via worker_down/up.
    fn feedback(&mut self, _now: SimTime, _event: &FeedbackEvent) {}

    fn len(&self) -> usize {
        self.queued
    }

    fn label(&self) -> String {
        "dfcfs".to_string()
    }

    fn mean_depth(&self, now: SimTime) -> f64 {
        self.depth.tw.mean_until(now)
    }

    fn peak_depth(&self) -> usize {
        self.depth.peak
    }
}

/// Min-heap entry keyed on `(key, seq)` — smallest key first, FIFO within
/// equal keys.
#[derive(Debug)]
struct KeyedEntry {
    key: u64,
    seq: u64,
    task: Task,
}

impl PartialEq for KeyedEntry {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.seq == other.seq
    }
}
impl Eq for KeyedEntry {}
impl PartialOrd for KeyedEntry {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for KeyedEntry {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        // Reversed for BinaryHeap: smallest (key, seq) pops first.
        (other.key, other.seq).cmp(&(self.key, self.seq))
    }
}

#[derive(Debug)]
struct KeyedQueue {
    heap: BinaryHeap<KeyedEntry>,
    seq: u64,
    depth: DepthStats,
}

impl KeyedQueue {
    fn new() -> KeyedQueue {
        KeyedQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            depth: DepthStats::new(),
        }
    }

    fn push(&mut self, now: SimTime, key: u64, task: Task) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(KeyedEntry { key, seq, task });
        self.depth.set(now, self.heap.len());
    }

    fn pop(&mut self, now: SimTime) -> Option<Task> {
        let t = self.heap.pop().map(|e| e.task);
        if t.is_some() {
            self.depth.set(now, self.heap.len());
        }
        t
    }
}

/// Feedback-driven shortest-remaining-processing-time.
///
/// Unlike [`ShortestRemaining`](crate::ShortestRemaining), which trusts
/// the service hint the request carries, SRPT assumes the NIC cannot see
/// sizes up front and *learns* them from the feedback channel: completions
/// report true service times (an EWMA estimate orders fresh requests) and
/// preemptions report exact remaining work (which orders re-admitted
/// ones). It also owns preemption: once it has samples it grants each
/// dispatch a budget of `boost`% of the estimated mean, so oversized
/// requests bounce back quickly with their true remaining exposed.
#[derive(Debug)]
pub struct Srpt {
    queue: KeyedQueue,
    /// EWMA of completed service times, in nanoseconds.
    est_ns: u64,
    samples: u64,
    /// EWMA gain divisor: `est += (sample - est) / gain`.
    gain: u64,
    /// Slice budget as a percentage of the service estimate.
    boost: u64,
    /// Never grant a budget below this (guards against a tiny estimate
    /// causing preemption storms).
    floor: SimDuration,
    /// Samples left in the post-membership-change fast-relearn window:
    /// while non-zero the EWMA gain drops to 2 so the estimate re-tracks
    /// the surviving fleet's service times quickly.
    fast: u64,
}

/// How many completions [`Srpt`] weighs heavily after a membership change.
const SRPT_FAST_RELEARN_SAMPLES: u64 = 8;

impl Srpt {
    /// Default SRPT: gain 8, budget 200% of the estimate, 1 µs floor.
    pub fn new() -> Srpt {
        Srpt::with_params(8, 200, SimDuration::from_micros(1))
    }

    /// SRPT with explicit EWMA gain, budget percentage, and budget floor.
    pub fn with_params(gain: u64, boost: u64, floor: SimDuration) -> Srpt {
        Srpt {
            queue: KeyedQueue::new(),
            est_ns: 0,
            samples: 0,
            gain: gain.max(1),
            boost,
            floor,
            fast: 0,
        }
    }

    /// Current service-time estimate (zero until the first completion).
    pub fn estimate(&self) -> SimDuration {
        SimDuration::from_nanos(self.est_ns)
    }

    fn observe(&mut self, service: SimDuration) {
        let gain = if self.fast > 0 {
            self.fast -= 1;
            self.gain.min(2)
        } else {
            self.gain
        };
        let s = service.as_nanos();
        if self.samples == 0 {
            self.est_ns = s;
        } else if s >= self.est_ns {
            self.est_ns += (s - self.est_ns) / gain;
        } else {
            self.est_ns -= (self.est_ns - s) / gain;
        }
        self.samples += 1;
    }
}

impl Default for Srpt {
    fn default() -> Self {
        Self::new()
    }
}

impl SchedPolicy for Srpt {
    fn enqueue(&mut self, now: SimTime, task: Task) {
        // Fresh request: size unknown, rank by the learned estimate. All
        // fresh requests share the key, so they run FIFO among themselves
        // but sort against preempted tasks' known remaining work.
        let key = self.est_ns;
        self.queue.push(now, key, task);
    }

    fn requeue(&mut self, now: SimTime, task: Task) {
        // Preempted request: remaining work is now known exactly.
        self.queue.push(now, task.remaining.as_nanos(), task);
    }

    fn dequeue(&mut self, now: SimTime) -> Option<Task> {
        self.queue.pop(now)
    }

    fn feedback(&mut self, _now: SimTime, event: &FeedbackEvent) {
        if let FeedbackEvent::Completed { service, .. } = event {
            self.observe(*service);
        }
    }

    fn should_preempt(&mut self, _now: SimTime, _running: &RunningTask<'_>) -> PreemptDecision {
        if self.samples == 0 {
            return PreemptDecision::Inherit;
        }
        let budget = SimDuration::from_nanos(self.est_ns / 100 * self.boost);
        PreemptDecision::Budget(budget.max(self.floor))
    }

    fn worker_down(&mut self, _now: SimTime, _worker: usize) {
        // The learned size distribution reflects the old fleet; weigh the
        // next completions heavily so the estimate re-tracks the
        // survivors (who now absorb the reclaimed load) quickly.
        self.fast = SRPT_FAST_RELEARN_SAMPLES;
    }

    fn worker_up(&mut self, _now: SimTime, _worker: usize) {
        // Readmission changes capacity just like suspicion did.
        self.fast = SRPT_FAST_RELEARN_SAMPLES;
    }

    fn len(&self) -> usize {
        self.queue.heap.len()
    }

    fn label(&self) -> String {
        let mut s = String::from("srpt");
        let defaults = Srpt::new();
        let mut params = Vec::new();
        if self.gain != defaults.gain {
            params.push(format!("gain={}", self.gain));
        }
        if self.boost != defaults.boost {
            params.push(format!("boost={}", self.boost));
        }
        if self.floor != defaults.floor {
            params.push(format!("floor={}", fmt_duration(self.floor)));
        }
        if !params.is_empty() {
            s.push(':');
            s.push_str(&params.join(","));
        }
        s
    }

    fn mean_depth(&self, now: SimTime) -> f64 {
        self.queue.depth.tw.mean_until(now)
    }

    fn peak_depth(&self) -> usize {
        self.queue.depth.peak
    }
}

/// Earliest-deadline-first. Every request's deadline is a pure function of
/// its immutable fields — `arrived_at + deadline + service × stretch` —
/// so a preempted request keeps its original deadline when re-admitted.
#[derive(Debug)]
pub struct Edf {
    queue: KeyedQueue,
    /// Relative deadline granted to every request on arrival.
    deadline: SimDuration,
    /// Extra slack per unit of service: deadline += service × stretch.
    stretch: u64,
}

impl Edf {
    /// EDF with the given relative deadline and no service stretch.
    pub fn new(deadline: SimDuration) -> Edf {
        Edf::with_stretch(deadline, 0)
    }

    /// EDF whose deadlines also scale with request size.
    pub fn with_stretch(deadline: SimDuration, stretch: u64) -> Edf {
        Edf {
            queue: KeyedQueue::new(),
            deadline,
            stretch,
        }
    }

    fn absolute_deadline(&self, task: &Task) -> u64 {
        task.arrived_at.as_nanos()
            + self.deadline.as_nanos()
            + task.service.as_nanos() * self.stretch
    }
}

impl SchedPolicy for Edf {
    fn enqueue(&mut self, now: SimTime, task: Task) {
        let d = self.absolute_deadline(&task);
        self.queue.push(now, d, task);
    }

    fn requeue(&mut self, now: SimTime, task: Task) {
        // arrived_at and service survive preemption, so this recomputes
        // the same deadline the request was admitted with.
        let d = self.absolute_deadline(&task);
        self.queue.push(now, d, task);
    }

    fn dequeue(&mut self, now: SimTime) -> Option<Task> {
        self.queue.pop(now)
    }

    fn len(&self) -> usize {
        self.queue.heap.len()
    }

    fn label(&self) -> String {
        if self.stretch == 0 {
            format!("edf:deadline={}", fmt_duration(self.deadline))
        } else {
            format!(
                "edf:deadline={},stretch={}",
                fmt_duration(self.deadline),
                self.stretch
            )
        }
    }

    fn mean_depth(&self, now: SimTime) -> f64 {
        self.queue.depth.tw.mean_until(now)
    }

    fn peak_depth(&self) -> usize {
        self.queue.depth.peak
    }

    // Failure hooks, explicitly no-ops: deadlines are computed from
    // admission time alone, never per worker; reclaimed requests re-enter
    // through `requeue` and recompute the same deadline.
    fn worker_down(&mut self, _now: SimTime, _worker: usize) {}
    fn worker_up(&mut self, _now: SimTime, _worker: usize) {}
    fn feedback(&mut self, _now: SimTime, _event: &FeedbackEvent) {}
}

/// Virtual-time precision multiplier for [`WeightedFair`].
const WFQ_SCALE: u128 = 1024;

/// Weighted-fair queueing across tenant lanes (SuperNIC-style per-tenant
/// arbitration). Requests hash onto `weights.len()` lanes by
/// `(client_id + req_id) % lanes` (the workload generator uses a single
/// client id, so req_id striping stands in for tenancy); each lane is a
/// FIFO charged virtual time inversely proportional to its weight.
#[derive(Debug)]
pub struct WeightedFair {
    lanes: Vec<VecDeque<Task>>,
    weights: Vec<u64>,
    /// Virtual finish time of each lane's head request.
    finish: Vec<u128>,
    vtime: u128,
    queued: usize,
    depth: DepthStats,
}

impl WeightedFair {
    /// WFQ over `weights.len()` lanes; zero weights are bumped to one.
    pub fn new(weights: Vec<u64>) -> WeightedFair {
        let weights: Vec<u64> = if weights.is_empty() {
            vec![1]
        } else {
            weights.iter().map(|&w| w.max(1)).collect()
        };
        let n = weights.len();
        WeightedFair {
            lanes: (0..n).map(|_| VecDeque::new()).collect(),
            weights,
            finish: vec![0; n],
            vtime: 0,
            queued: 0,
            depth: DepthStats::new(),
        }
    }

    fn lane_of(&self, task: &Task) -> usize {
        ((task.client_id as u64 + task.req_id) % self.lanes.len() as u64) as usize
    }

    fn charge(&self, lane: usize, task: &Task) -> u128 {
        task.remaining.as_nanos() as u128 * WFQ_SCALE / self.weights[lane] as u128
    }

    fn push(&mut self, now: SimTime, task: Task) {
        let lane = self.lane_of(&task);
        if self.lanes[lane].is_empty() {
            // Lane becomes backlogged: its head finishes one weighted
            // charge past the later of now-in-virtual-time and its own
            // previous finish (the standard WFQ start-time rule).
            let start = self.vtime.max(self.finish[lane]);
            self.finish[lane] = start + self.charge(lane, &task);
        }
        self.lanes[lane].push_back(task);
        self.queued += 1;
        self.depth.set(now, self.queued);
    }

    /// Fairness is epoch-scoped to the worker membership: when the
    /// failure detector changes the fleet, accumulated cross-tenant
    /// virtual lead no longer reflects real capacity. Re-tag every
    /// backlogged head one weighted charge past the current virtual time
    /// so post-change arbitration restarts from the weights alone —
    /// reclaimed re-dispatches then compete on weight, not on stale
    /// credit earned against the old fleet.
    fn rebase(&mut self) {
        for lane in 0..self.lanes.len() {
            if let Some(head) = self.lanes[lane].front().copied() {
                self.finish[lane] = self.vtime + self.charge(lane, &head);
            }
        }
    }
}

impl SchedPolicy for WeightedFair {
    fn enqueue(&mut self, now: SimTime, task: Task) {
        self.push(now, task);
    }

    fn requeue(&mut self, now: SimTime, task: Task) {
        self.push(now, task);
    }

    fn dequeue(&mut self, now: SimTime) -> Option<Task> {
        // Serve the backlogged lane with the earliest virtual finish;
        // ties break on lane index.
        let lane = (0..self.lanes.len())
            .filter(|&i| !self.lanes[i].is_empty())
            .min_by_key(|&i| (self.finish[i], i))?;
        let task = self.lanes[lane]
            .pop_front()
            .expect("lane checked non-empty");
        self.vtime = self.finish[lane];
        if let Some(next) = self.lanes[lane].front() {
            let next = *next;
            self.finish[lane] += self.charge(lane, &next);
        }
        self.queued -= 1;
        self.depth.set(now, self.queued);
        Some(task)
    }

    fn worker_down(&mut self, _now: SimTime, _worker: usize) {
        self.rebase();
    }

    fn worker_up(&mut self, _now: SimTime, _worker: usize) {
        self.rebase();
    }

    // Explicitly no-op: lane weights are static configuration; WFQ takes
    // no signal from completions (contrast Srpt, which learns sizes).
    fn feedback(&mut self, _now: SimTime, _event: &FeedbackEvent) {}

    fn len(&self) -> usize {
        self.queued
    }

    fn label(&self) -> String {
        let ws: Vec<String> = self.weights.iter().map(|w| w.to_string()).collect();
        format!("wfq:w={}", ws.join(","))
    }

    fn mean_depth(&self, now: SimTime) -> f64 {
        self.depth.tw.mean_until(now)
    }

    fn peak_depth(&self) -> usize {
        self.depth.peak
    }
}

/// Exhaustively drain a policy via `dequeue`, for tests.
#[cfg(test)]
fn drain(q: &mut dyn SchedPolicy, now: SimTime) -> Vec<u64> {
    std::iter::from_fn(|| q.dequeue(now).map(|t| t.req_id)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(id: u64, service_us: u64) -> Task {
        Task::new(
            id,
            0,
            SimDuration::from_micros(service_us),
            SimTime::ZERO,
            SimTime::ZERO,
            0,
        )
    }

    fn arrived(id: u64, service_us: u64, at_us: u64) -> Task {
        Task::new(
            id,
            0,
            SimDuration::from_micros(service_us),
            SimTime::ZERO,
            SimTime::from_micros(at_us),
            0,
        )
    }

    fn us(n: u64) -> SimTime {
        SimTime::from_micros(n)
    }

    fn view(worker: usize) -> WorkerView {
        WorkerView {
            worker,
            outstanding: 0,
            last_req: None,
            idle_since: Some(SimTime::ZERO),
            health: crate::WorkerHealth::Healthy,
        }
    }

    #[test]
    fn cfcfs_is_fifo_with_its_own_label() {
        let mut q = Cfcfs::new();
        q.enqueue(us(0), task(1, 50));
        q.enqueue(us(0), task(2, 1));
        assert_eq!(drain(&mut q, us(1)), vec![1, 2]);
        assert_eq!(q.label(), "cfcfs");
    }

    #[test]
    fn dfcfs_binds_to_home_workers() {
        let mut q = Dfcfs::new();
        q.init(4);
        for id in 0..16 {
            q.enqueue(us(0), task(id, 5));
        }
        // Every pick must go to the task's RSS home.
        let views: Vec<WorkerView> = (0..4).map(view).collect();
        for _ in 0..16 {
            let p = q.pick_next(us(1), &views).expect("queue non-empty");
            assert_eq!(p.worker, Some(rss_home(p.task.req_id, 4)));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn dfcfs_blocks_when_home_worker_is_busy() {
        let mut q = Dfcfs::new();
        q.init(4);
        let t = task(7, 5);
        let home = rss_home(7, 4);
        q.enqueue(us(0), t);
        let others: Vec<WorkerView> = (0..4).filter(|&w| w != home).map(view).collect();
        assert!(
            q.pick_next(us(1), &others).is_none(),
            "head-of-line blocking: only the home worker may serve"
        );
        assert_eq!(q.len(), 1);
        assert_eq!(
            q.pick_next(us(1), &[view(home)]).unwrap().worker,
            Some(home)
        );
    }

    #[test]
    fn dfcfs_serves_globally_oldest_among_candidates() {
        let mut q = Dfcfs::new();
        q.init(2);
        // Find ids homed to each worker.
        let id0 = (0..100).find(|&i| rss_home(i, 2) == 0).unwrap();
        let id1 = (0..100).find(|&i| rss_home(i, 2) == 1).unwrap();
        q.enqueue(us(0), task(id1, 5)); // oldest, homed to 1
        q.enqueue(us(0), task(id0, 5));
        let views = [view(0), view(1)];
        let p = q.pick_next(us(1), &views).unwrap();
        assert_eq!(p.task.req_id, id1, "oldest admission dispatches first");
    }

    #[test]
    fn srpt_learns_sizes_from_feedback() {
        let mut q = Srpt::new();
        assert_eq!(q.estimate(), SimDuration::ZERO);
        q.feedback(
            us(0),
            &FeedbackEvent::Completed {
                worker: 0,
                req_id: 1,
                service: SimDuration::from_micros(8),
            },
        );
        assert_eq!(
            q.estimate(),
            SimDuration::from_micros(8),
            "first sample seeds"
        );
        q.feedback(
            us(0),
            &FeedbackEvent::Completed {
                worker: 0,
                req_id: 2,
                service: SimDuration::from_micros(16),
            },
        );
        // est += (16 - 8) / 8 = 1us.
        assert_eq!(q.estimate(), SimDuration::from_micros(9));
    }

    #[test]
    fn srpt_ranks_preempted_remaining_against_estimate() {
        let mut q = Srpt::new();
        q.feedback(
            us(0),
            &FeedbackEvent::Completed {
                worker: 0,
                req_id: 99,
                service: SimDuration::from_micros(10),
            },
        );
        // Preempted task with 2us left beats fresh tasks (estimated 10us);
        // preempted with 50us left loses to them.
        let nearly_done = task(1, 52).after_preemption(SimDuration::from_micros(50));
        let long_tail = task(2, 60).after_preemption(SimDuration::from_micros(10));
        q.requeue(us(0), nearly_done);
        q.requeue(us(0), long_tail);
        q.enqueue(us(0), task(3, 10));
        assert_eq!(drain(&mut q, us(1)), vec![1, 3, 2]);
    }

    #[test]
    fn srpt_grants_budgets_once_informed() {
        let mut q = Srpt::new();
        let t = task(1, 100);
        let r = RunningTask {
            worker: 0,
            task: &t,
        };
        assert_eq!(
            q.should_preempt(us(0), &r),
            PreemptDecision::Inherit,
            "no samples yet: defer to the configured slice"
        );
        q.feedback(
            us(0),
            &FeedbackEvent::Completed {
                worker: 0,
                req_id: 9,
                service: SimDuration::from_micros(5),
            },
        );
        // Budget = 200% of the 5us estimate.
        assert_eq!(
            q.should_preempt(us(0), &r),
            PreemptDecision::Budget(SimDuration::from_micros(10))
        );
    }

    #[test]
    fn srpt_budget_floor_holds() {
        let mut q = Srpt::new();
        q.feedback(
            us(0),
            &FeedbackEvent::Completed {
                worker: 0,
                req_id: 9,
                service: SimDuration::from_nanos(100),
            },
        );
        let t = task(1, 100);
        let r = RunningTask {
            worker: 0,
            task: &t,
        };
        assert_eq!(
            q.should_preempt(us(0), &r),
            PreemptDecision::Budget(SimDuration::from_micros(1)),
            "floor guards against preemption storms"
        );
    }

    #[test]
    fn edf_orders_by_deadline_and_keeps_it_across_requeue() {
        let mut q = Edf::new(SimDuration::from_micros(50));
        q.enqueue(us(30), arrived(1, 5, 30)); // deadline 80
        q.enqueue(us(31), arrived(2, 5, 10)); // deadline 60 (older arrival)
        assert_eq!(drain(&mut q, us(32)), vec![2, 1]);

        // A preempted request re-enters with its original deadline.
        let preempted = arrived(3, 20, 0).after_preemption(SimDuration::from_micros(10));
        q.requeue(us(40), preempted); // deadline 50, beats both above
        q.enqueue(us(40), arrived(4, 5, 25)); // deadline 75
        assert_eq!(drain(&mut q, us(41)), vec![3, 4]);
    }

    #[test]
    fn wfq_shares_by_weight() {
        // Two lanes, 3:1. Lane of id = (0 + id) % 2.
        let mut q = WeightedFair::new(vec![3, 1]);
        for id in 0..12 {
            q.enqueue(us(0), task(id, 10));
        }
        let order = drain(&mut q, us(1));
        // In any prefix, the weight-3 lane (even ids) should lead ~3:1.
        let first8: Vec<u64> = order.iter().take(8).copied().collect();
        let evens = first8.iter().filter(|id| *id % 2 == 0).count();
        assert!(evens >= 5, "weight-3 lane dominates early: {order:?}");
        // Everything drains exactly once.
        let mut all = order.clone();
        all.sort_unstable();
        assert_eq!(all, (0..12).collect::<Vec<u64>>());
        assert_eq!(q.label(), "wfq:w=3,1");
    }

    #[test]
    fn wfq_equal_weights_interleave() {
        let mut q = WeightedFair::new(vec![1, 1]);
        for id in 0..6 {
            q.enqueue(us(0), task(id, 10));
        }
        let order = drain(&mut q, us(1));
        // Equal weights, equal sizes: strict alternation.
        assert_eq!(order, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn dfcfs_rehomes_queued_and_future_work_on_worker_down() {
        let mut q = Dfcfs::new();
        q.init(4);
        let homed2 = (0..100).find(|&i| rss_home(i, 4) == 2).unwrap();
        let homed2b = (homed2 + 1..200).find(|&i| rss_home(i, 4) == 2).unwrap();
        q.enqueue(us(0), task(homed2, 5));
        q.worker_down(us(1), 2);
        // Queued work moved to the next live worker and serves there.
        let views: Vec<WorkerView> = [0, 1, 3].into_iter().map(view).collect();
        let p = q
            .pick_next(us(2), &views)
            .expect("re-homed task dispatchable");
        assert_eq!(p.task.req_id, homed2);
        assert_eq!(p.worker, Some(3), "next live worker after 2");
        // New arrivals for the dead home redirect too.
        q.enqueue(us(3), task(homed2b, 5));
        let p = q.pick_next(us(4), &views).unwrap();
        assert_eq!(p.worker, Some(3));
        // After readmission, fresh arrivals home to 2 again.
        q.worker_up(us(5), 2);
        q.enqueue(us(6), task(homed2, 5));
        let p = q.pick_next(us(7), &[view(2)]).unwrap();
        assert_eq!(p.worker, Some(2));
    }

    #[test]
    fn dfcfs_rehoming_preserves_global_fifo() {
        let mut q = Dfcfs::new();
        q.init(4);
        let homed2 = (0..100).find(|&i| rss_home(i, 4) == 2).unwrap();
        let homed3 = (0..100).find(|&i| rss_home(i, 4) == 3).unwrap();
        q.enqueue(us(0), task(homed2, 5)); // admitted first
        q.enqueue(us(0), task(homed3, 5));
        q.worker_down(us(1), 2);
        // Both now serve on worker 3; admission order must hold.
        let order: Vec<u64> = (0..2)
            .map(|_| q.pick_next(us(2), &[view(3)]).unwrap().task.req_id)
            .collect();
        assert_eq!(order, vec![homed2, homed3]);
    }

    #[test]
    fn srpt_relearns_fast_after_membership_change() {
        let done = |id: u64, service_us: u64| FeedbackEvent::Completed {
            worker: 0,
            req_id: id,
            service: SimDuration::from_micros(service_us),
        };
        let mut slow = Srpt::new();
        let mut fast = Srpt::new();
        for q in [&mut slow, &mut fast] {
            q.feedback(us(0), &done(1, 80));
        }
        fast.worker_down(us(1), 0);
        for q in [&mut slow, &mut fast] {
            q.feedback(us(2), &done(2, 8));
        }
        // Steady gain 8: 80 - 72/8 = 71us. Fast-relearn gain 2: 80 - 72/2.
        assert_eq!(slow.estimate(), SimDuration::from_micros(71));
        assert_eq!(fast.estimate(), SimDuration::from_micros(44));
    }

    #[test]
    fn wfq_membership_change_rebases_virtual_time() {
        // Weights 3:1; even ids land on lane 0, odd on lane 1.
        let mut plain = WeightedFair::new(vec![3, 1]);
        let mut rebased = WeightedFair::new(vec![3, 1]);
        for q in [&mut plain, &mut rebased] {
            for id in 0..7 {
                q.enqueue(us(0), task(id, 10));
            }
            for _ in 0..3 {
                q.dequeue(us(1));
            }
        }
        // Without a membership change the low-weight lane's head is next
        // (its finish tag predates lane 0's accumulated charges); after
        // rebase both heads restart from vtime and weight 3 leads again.
        assert_eq!(plain.dequeue(us(2)).unwrap().req_id % 2, 1);
        rebased.worker_down(us(2), 0);
        assert_eq!(rebased.dequeue(us(2)).unwrap().req_id % 2, 0);
    }

    #[test]
    fn disciplines_conserve_work() {
        let policies: Vec<Box<dyn SchedPolicy>> = vec![
            Box::new(Cfcfs::new()),
            Box::new(Dfcfs::new()),
            Box::new(Srpt::new()),
            Box::new(Edf::new(SimDuration::from_micros(50))),
            Box::new(WeightedFair::new(vec![4, 1, 1])),
        ];
        for mut p in policies {
            p.init(4);
            for id in 0..40 {
                p.enqueue(us(id), task(id, 1 + id % 7));
            }
            let mut out = drain(p.as_mut(), us(100));
            out.sort_unstable();
            assert_eq!(out, (0..40).collect::<Vec<u64>>(), "{}", p.label());
            assert!(p.is_empty());
            assert_eq!(p.peak_depth(), 40);
        }
    }
}
