//! NIC-side failure detection: leases, heartbeats and worker health.
//!
//! The dispatcher sees every assignment and every completion, which makes
//! it the natural place to detect a worker that has stopped making
//! progress — long before the client-side retry timeout fires. The
//! [`HealthTracker`] implements a deterministic lease discipline: a worker
//! holding outstanding work owes the NIC a *completion or heartbeat*
//! within the configured suspicion window, measured in simulated time
//! against activity timestamps the dispatcher records. No wall clocks are
//! involved and all per-worker state is index-addressed (`Vec`), so the
//! tracker is bit-deterministic and passes the simlint container rules.
//!
//! # State machine
//!
//! ```text
//!            lease expires                 lease expires again
//! Healthy ───────────────────▶ Suspected ───────────────────▶ Dead
//!    ▲                            │                            │
//!    │ clean window               │ any activity               │ any activity
//!    │                            ▼                            ▼
//!    └──────────────────────── Readmitted ◀────────────────────┘
//! ```
//!
//! * **Healthy** — lease current (or nothing owed). Selectable.
//! * **Suspected** — the lease expired while the worker held outstanding
//!   work. The dispatcher reclaims its in-flight requests for re-dispatch
//!   and stops selecting it.
//! * **Dead** — suspected for a further `dead_after - suspect_after`
//!   without any sign of life. Terminal for a crashed worker; still
//!   reversible, because "dead" is a verdict about silence, not hardware.
//! * **Readmitted** — a suspected/dead worker produced activity (a late
//!   completion, preemption notice, or heartbeat): the suspicion was a
//!   false positive. Selectable again immediately; promoted back to
//!   Healthy after one clean suspicion window.
//!
//! Idle workers owe nothing: suspicion only arms while the worker has
//! outstanding assignments, so an assembly without a heartbeat channel
//! (e.g. rpcvalet) cannot wedge itself by suspecting an idle fleet.
//! Assignments renew the lease — a request handed to a worker at `t` is
//! owed back by `t + suspect_after`, not by `last_completion +
//! suspect_after`.

use sim_core::{SimDuration, SimTime};

/// Per-worker liveness verdict, surfaced to policies through
/// [`WorkerView::health`](crate::WorkerView::health).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum WorkerHealth {
    /// Lease current (or nothing owed). Selectable.
    #[default]
    Healthy,
    /// Lease expired with work outstanding; quarantined, orphans reclaimed.
    Suspected,
    /// Suspected and silent past the dead window.
    Dead,
    /// Suspicion proven false by late activity; selectable again.
    Readmitted,
}

impl WorkerHealth {
    /// Whether the dispatcher may assign new work to a worker in this
    /// state.
    pub fn selectable(self) -> bool {
        matches!(self, WorkerHealth::Healthy | WorkerHealth::Readmitted)
    }
}

/// Timing knobs for the lease discipline. `Copy` so it can ride inside
/// `ResilienceConfig` through the sweep runners.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// A worker with outstanding work owing no activity for this long is
    /// suspected and its in-flight requests are reclaimed.
    pub suspect_after: SimDuration,
    /// A suspected worker silent for this long (measured from its last
    /// activity) is declared dead. Must exceed `suspect_after`.
    pub dead_after: SimDuration,
    /// Worker-side heartbeat cadence on the completion path, and the
    /// NIC-side health-check tick. Must be below `suspect_after` or every
    /// lease would expire between renewals.
    pub heartbeat: SimDuration,
}

impl RecoveryPolicy {
    /// Defaults in paper scale: 5 µs heartbeats (matching the feedback
    /// cadence), suspicion at 30 µs, death at 120 µs.
    pub fn paper_default() -> RecoveryPolicy {
        RecoveryPolicy {
            suspect_after: SimDuration::from_micros(30),
            dead_after: SimDuration::from_micros(120),
            heartbeat: SimDuration::from_micros(5),
        }
    }

    /// A policy with the given suspicion window; death at 4× the window,
    /// heartbeats at the paper cadence (capped at half the window).
    pub fn with_suspicion(window: SimDuration) -> RecoveryPolicy {
        assert!(window > SimDuration::ZERO, "empty suspicion window");
        let paper = RecoveryPolicy::paper_default();
        RecoveryPolicy {
            suspect_after: window,
            dead_after: SimDuration::from_nanos(window.as_nanos().saturating_mul(4)),
            heartbeat: paper
                .heartbeat
                .min(SimDuration::from_nanos((window.as_nanos() / 2).max(1))),
        }
    }
}

/// Recovery ledger counters, reported into `FaultMetrics` by the
/// assemblies.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Healthy/Readmitted → Suspected transitions.
    pub suspicions: u64,
    /// Suspected → Dead transitions.
    pub deaths: u64,
    /// Suspected/Dead → Readmitted transitions (false positives).
    pub readmissions: u64,
}

/// Deterministic lease/heartbeat health tracker for one dispatcher's
/// worker fleet. All state is `Vec`-indexed by worker; time only advances
/// through the instants the dispatcher passes in.
#[derive(Debug)]
pub struct HealthTracker {
    policy: RecoveryPolicy,
    /// Last proof of life (completion, preemption notice, or heartbeat),
    /// extended by assignments (lease renewal).
    last_seen: Vec<SimTime>,
    state: Vec<WorkerHealth>,
    /// Transition counters for the recovery ledger.
    pub stats: RecoveryStats,
}

impl HealthTracker {
    /// A tracker for `workers` workers, all Healthy with fresh leases.
    pub fn new(workers: usize, policy: RecoveryPolicy) -> HealthTracker {
        assert!(
            policy.dead_after > policy.suspect_after,
            "dead window must exceed the suspicion window"
        );
        HealthTracker {
            policy,
            last_seen: vec![SimTime::ZERO; workers],
            state: vec![WorkerHealth::Healthy; workers],
            stats: RecoveryStats::default(),
        }
    }

    /// The timing policy this tracker enforces.
    pub fn policy(&self) -> RecoveryPolicy {
        self.policy
    }

    /// Current verdict for `worker`.
    pub fn state_of(&self, worker: usize) -> WorkerHealth {
        self.state[worker]
    }

    /// Proof of life from `worker` (completion, preemption notice, or
    /// heartbeat). Returns `true` when this readmits a suspected or dead
    /// worker — the caller should fire the policy's `worker_up` hook and
    /// re-drain.
    pub fn on_activity(&mut self, now: SimTime, worker: usize) -> bool {
        self.last_seen[worker] = self.last_seen[worker].max(now);
        match self.state[worker] {
            WorkerHealth::Suspected | WorkerHealth::Dead => {
                self.state[worker] = WorkerHealth::Readmitted;
                self.stats.readmissions += 1;
                true
            }
            WorkerHealth::Healthy | WorkerHealth::Readmitted => false,
        }
    }

    /// Lease renewal on assignment: work handed to `worker` at `now` is
    /// owed back within the suspicion window from *now*. Not proof of
    /// life, so never readmits.
    pub fn on_assign(&mut self, now: SimTime, worker: usize) {
        self.last_seen[worker] = self.last_seen[worker].max(now);
    }

    /// Advance the state machine to `now`. `outstanding[w]` gates
    /// suspicion: a worker owing nothing cannot be suspected. Returns the
    /// workers newly *suspected* this tick, in index order — the caller
    /// reclaims their in-flight work and fires `worker_down`.
    pub fn check(&mut self, now: SimTime, outstanding: &[u32]) -> Vec<usize> {
        let mut newly_suspected = Vec::new();
        for (w, &owed) in outstanding.iter().enumerate().take(self.state.len()) {
            let silent_for = now.saturating_duration_since(self.last_seen[w]);
            match self.state[w] {
                WorkerHealth::Healthy | WorkerHealth::Readmitted
                    if owed > 0 && silent_for > self.policy.suspect_after =>
                {
                    self.state[w] = WorkerHealth::Suspected;
                    self.stats.suspicions += 1;
                    newly_suspected.push(w);
                }
                // Probation clears once the worker shows life within the
                // current window.
                WorkerHealth::Readmitted if silent_for <= self.policy.suspect_after => {
                    self.state[w] = WorkerHealth::Healthy;
                }
                WorkerHealth::Suspected if silent_for > self.policy.dead_after => {
                    self.state[w] = WorkerHealth::Dead;
                    self.stats.deaths += 1;
                }
                _ => {}
            }
        }
        newly_suspected
    }

    /// Whether the dispatcher may assign new work to `worker`.
    pub fn selectable(&self, worker: usize) -> bool {
        self.state[worker].selectable()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> SimTime {
        SimTime::from_micros(n)
    }

    fn tracker() -> HealthTracker {
        HealthTracker::new(2, RecoveryPolicy::paper_default())
    }

    #[test]
    fn idle_workers_are_never_suspected() {
        let mut t = tracker();
        assert!(t.check(us(10_000), &[0, 0]).is_empty());
        assert_eq!(t.state_of(0), WorkerHealth::Healthy);
        assert_eq!(t.stats, RecoveryStats::default());
    }

    #[test]
    fn silence_with_outstanding_work_escalates_to_dead() {
        let mut t = tracker();
        t.on_assign(us(10), 0);
        assert!(t.check(us(35), &[1, 0]).is_empty(), "inside the window");
        assert_eq!(t.check(us(41), &[1, 0]), vec![0], "lease expired");
        assert_eq!(t.state_of(0), WorkerHealth::Suspected);
        assert!(!t.selectable(0));
        assert!(t.check(us(100), &[1, 0]).is_empty(), "no double suspicion");
        assert!(t.check(us(131), &[1, 0]).is_empty());
        assert_eq!(t.state_of(0), WorkerHealth::Dead);
        assert_eq!(
            t.stats,
            RecoveryStats {
                suspicions: 1,
                deaths: 1,
                readmissions: 0
            }
        );
    }

    #[test]
    fn activity_renews_the_lease() {
        let mut t = tracker();
        t.on_assign(us(10), 0);
        t.on_activity(us(30), 0);
        assert!(t.check(us(55), &[1, 0]).is_empty(), "renewed at 30");
        assert_eq!(t.check(us(61), &[1, 0]), vec![0]);
    }

    #[test]
    fn late_activity_readmits_and_probation_clears() {
        let mut t = tracker();
        t.on_assign(us(0), 1);
        assert_eq!(t.check(us(31), &[0, 1]), vec![1]);
        assert!(t.on_activity(us(40), 1), "late completion readmits");
        assert_eq!(t.state_of(1), WorkerHealth::Readmitted);
        assert!(t.selectable(1));
        t.check(us(45), &[0, 0]);
        assert_eq!(t.state_of(1), WorkerHealth::Healthy, "clean probation");
        assert_eq!(t.stats.readmissions, 1);
    }

    #[test]
    fn readmitted_worker_can_be_suspected_again() {
        let mut t = tracker();
        t.on_assign(us(0), 0);
        assert_eq!(t.check(us(31), &[1, 0]), vec![0]);
        t.on_activity(us(40), 0);
        t.on_assign(us(41), 0);
        assert_eq!(t.check(us(75), &[1, 0]), vec![0], "probation violated");
        assert_eq!(t.stats.suspicions, 2);
    }

    #[test]
    fn dead_worker_readmits_on_activity() {
        let mut t = tracker();
        t.on_assign(us(0), 0);
        t.check(us(31), &[1, 0]);
        t.check(us(125), &[1, 0]);
        assert_eq!(t.state_of(0), WorkerHealth::Dead);
        assert!(t.on_activity(us(130), 0));
        assert_eq!(t.state_of(0), WorkerHealth::Readmitted);
    }

    #[test]
    fn with_suspicion_scales_the_windows() {
        let p = RecoveryPolicy::with_suspicion(SimDuration::from_micros(10));
        assert_eq!(p.suspect_after, SimDuration::from_micros(10));
        assert_eq!(p.dead_after, SimDuration::from_micros(40));
        assert!(p.heartbeat <= SimDuration::from_micros(5));
        assert!(p.heartbeat < p.suspect_after);
    }
}
