//! Worker (core) selection strategies.
//!
//! With fine-grained core feedback the NIC can choose *which* core gets a
//! request, not just which request runs next. §3.1 sketches the payoff:
//! feedback could include "performance counter data used to predict the
//! state of each core's caches and provide good scheduling affinity". The
//! prototype assigns the head-of-queue request to any available worker;
//! richer selectors are framework extensions exercised by the ablations.

use sim_core::SimTime;

use crate::recovery::WorkerHealth;

/// What the dispatcher knows about one worker when selecting.
#[derive(Clone, Copy, Debug)]
pub struct WorkerView {
    /// Worker index (dense, 0-based).
    pub worker: usize,
    /// Requests currently outstanding at the worker (executing + stashed
    /// in its RX queue under the §3.4.5 queuing optimization).
    pub outstanding: u32,
    /// The last request id this worker executed, if any (for affinity).
    pub last_req: Option<u64>,
    /// When the worker last went idle (for LIFO warm-core selection).
    pub idle_since: Option<SimTime>,
    /// The failure detector's verdict on this worker. Candidates shown to
    /// `pick_next`/`select` are always selectable (`Healthy` or
    /// `Readmitted`); the distinction lets a policy treat a worker on
    /// readmission probation more cautiously. Always `Healthy` when
    /// recovery is off.
    pub health: WorkerHealth,
}

/// A worker-selection strategy.
pub trait CoreSelector {
    /// Choose among `candidates` (all satisfy the outstanding cap;
    /// non-empty) for `req_id`. Returns an index *into `candidates`*.
    fn select(&mut self, candidates: &[WorkerView], req_id: u64) -> usize;
    /// Strategy name for reports.
    fn name(&self) -> &'static str;
}

/// Pick the candidate with the fewest outstanding requests, lowest index
/// first — the prototype's behaviour of preferring idle workers.
#[derive(Debug, Default)]
pub struct LeastOutstanding;

impl CoreSelector for LeastOutstanding {
    fn select(&mut self, candidates: &[WorkerView], _req_id: u64) -> usize {
        let mut best = 0;
        for (i, c) in candidates.iter().enumerate().skip(1) {
            if c.outstanding < candidates[best].outstanding {
                best = i;
            }
        }
        best
    }

    fn name(&self) -> &'static str {
        "least-outstanding"
    }
}

/// Rotate across workers regardless of load.
#[derive(Debug, Default)]
pub struct RoundRobin {
    next: usize,
}

impl CoreSelector for RoundRobin {
    fn select(&mut self, candidates: &[WorkerView], _req_id: u64) -> usize {
        let i = self.next % candidates.len();
        self.next = self.next.wrapping_add(1);
        i
    }

    fn name(&self) -> &'static str {
        "round-robin"
    }
}

/// Prefer the worker that previously ran this request (its context and
/// data are cache-warm); fall back to least-outstanding.
#[derive(Debug, Default)]
pub struct Affinity {
    fallback: LeastOutstanding,
}

impl CoreSelector for Affinity {
    fn select(&mut self, candidates: &[WorkerView], req_id: u64) -> usize {
        candidates
            .iter()
            .position(|c| c.last_req == Some(req_id))
            .unwrap_or_else(|| self.fallback.select(candidates, req_id))
    }

    fn name(&self) -> &'static str {
        "affinity"
    }
}

/// Pick the most-recently-idled worker (LIFO): keeps the working set hot
/// on few cores and lets the rest idle deeply — the selection policy
/// centralized schedulers like Shenango use.
#[derive(Debug, Default)]
pub struct MostRecentlyIdle;

impl CoreSelector for MostRecentlyIdle {
    fn select(&mut self, candidates: &[WorkerView], _req_id: u64) -> usize {
        let mut best = 0;
        for (i, c) in candidates.iter().enumerate().skip(1) {
            if c.idle_since > candidates[best].idle_since {
                best = i;
            }
        }
        best
    }

    fn name(&self) -> &'static str {
        "most-recently-idle"
    }
}

/// Prefer workers on the NIC's socket — where DDIO pre-loaded the packet
/// (§1's multi-socket warning). Falls back to least-outstanding off-socket
/// when every local worker is at the cap.
#[derive(Debug)]
pub struct SocketAffinity {
    /// Socket of each worker, by global worker index.
    pub sockets: Vec<u8>,
    /// The socket whose LLC receives DDIO traffic.
    pub nic_socket: u8,
    fallback: LeastOutstanding,
}

impl SocketAffinity {
    /// Build from a worker→socket map.
    pub fn new(sockets: Vec<u8>, nic_socket: u8) -> SocketAffinity {
        SocketAffinity {
            sockets,
            nic_socket,
            fallback: LeastOutstanding,
        }
    }
}

impl CoreSelector for SocketAffinity {
    fn select(&mut self, candidates: &[WorkerView], req_id: u64) -> usize {
        // Least-outstanding among NIC-socket candidates, if any exist.
        let mut best: Option<usize> = None;
        for (i, c) in candidates.iter().enumerate() {
            if self.sockets.get(c.worker).copied().unwrap_or(0) != self.nic_socket {
                continue;
            }
            match best {
                Some(b) if candidates[b].outstanding <= c.outstanding => {}
                _ => best = Some(i),
            }
        }
        best.unwrap_or_else(|| self.fallback.select(candidates, req_id))
    }

    fn name(&self) -> &'static str {
        "socket-affinity"
    }
}

// Boxed selectors are selectors, so assemblies can pick one at runtime.
impl CoreSelector for Box<dyn CoreSelector> {
    fn select(&mut self, candidates: &[WorkerView], req_id: u64) -> usize {
        (**self).select(candidates, req_id)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(worker: usize, outstanding: u32) -> WorkerView {
        WorkerView {
            worker,
            outstanding,
            last_req: None,
            idle_since: None,
            health: WorkerHealth::Healthy,
        }
    }

    #[test]
    fn least_outstanding_prefers_idle() {
        let mut s = LeastOutstanding;
        let c = [view(0, 2), view(1, 0), view(2, 1)];
        assert_eq!(s.select(&c, 1), 1);
    }

    #[test]
    fn least_outstanding_ties_pick_lowest_index() {
        let mut s = LeastOutstanding;
        let c = [view(3, 1), view(5, 1), view(7, 1)];
        assert_eq!(s.select(&c, 1), 0);
    }

    #[test]
    fn round_robin_rotates() {
        let mut s = RoundRobin::default();
        let c = [view(0, 0), view(1, 0), view(2, 0)];
        assert_eq!(s.select(&c, 1), 0);
        assert_eq!(s.select(&c, 2), 1);
        assert_eq!(s.select(&c, 3), 2);
        assert_eq!(s.select(&c, 4), 0);
    }

    #[test]
    fn affinity_finds_previous_worker() {
        let mut s = Affinity::default();
        let mut c = [view(0, 0), view(1, 3), view(2, 0)];
        c[1].last_req = Some(42);
        // Affinity outweighs load for the request that ran there before.
        assert_eq!(s.select(&c, 42), 1);
        // Other requests fall back to least-outstanding.
        assert_eq!(s.select(&c, 7), 0);
    }

    #[test]
    fn most_recently_idle_is_lifo() {
        let mut s = MostRecentlyIdle;
        let mut c = [view(0, 0), view(1, 0), view(2, 0)];
        c[0].idle_since = Some(SimTime::from_micros(5));
        c[1].idle_since = Some(SimTime::from_micros(9));
        c[2].idle_since = Some(SimTime::from_micros(1));
        assert_eq!(s.select(&c, 1), 1);
    }

    #[test]
    fn socket_affinity_prefers_nic_socket() {
        // Workers 0-1 on socket 0 (NIC), 2-3 on socket 1.
        let mut s = SocketAffinity::new(vec![0, 0, 1, 1], 0);
        let c = [view(0, 2), view(1, 1), view(2, 0), view(3, 0)];
        // Worker 2/3 are idle, but 1 is on the NIC socket with slack.
        assert_eq!(s.select(&c, 9), 1);
        // With only off-socket candidates, fall back to least-outstanding.
        let off = [view(2, 1), view(3, 0)];
        assert_eq!(s.select(&off, 9), 1);
        assert_eq!(s.name(), "socket-affinity");
    }

    #[test]
    fn boxed_selector_delegates() {
        let mut s: Box<dyn CoreSelector> = Box::new(RoundRobin::default());
        let c = [view(0, 0), view(1, 0)];
        assert_eq!(s.select(&c, 1), 0);
        assert_eq!(s.select(&c, 2), 1);
        assert_eq!(s.name(), "round-robin");
    }

    #[test]
    fn never_idled_workers_lose_lifo() {
        let mut s = MostRecentlyIdle;
        let mut c = [view(0, 0), view(1, 0)];
        c[1].idle_since = Some(SimTime::ZERO);
        assert_eq!(s.select(&c, 1), 1, "Some(t) beats None");
    }
}
