//! String-keyed policy registry and spec grammar.
//!
//! Policies are looked up by name the way sched_ext schedulers are loaded
//! by name: a [`PolicyRegistry`] maps keys to builder functions, and a
//! textual spec selects one with parameters:
//!
//! ```text
//! spec     := key [ ':' param (',' param)* ]
//! param    := ident '=' value | value      // bare values extend the
//! value    := ident | integer | duration   // previous key's list
//! duration := integer ('ns'|'us'|'ms'|'s')
//! ```
//!
//! Examples: `"fcfs"`, `"srpt"`, `"edf:deadline=50us"`, `"wfq:w=4,1,1"`
//! (the bare `1,1` segments extend `w`'s value to the list `4,1,1`).
//!
//! [`PolicySpec`] is the `Copy` handle the system configs carry: it
//! interns the spec string, so a config struct stays `Copy` while naming
//! an arbitrarily-parameterized policy.

use std::collections::BTreeMap;
use std::fmt;
use std::str::FromStr;
use std::sync::{Mutex, OnceLock};

use sim_core::SimDuration;

use crate::disciplines::{Cfcfs, Dfcfs, Edf, Srpt, WeightedFair};
use crate::policy::{ClassPriority, Fcfs, SchedPolicy, ShortestRemaining};

/// A policy spec failed to parse or resolve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyError(String);

impl PolicyError {
    fn new(msg: impl Into<String>) -> PolicyError {
        PolicyError(msg.into())
    }
}

impl fmt::Display for PolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "policy spec error: {}", self.0)
    }
}

impl std::error::Error for PolicyError {}

/// The parsed `k=v` parameter bag a builder receives.
///
/// Values are lists so the grammar's bare-value continuation works:
/// `wfq:w=4,1,1` parses to `w -> ["4", "1", "1"]`.
#[derive(Debug, Clone, Default)]
pub struct PolicyParams {
    entries: Vec<(String, Vec<String>)>,
}

impl PolicyParams {
    /// Parse the parameter section of a spec (everything after the first
    /// `:`), or an empty bag from an empty string.
    pub fn parse(s: &str) -> Result<PolicyParams, PolicyError> {
        let mut entries: Vec<(String, Vec<String>)> = Vec::new();
        if s.is_empty() {
            return Ok(PolicyParams { entries });
        }
        for seg in s.split(',') {
            let seg = seg.trim();
            if seg.is_empty() {
                return Err(PolicyError::new("empty parameter segment"));
            }
            match seg.split_once('=') {
                Some((k, v)) => {
                    let k = k.trim();
                    if k.is_empty() {
                        return Err(PolicyError::new(format!("missing key in `{seg}`")));
                    }
                    if entries.iter().any(|(ek, _)| ek == k) {
                        return Err(PolicyError::new(format!("duplicate key `{k}`")));
                    }
                    entries.push((k.to_string(), vec![v.trim().to_string()]));
                }
                None => match entries.last_mut() {
                    // Bare value: continuation of the previous key's list.
                    Some((_, vs)) => vs.push(seg.to_string()),
                    None => {
                        return Err(PolicyError::new(format!(
                            "bare value `{seg}` with no preceding key"
                        )))
                    }
                },
            }
        }
        Ok(PolicyParams { entries })
    }

    /// Reject any key outside `allowed` — typo'd parameters fail loudly
    /// instead of silently falling back to defaults.
    pub fn expect_keys(&self, policy: &str, allowed: &[&str]) -> Result<(), PolicyError> {
        for (k, _) in &self.entries {
            if !allowed.contains(&k.as_str()) {
                return Err(PolicyError::new(format!(
                    "unknown key `{k}` for `{policy}` (allowed: {})",
                    allowed.join(", ")
                )));
            }
        }
        Ok(())
    }

    fn values(&self, key: &str) -> Option<&[String]> {
        self.entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, vs)| vs.as_slice())
    }

    fn single(&self, key: &str) -> Result<Option<&str>, PolicyError> {
        match self.values(key) {
            None => Ok(None),
            Some([v]) => Ok(Some(v)),
            Some(vs) => Err(PolicyError::new(format!(
                "`{key}` takes one value, got {}",
                vs.len()
            ))),
        }
    }

    /// Integer parameter with a default.
    pub fn get_u64(&self, key: &str, default: u64) -> Result<u64, PolicyError> {
        match self.single(key)? {
            None => Ok(default),
            Some(v) => v
                .parse::<u64>()
                .map_err(|_| PolicyError::new(format!("`{key}={v}` is not an integer"))),
        }
    }

    /// Duration parameter (`50us`, `10ms`, …) with a default.
    pub fn get_duration(
        &self,
        key: &str,
        default: SimDuration,
    ) -> Result<SimDuration, PolicyError> {
        match self.single(key)? {
            None => Ok(default),
            Some(v) => parse_duration(v)
                .ok_or_else(|| PolicyError::new(format!("`{key}={v}` is not a duration"))),
        }
    }

    /// Integer-list parameter (`w=4,1,1`) with a default.
    pub fn get_u64_list(&self, key: &str, default: &[u64]) -> Result<Vec<u64>, PolicyError> {
        match self.values(key) {
            None => Ok(default.to_vec()),
            Some(vs) => vs
                .iter()
                .map(|v| {
                    v.parse::<u64>().map_err(|_| {
                        PolicyError::new(format!("`{key}` element `{v}` is not an integer"))
                    })
                })
                .collect(),
        }
    }
}

/// Parse an integer duration with an `ns`/`us`/`ms`/`s` suffix.
pub fn parse_duration(s: &str) -> Option<SimDuration> {
    let (digits, mult) = if let Some(d) = s.strip_suffix("ns") {
        (d, 1)
    } else if let Some(d) = s.strip_suffix("us") {
        (d, 1_000)
    } else if let Some(d) = s.strip_suffix("ms") {
        (d, 1_000_000)
    } else if let Some(d) = s.strip_suffix('s') {
        (d, 1_000_000_000)
    } else {
        return None;
    };
    let n: u64 = digits.parse().ok()?;
    Some(SimDuration::from_nanos(n.checked_mul(mult)?))
}

/// Format a duration in the largest unit that represents it exactly, the
/// inverse of [`parse_duration`] (`SimDuration::from_micros(50)` →
/// `"50us"`).
pub fn fmt_duration(d: SimDuration) -> String {
    let ns = d.as_nanos();
    if ns == 0 {
        "0ns".to_string()
    } else if ns % 1_000_000_000 == 0 {
        format!("{}s", ns / 1_000_000_000)
    } else if ns % 1_000_000 == 0 {
        format!("{}ms", ns / 1_000_000)
    } else if ns % 1_000 == 0 {
        format!("{}us", ns / 1_000)
    } else {
        format!("{ns}ns")
    }
}

/// Builder function a registry entry wraps.
pub type PolicyBuilder = fn(&PolicyParams) -> Result<Box<dyn SchedPolicy>, PolicyError>;

struct RegistryEntry {
    build: PolicyBuilder,
    about: &'static str,
}

/// String-keyed policy registry: `key -> builder`.
pub struct PolicyRegistry {
    entries: BTreeMap<&'static str, RegistryEntry>,
}

impl PolicyRegistry {
    /// An empty registry.
    pub fn new() -> PolicyRegistry {
        PolicyRegistry {
            entries: BTreeMap::new(),
        }
    }

    /// Register `key`; replaces any previous builder under that key.
    pub fn register(&mut self, key: &'static str, about: &'static str, build: PolicyBuilder) {
        self.entries.insert(key, RegistryEntry { build, about });
    }

    /// Registered keys, sorted.
    pub fn names(&self) -> Vec<&'static str> {
        self.entries.keys().copied().collect()
    }

    /// One-line description of a registered key.
    pub fn about(&self, key: &str) -> Option<&'static str> {
        self.entries.get(key).map(|e| e.about)
    }

    /// Build a policy from a spec string (`key[:k=v,...]`).
    pub fn build(&self, spec: &str) -> Result<Box<dyn SchedPolicy>, PolicyError> {
        let spec = spec.trim();
        let (key, rest) = match spec.split_once(':') {
            Some((k, r)) => (k.trim(), r),
            None => (spec, ""),
        };
        if key.is_empty() {
            return Err(PolicyError::new("empty policy name"));
        }
        let entry = self.entries.get(key).ok_or_else(|| {
            PolicyError::new(format!(
                "unknown policy `{key}` (known: {})",
                self.names().join(", ")
            ))
        })?;
        let params = PolicyParams::parse(rest)?;
        (entry.build)(&params)
    }

    /// The standard registry: every policy this crate ships.
    pub fn standard() -> &'static PolicyRegistry {
        // simlint: allow(shard-isolation, reason=write-once policy registry, initialised before any simulation runs and read-only after)
        static STANDARD: OnceLock<PolicyRegistry> = OnceLock::new();
        STANDARD.get_or_init(|| {
            let mut r = PolicyRegistry::new();
            r.register(
                "fcfs",
                "single FIFO, tail re-enqueue (the paper's policy)",
                |p| {
                    p.expect_keys("fcfs", &[])?;
                    Ok(Box::new(Fcfs::new()))
                },
            );
            r.register("cfcfs", "centralized FCFS: shared FIFO, any worker", |p| {
                p.expect_keys("cfcfs", &[])?;
                Ok(Box::new(Cfcfs::new()))
            });
            r.register(
                "dfcfs",
                "distributed FCFS: RSS-hashed per-worker FIFOs",
                |p| {
                    p.expect_keys("dfcfs", &[])?;
                    Ok(Box::new(Dfcfs::new()))
                },
            );
            r.register(
                "srf",
                "shortest-remaining-first on wire-carried sizes",
                |p| {
                    p.expect_keys("srf", &[])?;
                    Ok(Box::new(ShortestRemaining::new()))
                },
            );
            r.register(
                "srpt",
                "SRPT on feedback-learned sizes [gain=8,boost=200,floor=1us]",
                |p| {
                    p.expect_keys("srpt", &["gain", "boost", "floor"])?;
                    let gain = p.get_u64("gain", 8)?;
                    let boost = p.get_u64("boost", 200)?;
                    let floor = p.get_duration("floor", SimDuration::from_micros(1))?;
                    if gain == 0 {
                        return Err(PolicyError::new("`gain` must be >= 1"));
                    }
                    Ok(Box::new(Srpt::with_params(gain, boost, floor)))
                },
            );
            r.register(
                "edf",
                "earliest-deadline-first [deadline=50us,stretch=0]",
                |p| {
                    p.expect_keys("edf", &["deadline", "stretch"])?;
                    let deadline = p.get_duration("deadline", SimDuration::from_micros(50))?;
                    let stretch = p.get_u64("stretch", 0)?;
                    Ok(Box::new(Edf::with_stretch(deadline, stretch)))
                },
            );
            r.register(
                "class-priority",
                "two-class priority by service cutoff [cutoff=10us]",
                |p| {
                    p.expect_keys("class-priority", &["cutoff"])?;
                    let cutoff = p.get_duration("cutoff", SimDuration::from_micros(10))?;
                    Ok(Box::new(ClassPriority::new(cutoff)))
                },
            );
            r.register("wfq", "weighted-fair over tenant lanes [w=1,1]", |p| {
                p.expect_keys("wfq", &["w"])?;
                let w = p.get_u64_list("w", &[1, 1])?;
                if w.is_empty() {
                    return Err(PolicyError::new("`w` needs at least one weight"));
                }
                Ok(Box::new(WeightedFair::new(w)))
            });
            r
        })
    }
}

impl Default for PolicyRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for PolicyRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PolicyRegistry")
            .field("names", &self.names())
            .finish()
    }
}

/// Intern a spec string so [`PolicySpec`] stays `Copy`. Each distinct
/// spec leaks once per process — specs come from CLI flags and config
/// literals, so the set is tiny.
fn intern(s: &str) -> &'static str {
    // simlint: allow(shard-isolation, reason=interner for CLI spec strings, touched only during argument parsing, never on the event-loop path)
    static TABLE: OnceLock<Mutex<BTreeMap<String, &'static str>>> = OnceLock::new();
    let table = TABLE.get_or_init(|| Mutex::new(BTreeMap::new()));
    let mut table = table.lock().expect("intern table poisoned");
    if let Some(&interned) = table.get(s) {
        return interned;
    }
    let leaked: &'static str = String::leak(s.to_string());
    table.insert(s.to_string(), leaked);
    leaked
}

/// A `Copy` handle to a registry policy: the spec string (`"fcfs"`,
/// `"edf:deadline=50us"`) plus the standard registry to resolve it.
///
/// System configs carry a `PolicySpec` instead of a policy value so they
/// remain `Copy`/`Eq` while naming parameterized policies.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct PolicySpec {
    spec: &'static str,
}

impl PolicySpec {
    /// The paper's default policy.
    pub const FCFS: PolicySpec = PolicySpec::named("fcfs");

    /// A spec from a static string, *without* validation — invalid specs
    /// surface when [`build`](PolicySpec::build) runs. Use
    /// [`parse`](PolicySpec::parse) for anything user-supplied.
    pub const fn named(spec: &'static str) -> PolicySpec {
        PolicySpec { spec }
    }

    /// Validate `s` against the standard registry (a throwaway build) and
    /// intern it.
    pub fn parse(s: &str) -> Result<PolicySpec, PolicyError> {
        let s = s.trim();
        PolicyRegistry::standard().build(s)?;
        Ok(PolicySpec { spec: intern(s) })
    }

    /// The spec string.
    pub fn as_str(&self) -> &'static str {
        self.spec
    }

    /// Build the policy.
    ///
    /// # Panics
    /// If the spec is invalid — impossible for specs from
    /// [`parse`](PolicySpec::parse), possible for [`named`](PolicySpec::named).
    pub fn build(&self) -> Box<dyn SchedPolicy> {
        match PolicyRegistry::standard().build(self.spec) {
            Ok(p) => p,
            Err(e) => panic!("invalid PolicySpec `{}`: {e}", self.spec),
        }
    }
}

impl Default for PolicySpec {
    fn default() -> Self {
        PolicySpec::FCFS
    }
}

impl fmt::Display for PolicySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.spec)
    }
}

impl fmt::Debug for PolicySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PolicySpec({})", self.spec)
    }
}

impl FromStr for PolicySpec {
    type Err = PolicyError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        PolicySpec::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::SimTime;

    #[test]
    fn grammar_round_trips_the_examples() {
        for spec in [
            "fcfs",
            "cfcfs",
            "dfcfs",
            "srf",
            "srpt",
            "edf:deadline=50us",
            "wfq:w=4,1,1",
            "class-priority:cutoff=10us",
        ] {
            let p = PolicyRegistry::standard().build(spec).expect(spec);
            // Defaults elide from labels; explicit non-defaults round-trip.
            match spec {
                "srpt" => assert_eq!(p.label(), "srpt"),
                "edf:deadline=50us" => assert_eq!(p.label(), "edf:deadline=50us"),
                _ => {}
            }
        }
    }

    #[test]
    fn bare_values_extend_the_previous_key() {
        let p = PolicyParams::parse("w=4,1,1").unwrap();
        assert_eq!(p.get_u64_list("w", &[]).unwrap(), vec![4, 1, 1]);
        let wfq = PolicyRegistry::standard().build("wfq:w=4,1,1").unwrap();
        assert_eq!(wfq.label(), "wfq:w=4,1,1");
    }

    #[test]
    fn unknown_policy_and_keys_are_rejected() {
        let r = PolicyRegistry::standard();
        assert!(r.build("zygos").is_err(), "unknown policy");
        assert!(r.build("fcfs:x=1").is_err(), "fcfs takes no params");
        assert!(r.build("edf:deadlnie=50us").is_err(), "typo'd key");
        assert!(r.build("srpt:gain=banana").is_err(), "non-integer");
        assert!(r.build("edf:deadline=50").is_err(), "missing unit");
        assert!(r.build("").is_err(), "empty spec");
        assert!(r.build("wfq:1,2").is_err(), "bare value without a key");
    }

    #[test]
    fn durations_parse_and_format() {
        assert_eq!(parse_duration("50us"), Some(SimDuration::from_micros(50)));
        assert_eq!(parse_duration("10ms"), Some(SimDuration::from_millis(10)));
        assert_eq!(
            parse_duration("3s"),
            Some(SimDuration::from_nanos(3_000_000_000))
        );
        assert_eq!(parse_duration("250ns"), Some(SimDuration::from_nanos(250)));
        assert_eq!(parse_duration("50"), None);
        assert_eq!(parse_duration("-1us"), None);
        for d in [
            SimDuration::from_nanos(250),
            SimDuration::from_micros(50),
            SimDuration::from_millis(10),
            SimDuration::from_nanos(3_000_000_000),
            SimDuration::ZERO,
        ] {
            assert_eq!(parse_duration(&fmt_duration(d)), Some(d), "{d:?}");
        }
    }

    #[test]
    fn spec_is_copy_and_builds() {
        let spec: PolicySpec = "edf:deadline=25us".parse().unwrap();
        let copy = spec; // Copy, no clone needed
        assert_eq!(spec, copy);
        assert_eq!(spec.to_string(), "edf:deadline=25us");
        let mut p = copy.build();
        assert_eq!(p.label(), "edf:deadline=25us");
        p.enqueue(
            SimTime::ZERO,
            crate::Task::new(
                1,
                0,
                SimDuration::from_micros(5),
                SimTime::ZERO,
                SimTime::ZERO,
                0,
            ),
        );
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn invalid_specs_fail_at_parse_not_build() {
        assert!(PolicySpec::parse("edf:deadline=oops").is_err());
        assert!("nope".parse::<PolicySpec>().is_err());
    }

    #[test]
    fn default_spec_is_the_papers_policy() {
        assert_eq!(PolicySpec::default(), PolicySpec::FCFS);
        assert_eq!(PolicySpec::default().build().label(), "fcfs");
    }

    #[test]
    fn interning_is_stable() {
        let a = PolicySpec::parse("wfq:w=2,1").unwrap();
        let b = PolicySpec::parse("wfq:w=2,1").unwrap();
        assert_eq!(a, b);
        assert!(std::ptr::eq(a.as_str(), b.as_str()), "same interned str");
    }

    #[test]
    fn registry_lists_the_acceptance_set() {
        let names = PolicyRegistry::standard().names();
        for required in ["fcfs", "cfcfs", "dfcfs", "srpt", "edf", "wfq"] {
            assert!(names.contains(&required), "missing `{required}`");
        }
        assert!(PolicyRegistry::standard().about("fcfs").is_some());
    }
}
