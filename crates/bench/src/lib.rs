//! # bench — Criterion benchmark harness
//!
//! Shared helpers for the benchmark targets:
//!
//! * `figures` — one benchmark per paper figure, timing a representative
//!   simulation point of each system/workload pair.
//! * `engine` — discrete-event engine throughput.
//! * `wire` — frame build/parse and Toeplitz hashing hot paths.
//! * `dispatcher` — scheduling-decision throughput per policy.

#![forbid(unsafe_code)]

use sim_core::SimDuration;
use workload::{ServiceDist, WorkloadSpec};

/// A short, deterministic workload point for benchmarking one simulation.
pub fn bench_spec(offered_rps: f64, dist: ServiceDist) -> WorkloadSpec {
    WorkloadSpec {
        offered_rps,
        dist,
        body_len: 64,
        warmup: SimDuration::from_millis(1),
        measure: SimDuration::from_millis(8),
        seed: 77,
    }
}
