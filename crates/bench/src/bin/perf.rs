//! Perf baseline: engine throughput, per-assembly simulation rate, and
//! sweep parallelism, emitted as machine-readable JSON for the CI gate.
//!
//! ```text
//! perf [--smoke] [--out PATH] [--compare PATH] [--tolerance F]
//!      [--jobs N] [--handicap N]
//! ```
//!
//! Three sections:
//!
//! * **engine** — events/second of the indexed [`EventQueue`] against the
//!   pre-existing [`LegacyHeap`] (kept as the executable specification)
//!   on a bundle of workload shapes that mirror the simulator's real
//!   traffic (timer chains, schedule_now handoff cascades, NIC fan-outs
//!   over a standing timer population), plus the full [`Engine`] loop.
//!   The headline is `normalized_throughput`: the geometric mean of the
//!   per-shape speedups (indexed / legacy, both *measured in the same
//!   process*), so the number is comparable across machines of different
//!   speeds — which is what lets CI gate on it.
//! * **assemblies** — simulated seconds per wall second for each of the
//!   five server assemblies at a fixed bench point.
//! * **sweep** — wall-clock of one parallel grid at `--jobs 1` vs
//!   `--jobs N`, asserting the results are identical either way.
//!
//! `--compare BASELINE.json` re-runs the measurement and exits non-zero
//! if `normalized_throughput` regressed more than `--tolerance` (default
//! 0.25) below the baseline. `--handicap N` multiplies the work done on
//! the fast path only — `--handicap 2` simulates a 2× engine slowdown and
//! must make the comparison fail; CI uses it once to prove the gate bites.

use std::time::Instant;

use sim_core::{Ctx, Engine, EventQueue, LegacyHeap, Model, SimDuration, SimTime};
use systems::baseline::{BaselineConfig, BaselineKind};
use systems::multi_shinjuku::MultiShinjukuConfig;
use systems::offload::OffloadConfig;
use systems::rpcvalet::RpcValetConfig;
use systems::shinjuku::ShinjukuConfig;
use systems::{ProbeConfig, ServerSystem, SystemConfig};
use workload::ServiceDist;

/// Realistically-sized event payload: models carry request ids, sizes and
/// routing state, so queue costs must include payload movement.
type Payload = [u64; 6];

/// The queue surface both implementations share, so one driver measures
/// both.
trait Q {
    fn push(&mut self, at: SimTime, e: Payload) -> u64;
    fn pop(&mut self) -> Option<(SimTime, u64, Payload)>;
}

impl Q for EventQueue<Payload> {
    fn push(&mut self, at: SimTime, e: Payload) -> u64 {
        EventQueue::push(self, at, e)
    }
    fn pop(&mut self) -> Option<(SimTime, u64, Payload)> {
        EventQueue::pop(self)
    }
}

impl Q for LegacyHeap<Payload> {
    fn push(&mut self, at: SimTime, e: Payload) -> u64 {
        LegacyHeap::push(self, at, e)
    }
    fn pop(&mut self) -> Option<(SimTime, u64, Payload)> {
        LegacyHeap::pop(self)
    }
}

/// One synthetic queue workload; returns events processed (for a
/// throughput denominator) and a checksum (so the work cannot be
/// optimized away and both queues can be cross-checked).
fn drive<T: Q>(q: &mut T, shape: &Shape, n_events: u64) -> (u64, u64) {
    let mut checksum = 0u64;
    let mut processed = 0u64;
    // Standing far-future timers: retransmit timeouts, connection
    // expiries, periodic telemetry. Real runs always carry a population
    // of these, so hot-path events pay the sift depth they induce. They
    // only drain at the end (which is inside the timed region, but is
    // `backlog` pops against `n_events` — noise).
    const FAR: u64 = 1 << 40;
    let backlog = match *shape {
        Shape::Chains { backlog, .. }
        | Shape::Handoff { backlog, .. }
        | Shape::Fanout { backlog, .. } => backlog,
    };
    for i in 0..backlog {
        q.push(SimTime::from_nanos(FAR + i * 1_000), [i, 1, 0, 0, 0, 0]);
    }
    match *shape {
        Shape::Chains { fanout, .. } => {
            for i in 0..fanout {
                q.push(SimTime::from_nanos(i), [i, 0, 0, 0, 0, i]);
            }
            while processed < n_events {
                let (at, seq, ev) = q.pop().expect("chains never drain");
                checksum = checksum.wrapping_add(at.as_nanos() ^ seq ^ ev[0]);
                // Re-arm the chain a pseudo-random distance ahead, like a
                // service completion scheduling the next arrival.
                let gap = 100 + (ev[0].wrapping_mul(0x9E37_79B9) % 900);
                q.push(at + SimDuration::from_nanos(gap), ev);
                processed += 1;
            }
        }
        Shape::Handoff { chain, .. } => {
            // The schedule_now idiom every model leans on: handling one
            // arrival cascades through dispatcher push -> worker poll ->
            // completion emit at the *same* instant before the next
            // arrival fires. ev[1] counts remaining same-instant hops.
            q.push(SimTime::from_nanos(0), [0, chain, 0, 0, 0, 0]);
            while processed < n_events {
                let (at, seq, mut ev) = q.pop().expect("handoff chain never drains");
                checksum = checksum.wrapping_add(at.as_nanos() ^ seq ^ ev[0]);
                processed += 1;
                if ev[1] > 0 {
                    ev[1] -= 1;
                    q.push(at, ev);
                } else {
                    ev[1] = chain;
                    let gap = 100 + (ev[0].wrapping_mul(0x9E37_79B9) % 900);
                    ev[0] = ev[0].wrapping_add(1);
                    q.push(at + SimDuration::from_nanos(gap), ev);
                }
            }
        }
        Shape::Fanout { width, .. } => {
            // NIC-style dispatch: a frame arrival fans out `width` events
            // at the same instant, which all run before time advances.
            let mut now = 0u64;
            while processed < n_events {
                for i in 0..width {
                    q.push(SimTime::from_nanos(now), [i, now, 0, 0, 0, 0]);
                }
                for _ in 0..width {
                    let (at, seq, ev) = q.pop().expect("burst events present");
                    checksum = checksum.wrapping_add(at.as_nanos() ^ seq ^ ev[0]);
                    processed += 1;
                }
                now += 1_000;
            }
        }
    }
    while let Some((at, seq, ev)) = q.pop() {
        checksum = checksum.wrapping_add(at.as_nanos() ^ seq ^ ev[0]);
    }
    (processed, checksum)
}

enum Shape {
    /// `fanout` self-rescheduling chains with scattered future
    /// timestamps over `backlog` standing timers — service-completion /
    /// arrival-process traffic.
    Chains { fanout: u64, backlog: u64 },
    /// Same-instant `schedule_now` cascades of length `chain` per
    /// arrival, over `backlog` standing timers — the dispatcher/worker
    /// handoff idiom.
    Handoff { chain: u64, backlog: u64 },
    /// Same-instant fan-outs of `width` events over `backlog` standing
    /// timers — NIC batch dispatch.
    Fanout { width: u64, backlog: u64 },
}

struct EngineRow {
    name: &'static str,
    events: u64,
    fast_eps: f64,
    legacy_eps: f64,
}

fn bench_queues(n_events: u64, handicap: u64) -> Vec<EngineRow> {
    // The bundle mirrors how the models in this repository actually use
    // the queue (see crates/systems): scattered completion/arrival timers
    // at two scales, schedule_now handoff cascades, and NIC fan-out
    // bursts — the latter two over a standing timer population, which is
    // where every real run spends its time.
    let shapes: [(&'static str, Shape); 5] = [
        (
            "timer_chain_64",
            Shape::Chains {
                fanout: 64,
                backlog: 0,
            },
        ),
        (
            "timer_chain_1024",
            Shape::Chains {
                fanout: 1024,
                backlog: 0,
            },
        ),
        (
            "handoff_4_over_256",
            Shape::Handoff {
                chain: 4,
                backlog: 256,
            },
        ),
        (
            "handoff_16_over_1024",
            Shape::Handoff {
                chain: 16,
                backlog: 1024,
            },
        ),
        (
            "fanout_32_over_1024",
            Shape::Fanout {
                width: 32,
                backlog: 1024,
            },
        ),
    ];
    shapes
        .iter()
        .map(|(name, shape)| {
            // Interleave repeats of both queues and keep each side's best
            // time: scheduler noise on a shared box only ever slows a run
            // down, so min-of-N converges on the true cost.
            let reps = 3;
            let mut fast_secs = f64::INFINITY;
            let mut legacy_secs = f64::INFINITY;
            let mut fast_sum = 0;
            let mut legacy_sum = 0;
            for _ in 0..reps {
                // The fast path runs `handicap` times inside the timed
                // region while crediting one run — an injectable slowdown
                // that the CI gate must catch (see module docs).
                let t0 = Instant::now();
                for _ in 0..handicap {
                    let mut q = EventQueue::new();
                    let (_, c) = drive(&mut q, shape, n_events);
                    fast_sum = c;
                }
                fast_secs = fast_secs.min(t0.elapsed().as_secs_f64());

                let t0 = Instant::now();
                let mut legacy = LegacyHeap::new();
                let (_, c) = drive(&mut legacy, shape, n_events);
                legacy_sum = c;
                legacy_secs = legacy_secs.min(t0.elapsed().as_secs_f64());
            }

            assert_eq!(
                fast_sum, legacy_sum,
                "{name}: queues disagree on the event stream"
            );
            EngineRow {
                name,
                events: n_events,
                fast_eps: n_events as f64 / fast_secs,
                legacy_eps: n_events as f64 / legacy_secs,
            }
        })
        .collect()
}

/// The full engine loop (queue + dispatch + outbox recycling) on the
/// chain model from the criterion bench, in events/second.
fn bench_engine_loop(n_events: u64) -> f64 {
    struct Chains;
    struct ChainEv {
        gap: SimDuration,
        remaining: u32,
    }
    impl Model for Chains {
        type Event = ChainEv;
        fn handle(&mut self, ev: ChainEv, ctx: &mut Ctx<ChainEv>) {
            if ev.remaining > 0 {
                ctx.schedule_in(
                    ev.gap,
                    ChainEv {
                        gap: ev.gap,
                        remaining: ev.remaining - 1,
                    },
                );
            }
        }
    }
    let fanout = 16u64;
    let t0 = Instant::now();
    let mut engine = Engine::new(Chains);
    for i in 0..fanout {
        engine.schedule_at(
            SimTime::from_nanos(i),
            ChainEv {
                gap: SimDuration::from_nanos(100 + i),
                remaining: (n_events / fanout) as u32,
            },
        );
    }
    engine.run();
    let secs = t0.elapsed().as_secs_f64();
    engine.events_processed() as f64 / secs
}

struct AssemblyRow {
    name: &'static str,
    sim_per_wall: f64,
    wall_ms: f64,
}

fn bench_assemblies(measure: SimDuration) -> Vec<AssemblyRow> {
    let systems: Vec<SystemConfig> = vec![
        SystemConfig::Offload(OffloadConfig::paper(4, 4)),
        SystemConfig::Shinjuku(ShinjukuConfig::paper(4)),
        SystemConfig::Baseline(BaselineConfig {
            workers: 4,
            kind: BaselineKind::Rss,
        }),
        SystemConfig::RpcValet(RpcValetConfig { workers: 4 }),
        SystemConfig::MultiShinjuku(MultiShinjukuConfig::split(10, 2)),
    ];
    systems
        .into_iter()
        .map(|sys| {
            let mut spec = bench::bench_spec(250_000.0, ServiceDist::paper_bimodal());
            spec.measure = measure;
            let t0 = Instant::now();
            let m = sys.run(spec, ProbeConfig::disabled());
            let secs = t0.elapsed().as_secs_f64();
            assert!(
                m.completed > 0,
                "{}: bench run completed nothing",
                sys.name()
            );
            let sim_secs = (spec.warmup + spec.measure).as_secs_f64();
            AssemblyRow {
                name: sys.name(),
                sim_per_wall: sim_secs / secs,
                wall_ms: secs * 1e3,
            }
        })
        .collect()
}

struct SweepRow {
    points: usize,
    jobs_n: usize,
    jobs1_ms: f64,
    jobsn_ms: f64,
}

fn bench_sweep(points: usize) -> SweepRow {
    let loads: Vec<f64> = (0..points)
        .map(|i| 100_000.0 + 25_000.0 * i as f64)
        .collect();
    let run_at = |rps: f64| {
        OffloadConfig::paper(4, 4).run(
            bench::bench_spec(rps, ServiceDist::paper_bimodal()),
            ProbeConfig::disabled(),
        )
    };
    let jobs_n = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);

    experiments::sweep::set_jobs(1);
    let t0 = Instant::now();
    let serial = experiments::sweep::par_map(&loads, |&l| run_at(l));
    let jobs1_ms = t0.elapsed().as_secs_f64() * 1e3;

    experiments::sweep::set_jobs(jobs_n);
    let t0 = Instant::now();
    let parallel = experiments::sweep::par_map(&loads, |&l| run_at(l));
    let jobsn_ms = t0.elapsed().as_secs_f64() * 1e3;
    experiments::sweep::set_jobs(0);

    for (a, b) in serial.iter().zip(&parallel) {
        assert_eq!(a.p99, b.p99, "parallel sweep must not perturb results");
        assert_eq!(a.completed, b.completed);
    }
    SweepRow {
        points,
        jobs_n,
        jobs1_ms,
        jobsn_ms,
    }
}

fn emit_json(
    smoke: bool,
    engine_rows: &[EngineRow],
    engine_loop_eps: f64,
    assemblies: &[AssemblyRow],
    sweep: &SweepRow,
) -> String {
    use std::fmt::Write;
    let fast_total: f64 =
        engine_rows.iter().map(|r| r.fast_eps).sum::<f64>() / engine_rows.len() as f64;
    let legacy_total: f64 =
        engine_rows.iter().map(|r| r.legacy_eps).sum::<f64>() / engine_rows.len() as f64;
    // Geometric mean of per-workload speedups: the standard aggregate for
    // a benchmark suite — every workload carries equal weight regardless
    // of its absolute events/sec, and it is machine-independent (both
    // sides of each ratio run in the same process on the same box).
    let geomean: f64 = (engine_rows
        .iter()
        .map(|r| (r.fast_eps / r.legacy_eps).ln())
        .sum::<f64>()
        / engine_rows.len() as f64)
        .exp();
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"mindgap-bench-v1\",");
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    let _ = writeln!(out, "  \"engine\": {{");
    let _ = writeln!(out, "    \"workloads\": [");
    for (i, r) in engine_rows.iter().enumerate() {
        let _ = write!(
            out,
            "      {{\"name\": \"{}\", \"events\": {}, \"fast_events_per_sec\": {:.0}, \"legacy_events_per_sec\": {:.0}, \"speedup\": {:.3}}}",
            r.name,
            r.events,
            r.fast_eps,
            r.legacy_eps,
            r.fast_eps / r.legacy_eps
        );
        out.push_str(if i + 1 < engine_rows.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    let _ = writeln!(out, "    ],");
    let _ = writeln!(
        out,
        "    \"engine_loop_events_per_sec\": {engine_loop_eps:.0},"
    );
    let _ = writeln!(out, "    \"mean_fast_events_per_sec\": {fast_total:.0},");
    let _ = writeln!(
        out,
        "    \"mean_legacy_events_per_sec\": {legacy_total:.0},"
    );
    let _ = writeln!(out, "    \"normalized_throughput\": {geomean:.4}");
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"assemblies\": [");
    for (i, a) in assemblies.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"name\": \"{}\", \"sim_seconds_per_wall_second\": {:.4}, \"wall_ms\": {:.1}}}",
            a.name, a.sim_per_wall, a.wall_ms
        );
        out.push_str(if i + 1 < assemblies.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"sweep\": {{");
    let _ = writeln!(out, "    \"points\": {},", sweep.points);
    let _ = writeln!(out, "    \"jobs_n\": {},", sweep.jobs_n);
    let _ = writeln!(out, "    \"jobs_1_wall_ms\": {:.1},", sweep.jobs1_ms);
    let _ = writeln!(out, "    \"jobs_n_wall_ms\": {:.1},", sweep.jobsn_ms);
    let _ = writeln!(
        out,
        "    \"speedup\": {:.3}",
        sweep.jobs1_ms / sweep.jobsn_ms
    );
    let _ = writeln!(out, "  }}");
    out.push('}');
    out
}

/// Extract `"key": <number>` from our own JSON dialect — no serializer
/// crate needed for a format this binary both writes and reads.
fn json_number(text: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let start = text.find(&pat)? + pat.len();
    let rest = text[start..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn flag_value(args: &[String], name: &str) -> Option<String> {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == name {
            return it.next().cloned();
        }
        if let Some(v) = a.strip_prefix(&format!("{name}=")) {
            return Some(v.to_string());
        }
    }
    None
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    experiments::sweep::init_jobs_from_args();
    let smoke = args.iter().any(|a| a == "--smoke");
    let handicap: u64 = flag_value(&args, "--handicap")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let tolerance: f64 = flag_value(&args, "--tolerance")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.25);

    let (queue_events, loop_events, measure, sweep_points) = if smoke {
        (400_000, 400_000, SimDuration::from_millis(4), 4)
    } else {
        (4_000_000, 4_000_000, SimDuration::from_millis(8), 8)
    };

    eprintln!("perf: engine queue microbenchmarks ({queue_events} events/workload)...");
    let engine_rows = bench_queues(queue_events, handicap);
    eprintln!("perf: full engine loop...");
    let engine_loop_eps = bench_engine_loop(loop_events);
    eprintln!("perf: assemblies...");
    let assemblies = bench_assemblies(measure);
    eprintln!("perf: sweep parallelism...");
    let sweep = bench_sweep(sweep_points);

    let json = emit_json(smoke, &engine_rows, engine_loop_eps, &assemblies, &sweep);
    println!("{json}");
    if let Some(path) = flag_value(&args, "--out") {
        std::fs::write(&path, format!("{json}\n")).expect("writing bench JSON");
        eprintln!("perf: wrote {path}");
    }

    if let Some(baseline_path) = flag_value(&args, "--compare") {
        let baseline = std::fs::read_to_string(&baseline_path).expect("reading baseline JSON");
        let base_norm = json_number(&baseline, "normalized_throughput")
            .expect("baseline missing normalized_throughput");
        let cur_norm = json_number(&json, "normalized_throughput").expect("own JSON parses");
        let floor = base_norm * (1.0 - tolerance);
        eprintln!(
            "perf: normalized_throughput {cur_norm:.4} vs baseline {base_norm:.4} \
             (floor {floor:.4}, tolerance {tolerance})"
        );
        if cur_norm < floor {
            eprintln!(
                "perf: FAIL — engine throughput regressed more than {:.0}% \
                 relative to the in-process legacy-heap calibration",
                tolerance * 100.0
            );
            std::process::exit(1);
        }
        eprintln!("perf: PASS");
    }
}
