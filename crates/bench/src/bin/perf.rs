//! Perf baseline: engine throughput, per-assembly simulation rate, and
//! sweep parallelism, emitted as machine-readable JSON for the CI gate.
//!
//! ```text
//! perf [--smoke] [--out PATH] [--compare PATH] [--tolerance F]
//!      [--floor F] [--jobs N] [--handicap N]
//! ```
//!
//! Three sections:
//!
//! * **engine** — events/second of the indexed [`EventQueue`] against the
//!   pre-existing [`LegacyHeap`] (kept as the executable specification)
//!   on a bundle of workload shapes that mirror the simulator's real
//!   traffic (timer chains, schedule_now handoff cascades, NIC fan-outs
//!   over a standing timer population, sparse far-future timer wheels,
//!   cancel-heavy RPC-timeout traffic, reschedule-heavy deadline
//!   extension), plus the full [`Engine`] loop. The headline is
//!   `normalized_throughput`: the geometric mean of the per-shape
//!   speedups (indexed / legacy, both *measured in the same process*),
//!   so the number is comparable across machines of different speeds —
//!   which is what lets CI gate on it.
//! * **assemblies** — simulated seconds per wall second for each of the
//!   five server assemblies at a fixed bench point.
//! * **sweep** — wall-clock of one parallel grid at `--jobs 1` vs
//!   `--jobs N`, asserting the results are identical either way.
//!
//! `--compare BASELINE.json` re-runs the measurement and exits non-zero
//! if (a) any workload's speedup falls below `--floor` (default 1.0 —
//! the indexed queue must never lose to the legacy heap on any shape),
//! or (b) `normalized_throughput` regressed more than `--tolerance`
//! (default 0.25) below the baseline. Both checks use in-process ratios,
//! so they hold on any machine. `--handicap N` multiplies the work done
//! on the fast path only — `--handicap 2` simulates a 2× engine slowdown
//! and must make the comparison fail; CI uses it once to prove the gate
//! bites.

use std::time::Instant;

use sim_core::{Ctx, Engine, EventQueue, LegacyHeap, Model, SimDuration, SimTime, TimerHandle};
use systems::baseline::{BaselineConfig, BaselineKind};
use systems::multi_shinjuku::MultiShinjukuConfig;
use systems::offload::OffloadConfig;
use systems::rpcvalet::RpcValetConfig;
use systems::shinjuku::ShinjukuConfig;
use systems::{ProbeConfig, ServerSystem, SystemConfig};
use workload::ServiceDist;

/// Realistically-sized event payload: models carry request ids, sizes and
/// routing state, so queue costs must include payload movement.
type Payload = [u64; 6];

/// The queue surface both implementations share, so one driver measures
/// both. Cancel and reschedule take whatever handle the queue's push
/// returned; the cancel-heavy shapes only ever cancel handles they know
/// are live, so the legacy side may use its unchecked (O(log n), not
/// O(n)) cancel — the comparison measures the tombstone mechanism, not
/// the spec-grade liveness scan.
trait Q {
    type Handle: Copy;
    fn push(&mut self, at: SimTime, e: Payload) -> Self::Handle;
    fn pop(&mut self) -> Option<(SimTime, u64, Payload)>;
    fn cancel(&mut self, h: Self::Handle);
    /// Cancel + re-insert at `at`. `e` re-supplies the payload for queues
    /// that do not retain it across cancellation (the legacy heap); it
    /// always equals the payload pushed under `h`.
    fn reschedule(&mut self, h: Self::Handle, at: SimTime, e: Payload) -> Self::Handle;
}

impl Q for EventQueue<Payload> {
    type Handle = TimerHandle;
    fn push(&mut self, at: SimTime, e: Payload) -> TimerHandle {
        EventQueue::push_handle(self, at, e)
    }
    fn pop(&mut self) -> Option<(SimTime, u64, Payload)> {
        EventQueue::pop(self)
    }
    fn cancel(&mut self, h: TimerHandle) {
        let live = EventQueue::cancel(self, h);
        debug_assert!(live.is_some(), "bench cancels only live handles");
    }
    fn reschedule(&mut self, h: TimerHandle, at: SimTime, _e: Payload) -> TimerHandle {
        EventQueue::reschedule(self, h, at).expect("bench reschedules only live handles")
    }
}

impl Q for LegacyHeap<Payload> {
    type Handle = u64;
    fn push(&mut self, at: SimTime, e: Payload) -> u64 {
        LegacyHeap::push(self, at, e)
    }
    fn pop(&mut self) -> Option<(SimTime, u64, Payload)> {
        LegacyHeap::pop(self)
    }
    fn cancel(&mut self, h: u64) {
        self.cancel_unchecked(h);
    }
    fn reschedule(&mut self, h: u64, at: SimTime, e: Payload) -> u64 {
        self.cancel_unchecked(h);
        LegacyHeap::push(self, at, e)
    }
}

/// One synthetic queue workload; returns events processed (for a
/// throughput denominator) and a checksum (so the work cannot be
/// optimized away and both queues can be cross-checked).
fn drive<T: Q>(q: &mut T, shape: &Shape, n_events: u64) -> (u64, u64) {
    let mut checksum = 0u64;
    let mut processed = 0u64;
    // Standing far-future timers: retransmit timeouts, connection
    // expiries, periodic telemetry. Real runs always carry a population
    // of these, so hot-path events pay the sift depth they induce. They
    // only drain at the end (which is inside the timed region, but is
    // `backlog` pops against `n_events` — noise).
    const FAR: u64 = 1 << 40;
    let backlog = match *shape {
        Shape::Chains { backlog, .. }
        | Shape::Handoff { backlog, .. }
        | Shape::Fanout { backlog, .. } => backlog,
        // These shapes manage their own standing populations (they need
        // the push handles).
        Shape::Sparse { .. } | Shape::Timeouts { .. } | Shape::Rearm { .. } => 0,
    };
    for i in 0..backlog {
        q.push(SimTime::from_nanos(FAR + i * 1_000), [i, 1, 0, 0, 0, 0]);
    }
    match *shape {
        Shape::Chains { fanout, .. } => {
            for i in 0..fanout {
                q.push(SimTime::from_nanos(i), [i, 0, 0, 0, 0, i]);
            }
            while processed < n_events {
                let (at, seq, ev) = q.pop().expect("chains never drain");
                checksum = checksum.wrapping_add(at.as_nanos() ^ seq ^ ev[0]);
                // Re-arm the chain a pseudo-random distance ahead, like a
                // service completion scheduling the next arrival.
                let gap = 100 + (ev[0].wrapping_mul(0x9E37_79B9) % 900);
                q.push(at + SimDuration::from_nanos(gap), ev);
                processed += 1;
            }
        }
        Shape::Handoff { chain, .. } => {
            // The schedule_now idiom every model leans on: handling one
            // arrival cascades through dispatcher push -> worker poll ->
            // completion emit at the *same* instant before the next
            // arrival fires. ev[1] counts remaining same-instant hops.
            q.push(SimTime::from_nanos(0), [0, chain, 0, 0, 0, 0]);
            while processed < n_events {
                let (at, seq, mut ev) = q.pop().expect("handoff chain never drains");
                checksum = checksum.wrapping_add(at.as_nanos() ^ seq ^ ev[0]);
                processed += 1;
                if ev[1] > 0 {
                    ev[1] -= 1;
                    q.push(at, ev);
                } else {
                    ev[1] = chain;
                    let gap = 100 + (ev[0].wrapping_mul(0x9E37_79B9) % 900);
                    ev[0] = ev[0].wrapping_add(1);
                    q.push(at + SimDuration::from_nanos(gap), ev);
                }
            }
        }
        Shape::Fanout { width, .. } => {
            // NIC-style dispatch: a frame arrival fans out `width` events
            // at the same instant, which all run before time advances.
            let mut now = 0u64;
            while processed < n_events {
                for i in 0..width {
                    q.push(SimTime::from_nanos(now), [i, now, 0, 0, 0, 0]);
                }
                for _ in 0..width {
                    let (at, seq, ev) = q.pop().expect("burst events present");
                    checksum = checksum.wrapping_add(at.as_nanos() ^ seq ^ ev[0]);
                    processed += 1;
                }
                now += 1_000;
            }
        }
        Shape::Sparse { population } => {
            // A large standing population of far-future timers scattered
            // across microseconds-to-tens-of-milliseconds — retransmit and
            // expiry state. Every pop re-arms far ahead, so the population
            // never shrinks and every operation pays whatever cost the
            // standing state imposes (deep sifts for a heap; O(1) bucket
            // hops for the wheel).
            for i in 0..population {
                let gap = 1_000 + (i.wrapping_mul(0x9E37_79B9) % 50_000_000);
                q.push(SimTime::from_nanos(gap), [i, 0, 0, 0, 0, 0]);
            }
            while processed < n_events {
                let (at, seq, ev) = q.pop().expect("sparse timers never drain");
                checksum = checksum.wrapping_add(at.as_nanos() ^ seq ^ ev[0]);
                let gap = 1_000 + (seq.wrapping_mul(0x9E37_79B9) % 50_000_000);
                q.push(at + SimDuration::from_nanos(gap), ev);
                processed += 1;
            }
        }
        Shape::Timeouts { inflight } => {
            // The RPC-timeout idiom: every request schedules a guard
            // timeout ~10 µs out and completes well before it, cancelling
            // the guard — so ~90% of scheduled guards never fire. 10% of
            // completions go missing and the guard fires instead, keeping
            // both code paths honest. ev[2] tags the kind: 0 completion,
            // 1 timeout guard.
            let mut guards: Vec<Option<T::Handle>> = Vec::with_capacity(inflight as usize);
            for i in 0..inflight {
                let gap = 100 + (i.wrapping_mul(0x9E37_79B9) % 900);
                q.push(SimTime::from_nanos(gap), [i, 0, 0, 0, 0, 0]);
                guards.push(Some(
                    q.push(SimTime::from_nanos(gap + 10_000), [i, 0, 1, 0, 0, 0]),
                ));
            }
            while processed < n_events {
                let (at, seq, ev) = q.pop().expect("timeout traffic never drains");
                checksum = checksum.wrapping_add(at.as_nanos() ^ seq ^ ev[0]);
                processed += 1;
                let id = ev[0] as usize;
                if ev[2] == 0 {
                    // Completion: the guard is still pending (it sits
                    // 10 µs after the completion) — cancel it.
                    if let Some(h) = guards[id].take() {
                        q.cancel(h);
                    }
                } else {
                    // The guard itself fired; it is no longer pending.
                    guards[id] = None;
                }
                let r = seq.wrapping_mul(0x9E37_79B9);
                let gap = 100 + r % 900;
                if r % 10 != 0 {
                    q.push(at + SimDuration::from_nanos(gap), [ev[0], 0, 0, 0, 0, 0]);
                }
                guards[id] = Some(q.push(
                    at + SimDuration::from_nanos(gap + 10_000),
                    [ev[0], 0, 1, 0, 0, 0],
                ));
            }
        }
        Shape::Rearm { chain, backlog } => {
            // Handoff cascades over a standing deadline population whose
            // entries keep being pushed out — the watchdog/lease-renewal
            // idiom: every completed cascade extends one far deadline via
            // reschedule instead of letting it fire.
            let mut deadlines: Vec<T::Handle> = (0..backlog)
                .map(|i| q.push(SimTime::from_nanos(FAR + i * 1_000), [i, 1, 0, 0, 0, 0]))
                .collect();
            let mut extended = 0u64;
            q.push(SimTime::from_nanos(0), [0, chain, 0, 0, 0, 0]);
            while processed < n_events {
                let (at, seq, mut ev) = q.pop().expect("rearm chain never drains");
                checksum = checksum.wrapping_add(at.as_nanos() ^ seq ^ ev[0]);
                processed += 1;
                if ev[1] > 0 {
                    ev[1] -= 1;
                    q.push(at, ev);
                } else {
                    let i = (extended % backlog) as usize;
                    deadlines[i] = q.reschedule(
                        deadlines[i],
                        SimTime::from_nanos(FAR + (backlog + extended) * 1_000),
                        [i as u64, 1, 0, 0, 0, 0],
                    );
                    extended += 1;
                    ev[1] = chain;
                    let gap = 100 + (ev[0].wrapping_mul(0x9E37_79B9) % 900);
                    ev[0] = ev[0].wrapping_add(1);
                    q.push(at + SimDuration::from_nanos(gap), ev);
                }
            }
        }
    }
    while let Some((at, seq, ev)) = q.pop() {
        checksum = checksum.wrapping_add(at.as_nanos() ^ seq ^ ev[0]);
    }
    (processed, checksum)
}

enum Shape {
    /// `fanout` self-rescheduling chains with scattered future
    /// timestamps over `backlog` standing timers — service-completion /
    /// arrival-process traffic.
    Chains { fanout: u64, backlog: u64 },
    /// Same-instant `schedule_now` cascades of length `chain` per
    /// arrival, over `backlog` standing timers — the dispatcher/worker
    /// handoff idiom.
    Handoff { chain: u64, backlog: u64 },
    /// Same-instant fan-outs of `width` events over `backlog` standing
    /// timers — NIC batch dispatch.
    Fanout { width: u64, backlog: u64 },
    /// A standing population of far-future timers scattered across wheel
    /// levels, each re-armed far ahead on firing — retransmit/expiry
    /// state kept live forever.
    Sparse { population: u64 },
    /// `inflight` concurrent requests, each guarded by a ~10 µs timeout
    /// that the completion cancels ~90% of the time — RPC timeout
    /// traffic.
    Timeouts { inflight: u64 },
    /// Handoff cascades of length `chain` where every completed cascade
    /// reschedules one of `backlog` standing far deadlines — watchdog /
    /// lease renewal.
    Rearm { chain: u64, backlog: u64 },
}

struct EngineRow {
    name: &'static str,
    events: u64,
    fast_eps: f64,
    legacy_eps: f64,
}

fn bench_queues(n_events: u64, handicap: u64) -> Vec<EngineRow> {
    // The bundle mirrors how the models in this repository actually use
    // the queue (see crates/systems): scattered completion/arrival timers
    // at two scales, schedule_now handoff cascades, and NIC fan-out
    // bursts — the latter two over a standing timer population, which is
    // where every real run spends its time.
    let shapes: [(&'static str, Shape); 8] = [
        (
            "timer_chain_64",
            Shape::Chains {
                fanout: 64,
                backlog: 0,
            },
        ),
        (
            "timer_chain_1024",
            Shape::Chains {
                fanout: 1024,
                backlog: 0,
            },
        ),
        (
            "handoff_4_over_256",
            Shape::Handoff {
                chain: 4,
                backlog: 256,
            },
        ),
        (
            "handoff_16_over_1024",
            Shape::Handoff {
                chain: 16,
                backlog: 1024,
            },
        ),
        (
            "fanout_32_over_1024",
            Shape::Fanout {
                width: 32,
                backlog: 1024,
            },
        ),
        ("sparse_far_64k", Shape::Sparse { population: 65_536 }),
        ("timeout_cancel_512", Shape::Timeouts { inflight: 512 }),
        (
            "rearm_4_over_1024",
            Shape::Rearm {
                chain: 4,
                backlog: 1024,
            },
        ),
    ];
    shapes
        .iter()
        .map(|(name, shape)| {
            // Interleave repeats of both queues and keep each side's best
            // time: scheduler noise on a shared box only ever slows a run
            // down, so min-of-N converges on the true cost.
            let reps = 3;
            let mut fast_secs = f64::INFINITY;
            let mut legacy_secs = f64::INFINITY;
            let mut fast_sum = 0;
            let mut legacy_sum = 0;
            for _ in 0..reps {
                // The fast path runs `handicap` times inside the timed
                // region while crediting one run — an injectable slowdown
                // that the CI gate must catch (see module docs).
                let t0 = Instant::now();
                for _ in 0..handicap {
                    let mut q = EventQueue::new();
                    let (_, c) = drive(&mut q, shape, n_events);
                    fast_sum = c;
                }
                fast_secs = fast_secs.min(t0.elapsed().as_secs_f64());

                let t0 = Instant::now();
                let mut legacy = LegacyHeap::new();
                let (_, c) = drive(&mut legacy, shape, n_events);
                legacy_sum = c;
                legacy_secs = legacy_secs.min(t0.elapsed().as_secs_f64());
            }

            assert_eq!(
                fast_sum, legacy_sum,
                "{name}: queues disagree on the event stream"
            );
            EngineRow {
                name,
                events: n_events,
                fast_eps: n_events as f64 / fast_secs,
                legacy_eps: n_events as f64 / legacy_secs,
            }
        })
        .collect()
}

/// The full engine loop (queue + dispatch + outbox recycling) on the
/// chain model from the criterion bench, in events/second.
fn bench_engine_loop(n_events: u64) -> f64 {
    struct Chains;
    struct ChainEv {
        gap: SimDuration,
        remaining: u32,
    }
    impl Model for Chains {
        type Event = ChainEv;
        fn handle(&mut self, ev: ChainEv, ctx: &mut Ctx<'_, ChainEv>) {
            if ev.remaining > 0 {
                ctx.schedule_in(
                    ev.gap,
                    ChainEv {
                        gap: ev.gap,
                        remaining: ev.remaining - 1,
                    },
                );
            }
        }
    }
    let fanout = 16u64;
    // Min-of-N, like the queue benches: scheduler noise only slows runs.
    let mut best = 0.0f64;
    for _ in 0..3 {
        let t0 = Instant::now();
        let mut engine = Engine::new(Chains);
        for i in 0..fanout {
            engine.schedule_at(
                SimTime::from_nanos(i),
                ChainEv {
                    gap: SimDuration::from_nanos(100 + i),
                    remaining: (n_events / fanout) as u32,
                },
            );
        }
        engine.run();
        let secs = t0.elapsed().as_secs_f64();
        best = best.max(engine.events_processed() as f64 / secs);
    }
    best
}

struct AssemblyRow {
    name: &'static str,
    sim_per_wall: f64,
    wall_ms: f64,
}

fn bench_assemblies(measure: SimDuration) -> Vec<AssemblyRow> {
    let systems: Vec<SystemConfig> = vec![
        SystemConfig::Offload(OffloadConfig::paper(4, 4)),
        SystemConfig::Shinjuku(ShinjukuConfig::paper(4)),
        SystemConfig::Baseline(BaselineConfig {
            workers: 4,
            kind: BaselineKind::Rss,
        }),
        SystemConfig::RpcValet(RpcValetConfig { workers: 4 }),
        SystemConfig::MultiShinjuku(MultiShinjukuConfig::split(10, 2)),
    ];
    systems
        .into_iter()
        .map(|sys| {
            let mut spec = bench::bench_spec(250_000.0, ServiceDist::paper_bimodal());
            spec.measure = measure;
            let t0 = Instant::now();
            let m = sys.run(spec, ProbeConfig::disabled());
            let secs = t0.elapsed().as_secs_f64();
            assert!(
                m.completed > 0,
                "{}: bench run completed nothing",
                sys.name()
            );
            let sim_secs = (spec.warmup + spec.measure).as_secs_f64();
            AssemblyRow {
                name: sys.name(),
                sim_per_wall: sim_secs / secs,
                wall_ms: secs * 1e3,
            }
        })
        .collect()
}

struct SweepRow {
    points: usize,
    jobs_n: usize,
    jobs1_ms: f64,
    jobsn_ms: f64,
}

fn bench_sweep(points: usize) -> SweepRow {
    let loads: Vec<f64> = (0..points)
        .map(|i| 100_000.0 + 25_000.0 * i as f64)
        .collect();
    let run_at = |rps: f64| {
        OffloadConfig::paper(4, 4).run(
            bench::bench_spec(rps, ServiceDist::paper_bimodal()),
            ProbeConfig::disabled(),
        )
    };
    let jobs_n = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);

    experiments::sweep::set_jobs(1);
    let t0 = Instant::now();
    let serial = experiments::sweep::par_map(&loads, |&l| run_at(l));
    let jobs1_ms = t0.elapsed().as_secs_f64() * 1e3;

    experiments::sweep::set_jobs(jobs_n);
    let t0 = Instant::now();
    let parallel = experiments::sweep::par_map(&loads, |&l| run_at(l));
    let jobsn_ms = t0.elapsed().as_secs_f64() * 1e3;
    experiments::sweep::set_jobs(0);

    for (a, b) in serial.iter().zip(&parallel) {
        assert_eq!(a.p99, b.p99, "parallel sweep must not perturb results");
        assert_eq!(a.completed, b.completed);
    }
    SweepRow {
        points,
        jobs_n,
        jobs1_ms,
        jobsn_ms,
    }
}

fn emit_json(
    smoke: bool,
    engine_rows: &[EngineRow],
    engine_loop_eps: f64,
    assemblies: &[AssemblyRow],
    sweep: &SweepRow,
) -> String {
    use std::fmt::Write;
    let fast_total: f64 =
        engine_rows.iter().map(|r| r.fast_eps).sum::<f64>() / engine_rows.len() as f64;
    let legacy_total: f64 =
        engine_rows.iter().map(|r| r.legacy_eps).sum::<f64>() / engine_rows.len() as f64;
    // Geometric mean of per-workload speedups: the standard aggregate for
    // a benchmark suite — every workload carries equal weight regardless
    // of its absolute events/sec, and it is machine-independent (both
    // sides of each ratio run in the same process on the same box).
    let geomean: f64 = (engine_rows
        .iter()
        .map(|r| (r.fast_eps / r.legacy_eps).ln())
        .sum::<f64>()
        / engine_rows.len() as f64)
        .exp();
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"mindgap-bench-v1\",");
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    let _ = writeln!(out, "  \"engine\": {{");
    let _ = writeln!(out, "    \"workloads\": [");
    for (i, r) in engine_rows.iter().enumerate() {
        let _ = write!(
            out,
            "      {{\"name\": \"{}\", \"events\": {}, \"fast_events_per_sec\": {:.0}, \"legacy_events_per_sec\": {:.0}, \"speedup\": {:.3}}}",
            r.name,
            r.events,
            r.fast_eps,
            r.legacy_eps,
            r.fast_eps / r.legacy_eps
        );
        out.push_str(if i + 1 < engine_rows.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    let _ = writeln!(out, "    ],");
    let _ = writeln!(
        out,
        "    \"engine_loop_events_per_sec\": {engine_loop_eps:.0},"
    );
    let _ = writeln!(out, "    \"mean_fast_events_per_sec\": {fast_total:.0},");
    let _ = writeln!(
        out,
        "    \"mean_legacy_events_per_sec\": {legacy_total:.0},"
    );
    let _ = writeln!(out, "    \"normalized_throughput\": {geomean:.4}");
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"assemblies\": [");
    for (i, a) in assemblies.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"name\": \"{}\", \"sim_seconds_per_wall_second\": {:.4}, \"wall_ms\": {:.1}}}",
            a.name, a.sim_per_wall, a.wall_ms
        );
        out.push_str(if i + 1 < assemblies.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"sweep\": {{");
    let _ = writeln!(out, "    \"points\": {},", sweep.points);
    let _ = writeln!(out, "    \"jobs_n\": {},", sweep.jobs_n);
    let _ = writeln!(out, "    \"jobs_1_wall_ms\": {:.1},", sweep.jobs1_ms);
    let _ = writeln!(out, "    \"jobs_n_wall_ms\": {:.1},", sweep.jobsn_ms);
    let _ = writeln!(
        out,
        "    \"speedup\": {:.3}",
        sweep.jobs1_ms / sweep.jobsn_ms
    );
    let _ = writeln!(out, "  }}");
    out.push('}');
    out
}

/// Extract every workload's `(name, speedup)` pair from our own JSON
/// dialect, in emission order.
fn workload_speedups(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(p) = rest.find("{\"name\": \"") {
        let row = &rest[p + 10..];
        let Some(name_end) = row.find('"') else { break };
        let Some(row_end) = row.find('}') else { break };
        if let Some(speedup) = json_number(&row[..row_end], "speedup") {
            out.push((row[..name_end].to_string(), speedup));
        }
        rest = &row[row_end..];
    }
    out
}

/// Extract `"key": <number>` from our own JSON dialect — no serializer
/// crate needed for a format this binary both writes and reads.
fn json_number(text: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let start = text.find(&pat)? + pat.len();
    let rest = text[start..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn flag_value(args: &[String], name: &str) -> Option<String> {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == name {
            return it.next().cloned();
        }
        if let Some(v) = a.strip_prefix(&format!("{name}=")) {
            return Some(v.to_string());
        }
    }
    None
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    experiments::sweep::init_jobs_from_args();
    let smoke = args.iter().any(|a| a == "--smoke");
    let handicap: u64 = flag_value(&args, "--handicap")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let tolerance: f64 = flag_value(&args, "--tolerance")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.25);
    let floor: f64 = flag_value(&args, "--floor")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0);

    let (queue_events, loop_events, measure, sweep_points) = if smoke {
        (400_000, 400_000, SimDuration::from_millis(4), 4)
    } else {
        (4_000_000, 4_000_000, SimDuration::from_millis(8), 8)
    };

    eprintln!("perf: engine queue microbenchmarks ({queue_events} events/workload)...");
    let engine_rows = bench_queues(queue_events, handicap);
    eprintln!("perf: full engine loop...");
    let engine_loop_eps = bench_engine_loop(loop_events);
    eprintln!("perf: assemblies...");
    let assemblies = bench_assemblies(measure);
    eprintln!("perf: sweep parallelism...");
    let sweep = bench_sweep(sweep_points);

    let json = emit_json(smoke, &engine_rows, engine_loop_eps, &assemblies, &sweep);
    println!("{json}");
    if let Some(path) = flag_value(&args, "--out") {
        std::fs::write(&path, format!("{json}\n")).expect("writing bench JSON");
        eprintln!("perf: wrote {path}");
    }

    if let Some(baseline_path) = flag_value(&args, "--compare") {
        let baseline = std::fs::read_to_string(&baseline_path).expect("reading baseline JSON");
        let mut failed = false;

        // Per-shape floor: the indexed queue must beat the legacy heap on
        // every shape, not just on average — a wheel regression that only
        // hurts timer chains must not hide behind handoff wins.
        for (name, speedup) in workload_speedups(&json) {
            if speedup < floor {
                eprintln!(
                    "perf: FAIL — workload {name} speedup {speedup:.3} is below \
                     the floor {floor:.3}"
                );
                failed = true;
            }
        }

        // Geomean band against the checked-in baseline.
        let base_norm = json_number(&baseline, "normalized_throughput")
            .expect("baseline missing normalized_throughput");
        let cur_norm = json_number(&json, "normalized_throughput").expect("own JSON parses");
        let band = base_norm * (1.0 - tolerance);
        eprintln!(
            "perf: normalized_throughput {cur_norm:.4} vs baseline {base_norm:.4} \
             (band {band:.4}, tolerance {tolerance}, per-shape floor {floor})"
        );
        if cur_norm < band {
            eprintln!(
                "perf: FAIL — engine throughput regressed more than {:.0}% \
                 relative to the in-process legacy-heap calibration",
                tolerance * 100.0
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        eprintln!("perf: PASS");
    }
}
