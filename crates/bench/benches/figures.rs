//! One benchmark per paper figure: each times a representative
//! simulation point of the figure's system/workload pairs, so `cargo
//! bench -p bench --bench figures` exercises the exact code paths that
//! regenerate the evaluation (the full sweeps live in the `experiments`
//! binaries).

use criterion::{criterion_group, criterion_main, Criterion};
use sim_core::SimDuration;
use systems::baseline::{BaselineConfig, BaselineKind};
use systems::multi_shinjuku::{self, MultiShinjukuConfig};
use systems::offload::OffloadConfig;
use systems::rpcvalet::RpcValetConfig;
use systems::shinjuku::ShinjukuConfig;
use systems::{ProbeConfig, ServerSystem};
use workload::ServiceDist;

use bench::bench_spec;

fn configured(
    c: &mut Criterion,
) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group
}

/// Figure 2: bimodal, slice 10us — Shinjuku 3w vs Offload 4w at 300 kRPS.
fn fig2(c: &mut Criterion) {
    let mut group = configured(c);
    let spec = bench_spec(300_000.0, ServiceDist::paper_bimodal());
    group.bench_function("fig2_shinjuku_3w", |b| {
        b.iter(|| ShinjukuConfig::paper(3).run(spec, ProbeConfig::disabled()))
    });
    group.bench_function("fig2_offload_4w_cap4", |b| {
        b.iter(|| OffloadConfig::paper(4, 4).run(spec, ProbeConfig::disabled()))
    });
    group.finish();
}

/// Figure 3: fixed 1us, offload saturated — cap 1 vs cap 5 (4 workers).
fn fig3(c: &mut Criterion) {
    let mut group = configured(c);
    let spec = bench_spec(1_800_000.0, ServiceDist::Fixed(SimDuration::from_micros(1)));
    for cap in [1u32, 5] {
        group.bench_function(format!("fig3_offload_4w_cap{cap}"), |b| {
            b.iter(|| {
                OffloadConfig {
                    time_slice: None,
                    ..OffloadConfig::paper(4, cap)
                }
                .run(spec, ProbeConfig::disabled())
            })
        });
    }
    group.finish();
}

/// Figure 4: fixed 5us, no preemption — Shinjuku 3w vs Offload 4w.
fn fig4(c: &mut Criterion) {
    let mut group = configured(c);
    let spec = bench_spec(450_000.0, ServiceDist::Fixed(SimDuration::from_micros(5)));
    group.bench_function("fig4_shinjuku_3w", |b| {
        b.iter(|| {
            ShinjukuConfig {
                workers: 3,
                time_slice: None,
                ..ShinjukuConfig::paper(3)
            }
            .run(spec, ProbeConfig::disabled())
        })
    });
    group.bench_function("fig4_offload_4w_cap4", |b| {
        b.iter(|| {
            OffloadConfig {
                time_slice: None,
                ..OffloadConfig::paper(4, 4)
            }
            .run(spec, ProbeConfig::disabled())
        })
    });
    group.finish();
}

/// Figure 5: fixed 100us — Shinjuku 15w vs Offload 16w (cap 2).
fn fig5(c: &mut Criterion) {
    let mut group = configured(c);
    let spec = bench_spec(120_000.0, ServiceDist::Fixed(SimDuration::from_micros(100)));
    group.bench_function("fig5_shinjuku_15w", |b| {
        b.iter(|| {
            ShinjukuConfig {
                workers: 15,
                time_slice: None,
                ..ShinjukuConfig::paper(15)
            }
            .run(spec, ProbeConfig::disabled())
        })
    });
    group.bench_function("fig5_offload_16w_cap2", |b| {
        b.iter(|| {
            OffloadConfig {
                time_slice: None,
                ..OffloadConfig::paper(16, 2)
            }
            .run(spec, ProbeConfig::disabled())
        })
    });
    group.finish();
}

/// Figure 6: fixed 1us — Shinjuku 15w vs Offload 16w (cap 5) at 2 MRPS.
fn fig6(c: &mut Criterion) {
    let mut group = configured(c);
    let spec = bench_spec(2_000_000.0, ServiceDist::Fixed(SimDuration::from_micros(1)));
    group.bench_function("fig6_shinjuku_15w", |b| {
        b.iter(|| {
            ShinjukuConfig {
                workers: 15,
                time_slice: None,
                ..ShinjukuConfig::paper(15)
            }
            .run(spec, ProbeConfig::disabled())
        })
    });
    group.bench_function("fig6_offload_16w_cap5", |b| {
        b.iter(|| {
            OffloadConfig {
                time_slice: None,
                ..OffloadConfig::paper(16, 5)
            }
            .run(spec, ProbeConfig::disabled())
        })
    });
    group.finish();
}

/// The §2 baselines on the dispersion workload (one point each).
fn baselines(c: &mut Criterion) {
    let mut group = configured(c);
    let spec = bench_spec(300_000.0, ServiceDist::paper_bimodal());
    for (name, kind) in [
        ("rss", BaselineKind::Rss),
        ("stealing", BaselineKind::RssStealing),
        ("flowdir", BaselineKind::FlowDirector),
    ] {
        group.bench_function(format!("baseline_{name}_4w"), |b| {
            b.iter(|| BaselineConfig { workers: 4, kind }.run(spec, ProbeConfig::disabled()))
        });
    }
    group.finish();
}

/// The extension systems at one representative point each.
fn extensions(c: &mut Criterion) {
    let mut group = configured(c);
    let bimodal = bench_spec(300_000.0, ServiceDist::paper_bimodal());
    group.bench_function("rpcvalet_4w", |b| {
        b.iter(|| RpcValetConfig { workers: 4 }.run(bimodal, ProbeConfig::disabled()))
    });
    group.bench_function("elastic_rss_8w", |b| {
        b.iter(|| {
            BaselineConfig {
                workers: 8,
                kind: BaselineKind::ElasticRss,
            }
            .run(bimodal, ProbeConfig::disabled())
        })
    });
    let heavy = bench_spec(5_000_000.0, ServiceDist::Fixed(SimDuration::from_micros(1)));
    group.bench_function("multi_shinjuku_4x7", |b| {
        b.iter(|| {
            multi_shinjuku::run_probed(
                heavy,
                MultiShinjukuConfig {
                    time_slice: None,
                    ..MultiShinjukuConfig::split(32, 4)
                },
                ProbeConfig::disabled(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, fig2, fig3, fig4, fig5, fig6, baselines, extensions);
criterion_main!(benches);
