//! Discrete-event engine throughput: how many events per second the
//! simulation core sustains. Everything else in the repository is built
//! on this hot loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sim_core::{Ctx, Engine, Model, SimDuration, SimTime};

/// A model that keeps `fanout` self-rescheduling chains alive.
struct Chains;

struct ChainEv {
    gap: SimDuration,
    remaining: u32,
}

impl Model for Chains {
    type Event = ChainEv;
    fn handle(&mut self, ev: ChainEv, ctx: &mut Ctx<'_, ChainEv>) {
        if ev.remaining > 0 {
            ctx.schedule_in(
                ev.gap,
                ChainEv {
                    gap: ev.gap,
                    remaining: ev.remaining - 1,
                },
            );
        }
    }
}

fn engine_events(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    for &fanout in &[1u64, 16, 256] {
        let events_per_iter = 100_000;
        group.throughput(Throughput::Elements(events_per_iter));
        group.bench_with_input(
            BenchmarkId::new("chained_events", fanout),
            &fanout,
            |b, &fanout| {
                b.iter(|| {
                    let mut engine = Engine::new(Chains);
                    let per_chain = (events_per_iter / fanout) as u32;
                    for i in 0..fanout {
                        engine.schedule_at(
                            SimTime::from_nanos(i),
                            ChainEv {
                                gap: SimDuration::from_nanos(100 + i),
                                remaining: per_chain,
                            },
                        );
                    }
                    engine.run();
                    assert!(engine.events_processed() >= events_per_iter);
                    engine.events_processed()
                })
            },
        );
    }
    group.finish();
}

fn histogram_record(c: &mut Criterion) {
    let mut group = c.benchmark_group("stats");
    group.throughput(Throughput::Elements(100_000));
    group.bench_function("histogram_record_100k", |b| {
        b.iter(|| {
            let mut h = sim_core::stats::Histogram::latency();
            let mut x = 0x12345u64;
            for _ in 0..100_000 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                h.record(x % 10_000_000);
            }
            h.p99()
        })
    });
    group.bench_function("histogram_p99_query", |b| {
        let mut h = sim_core::stats::Histogram::latency();
        let mut x = 0x12345u64;
        for _ in 0..1_000_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.record(x % 10_000_000);
        }
        b.iter(|| h.p99())
    });
    group.finish();
}

criterion_group!(benches, engine_events, histogram_record);
criterion_main!(benches);
