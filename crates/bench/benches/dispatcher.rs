//! Scheduling-decision throughput of the placement-independent
//! dispatcher, per queue policy — the operation a line-rate NIC scheduler
//! must retire at millions per second (§5.1(1)).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use nicsched::{
    ClassPriority, Dispatcher, Fcfs, LeastOutstanding, SchedPolicy, ShortestRemaining, Task,
};
use sim_core::{SimDuration, SimTime};

fn task(id: u64) -> Task {
    Task::new(
        id,
        0,
        SimDuration::from_micros(1 + id % 50),
        SimTime::ZERO,
        SimTime::ZERO,
        64,
    )
}

fn request_done_cycle<P: SchedPolicy>(policy: P, iters: u64) -> u64 {
    let mut d = Dispatcher::new(16, 5, policy, LeastOutstanding);
    let now = SimTime::ZERO;
    let mut completions = 0u64;
    for id in 0..iters {
        for a in d.on_request(now, task(id)) {
            // Immediately complete to keep the system in steady state.
            completions += d.on_done(now, a.worker, a.task.req_id).len() as u64;
        }
    }
    completions
}

fn dispatcher_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("dispatcher");
    let iters = 10_000u64;
    group.throughput(Throughput::Elements(iters));
    group.bench_function("fcfs_request_done_cycle", |b| {
        b.iter(|| request_done_cycle(Fcfs::new(), iters))
    });
    group.bench_function("srf_request_done_cycle", |b| {
        b.iter(|| request_done_cycle(ShortestRemaining::new(), iters))
    });
    group.bench_function("class_priority_request_done_cycle", |b| {
        b.iter(|| request_done_cycle(ClassPriority::new(SimDuration::from_micros(10)), iters))
    });
    group.finish();
}

fn queue_depth_scaling(c: &mut Criterion) {
    // Enqueue/dequeue cost when the central queue is deep (overload).
    let mut group = c.benchmark_group("queue_depth");
    for &depth in &[100usize, 10_000] {
        group.throughput(Throughput::Elements(1));
        group.bench_function(format!("fcfs_cycle_at_depth_{depth}"), |b| {
            let mut q = Fcfs::new();
            let now = SimTime::ZERO;
            for id in 0..depth as u64 {
                q.enqueue(now, task(id));
            }
            let mut id = depth as u64;
            b.iter(|| {
                id += 1;
                q.enqueue(now, task(id));
                q.dequeue(now)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, dispatcher_throughput, queue_depth_scaling);
criterion_main!(benches);
