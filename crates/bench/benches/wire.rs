//! Wire-format hot paths: full-frame build and parse (the per-hop cost in
//! every simulation) and the Toeplitz RSS hash.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use net_wire::{Endpoint, EthernetAddress, FrameSpec, Ipv4Address, MsgRepr, ParsedFrame};
use nic_model::{four_tuple_input, toeplitz_hash, Rss, DEFAULT_KEY};

fn spec(body: u16) -> FrameSpec {
    FrameSpec {
        src_mac: EthernetAddress::new(2, 0, 0, 0, 0, 1),
        dst_mac: EthernetAddress::new(2, 0, 0, 0, 1, 0),
        src: Endpoint::new(Ipv4Address::new(10, 0, 0, 1), 7123),
        dst: Endpoint::new(Ipv4Address::new(10, 0, 1, 0), 6000),
        msg: MsgRepr::request(42, 1, 5_000, 123_456, body),
    }
}

fn frame_build_parse(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire");
    for &body in &[64u16, 1024] {
        group.throughput(Throughput::Elements(1));
        group.bench_function(format!("frame_build_{body}B"), |b| {
            let s = spec(body);
            b.iter(|| s.build())
        });
        group.bench_function(format!("frame_parse_{body}B"), |b| {
            let bytes = spec(body).build();
            b.iter(|| ParsedFrame::parse(&bytes).unwrap())
        });
    }
    group.finish();
}

fn rss_hash(c: &mut Criterion) {
    let mut group = c.benchmark_group("rss");
    group.throughput(Throughput::Elements(1));
    group.bench_function("toeplitz_4tuple", |b| {
        let input = four_tuple_input([66, 9, 149, 187], [161, 142, 100, 80], 2794, 1766);
        b.iter(|| toeplitz_hash(&DEFAULT_KEY, &input))
    });
    group.bench_function("steer_through_indirection", |b| {
        let rss = Rss::new(16);
        let mut port = 0u16;
        b.iter(|| {
            port = port.wrapping_add(1);
            rss.steer([10, 0, 0, 1], [10, 0, 1, 0], port, 6000)
        })
    });
    group.finish();
}

criterion_group!(benches, frame_build_parse, rss_hash);
criterion_main!(benches);
