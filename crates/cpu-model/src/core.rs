//! CPU core modeling: identity, speed, and cycle↔time conversion.
//!
//! The evaluation platform has two very different processors: the host's
//! 2.3 GHz Xeon E5-2658 cores running workers, and the Stingray's ARM A72
//! cores running the offloaded networking subsystem and dispatcher (§3.3,
//! §4). The paper attributes the offload dispatcher bottleneck partly to
//! "the slower ARM CPU" (§4.1); we capture that with a frequency plus a
//! per-core *work factor* that scales the cost of scheduler operations.

use core::fmt;

use sim_core::stats::BusyTracker;
use sim_core::{SimDuration, SimTime};

/// Identifies one core within the simulated machine.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct CoreId(pub u32);

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

/// What kind of silicon a core is.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CoreKind {
    /// Host x86 core (Xeon E5-2658 class).
    HostX86,
    /// SmartNIC ARM core (Stingray A72 class).
    NicArm,
}

/// Static description of a core.
#[derive(Clone, Copy, Debug)]
pub struct CoreSpec {
    /// Which processor this core belongs to.
    pub kind: CoreKind,
    /// Clock frequency in Hz.
    pub freq_hz: u64,
    /// Multiplier on the *cycle counts* of scheduler/network operations
    /// relative to the host baseline. 1.0 for host cores; >1.0 for the ARM
    /// cores, which retire the same DPDK/dispatch work in more cycles
    /// (in-order-ish A72 vs wide Xeon).
    pub work_factor: f64,
}

impl CoreSpec {
    /// The evaluation host: 2.3 GHz Xeon (§4).
    pub fn host_x86() -> CoreSpec {
        CoreSpec {
            kind: CoreKind::HostX86,
            freq_hz: 2_300_000_000,
            work_factor: 1.0,
        }
    }

    /// A Stingray ARM A72 core at 3.0 GHz with a 3× work factor — chosen so
    /// the offloaded dispatcher pipeline saturates around 1.4–1.5 M req/s on
    /// 1 µs requests, matching Figures 3 and 6 (see DESIGN.md §4).
    pub fn nic_arm() -> CoreSpec {
        CoreSpec {
            kind: CoreKind::NicArm,
            freq_hz: 3_000_000_000,
            work_factor: 3.0,
        }
    }

    /// Convert a host-baseline cycle count into time on this core,
    /// applying the work factor.
    pub fn cycles(&self, host_cycles: u64) -> SimDuration {
        let eff = host_cycles as f64 * self.work_factor;
        let hz = self.freq_hz as f64;
        SimDuration::from_nanos_f64(eff * 1e9 / hz)
    }

    /// Convert a raw cycle count on this core (no work factor) into time.
    pub fn raw_cycles(&self, cycles: u64) -> SimDuration {
        let cyc = cycles as f64;
        let hz = self.freq_hz as f64;
        SimDuration::from_nanos_f64(cyc * 1e9 / hz)
    }

    /// Convert a duration into raw cycles on this core.
    pub fn to_cycles(&self, d: SimDuration) -> u64 {
        (d.as_secs_f64() * self.freq_hz as f64).round() as u64
    }
}

/// Dynamic state of one simulated core: busy/idle tracking and counters.
#[derive(Debug, Clone)]
pub struct Core {
    /// Identity.
    pub id: CoreId,
    /// Static description.
    pub spec: CoreSpec,
    busy: BusyTracker,
    /// Requests fully executed on this core.
    pub requests_run: u64,
    /// Preemptions taken on this core.
    pub preemptions: u64,
}

impl Core {
    /// Create an idle core at `at`.
    pub fn new(id: CoreId, spec: CoreSpec, at: SimTime) -> Core {
        Core {
            id,
            spec,
            busy: BusyTracker::new(at),
            requests_run: 0,
            preemptions: 0,
        }
    }

    /// Whether the core is currently executing something.
    pub fn is_busy(&self) -> bool {
        self.busy.is_busy()
    }

    /// Mark the start of execution.
    pub fn set_busy(&mut self, at: SimTime) {
        self.busy.set_busy(at);
    }

    /// Mark the end of execution.
    pub fn set_idle(&mut self, at: SimTime) {
        self.busy.set_idle(at);
    }

    /// Utilization in `[0, 1]` since creation.
    pub fn utilization(&self, now: SimTime) -> f64 {
        self.busy.utilization(now)
    }

    /// Total busy time since creation.
    pub fn busy_time(&self, now: SimTime) -> SimDuration {
        self.busy.busy_until(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_cycle_conversion() {
        let host = CoreSpec::host_x86();
        // 2300 cycles at 2.3 GHz = 1 µs.
        assert_eq!(host.cycles(2300), SimDuration::from_micros(1));
        // Paper §3.4.4: 1272-cycle interrupt delivery ≈ 553 ns at 2.3 GHz.
        assert_eq!(host.cycles(1272).as_nanos(), 553);
        // 4193 cycles ≈ 1823 ns.
        assert_eq!(host.cycles(4193).as_nanos(), 1823);
    }

    #[test]
    fn arm_work_factor_slows_operations() {
        let host = CoreSpec::host_x86();
        let arm = CoreSpec::nic_arm();
        // The same logical operation takes longer on the ARM core even
        // though its clock is nominally faster.
        assert!(arm.cycles(1000) > host.cycles(1000));
    }

    #[test]
    fn raw_cycles_ignore_work_factor() {
        let arm = CoreSpec::nic_arm();
        assert_eq!(arm.raw_cycles(3000), SimDuration::from_micros(1));
    }

    #[test]
    fn to_cycles_round_trips() {
        let host = CoreSpec::host_x86();
        let d = SimDuration::from_micros(10);
        assert_eq!(host.to_cycles(d), 23_000);
        assert_eq!(host.raw_cycles(host.to_cycles(d)), d);
    }

    #[test]
    fn busy_accounting() {
        let t0 = SimTime::ZERO;
        let mut c = Core::new(CoreId(0), CoreSpec::host_x86(), t0);
        assert!(!c.is_busy());
        c.set_busy(SimTime::from_micros(1));
        c.set_idle(SimTime::from_micros(4));
        assert_eq!(
            c.busy_time(SimTime::from_micros(10)),
            SimDuration::from_micros(3)
        );
        assert!((c.utilization(SimTime::from_micros(10)) - 0.3).abs() < 1e-9);
    }

    #[test]
    fn core_id_display() {
        assert_eq!(CoreId(5).to_string(), "core5");
    }
}
