//! # cpu-model — host CPU and execution substrate
//!
//! Models the compute side of the evaluation platform in *"Mind the Gap"*
//! (HotNets '19): Xeon worker cores and Stingray ARM cores with cycle
//! accounting ([`CoreSpec`]), request execution contexts with
//! spawn/save/restore costs ([`ContextPool`]), the local-APIC preemption
//! timer in both its Linux and Dune cost modes ([`TimerMode`],
//! [`OneShotTimer`]), interrupt delivery paths ([`InterruptPath`]), and the
//! inter-core shared-memory queues whose coherence latency the paper
//! charges against host-side scheduling ([`MemQueue`]).
//!
//! All cycle numbers taken from the paper are documented at their
//! definition site with the section they come from.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod context;
mod core;
mod interrupt;
mod memqueue;
mod timer;
mod topology;

pub use crate::core::{Core, CoreId, CoreKind, CoreSpec};
pub use context::{ContextCosts, ContextOp, ContextPool};
pub use interrupt::InterruptPath;
pub use memqueue::MemQueue;
pub use timer::{OneShotTimer, TimerMode};
pub use topology::{Topology, CROSS_SOCKET_PENALTY};
