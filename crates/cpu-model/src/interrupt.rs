//! Interrupt delivery paths.
//!
//! §5.1(3) of the paper contrasts ways a NIC-resident scheduler can preempt
//! a host core: sending a packet that triggers an interrupt costs the full
//! 2.56 µs ARM→host path, while the prototype sidesteps the NIC entirely by
//! arming a local APIC timer on the worker (see [`crate::timer`]). The
//! ideal SmartNIC would instead "directly send interrupts to the host
//! server CPU". This module models the delivery *path* — latency from the
//! decision to interrupt until the handler starts, plus the receive cost on
//! the target core.

use sim_core::SimDuration;

use crate::core::CoreSpec;
use crate::timer::TimerMode;

/// How a preemption interrupt reaches a worker core.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum InterruptPath {
    /// A local APIC timer armed on the worker itself (the prototype's
    /// mechanism, §3.4.4). Zero transport latency; delivery cost depends on
    /// the timer mode.
    LocalTimer(TimerMode),
    /// The NIC constructs a packet that raises an interrupt at the host —
    /// one full NIC→host traversal before the handler runs (§3.4.4 rules
    /// this out as "not efficient" at 2.56 µs).
    PacketFromNic {
        /// One-way NIC→host latency.
        one_way: SimDuration,
    },
    /// A future NIC with a direct interrupt wire / MSI-X doorbell into the
    /// host APIC (§5.1(3)): a few hundred nanoseconds of transport.
    DirectFromNic {
        /// Doorbell-to-APIC latency.
        latency: SimDuration,
    },
}

impl InterruptPath {
    /// Transport latency from "decision to preempt" to "interrupt pending
    /// at the target core".
    pub fn transport_latency(&self) -> SimDuration {
        match *self {
            InterruptPath::LocalTimer(_) => SimDuration::ZERO,
            InterruptPath::PacketFromNic { one_way } => one_way,
            InterruptPath::DirectFromNic { latency } => latency,
        }
    }

    /// Cycles the target core spends taking the interrupt.
    pub fn receive_cost(&self, spec: &CoreSpec) -> SimDuration {
        match *self {
            InterruptPath::LocalTimer(mode) => mode.deliver_cost(spec),
            // Packet- and doorbell-initiated preemptions arrive as posted
            // interrupts on the Dune-style fast path.
            InterruptPath::PacketFromNic { .. } | InterruptPath::DirectFromNic { .. } => {
                TimerMode::DuneMapped.deliver_cost(spec)
            }
        }
    }

    /// Total decision-to-handler latency on `spec`.
    pub fn total_latency(&self, spec: &CoreSpec) -> SimDuration {
        self.transport_latency() + self.receive_cost(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_timer_has_no_transport() {
        let p = InterruptPath::LocalTimer(TimerMode::DuneMapped);
        assert_eq!(p.transport_latency(), SimDuration::ZERO);
        let host = CoreSpec::host_x86();
        assert_eq!(p.receive_cost(&host).as_nanos(), 553);
    }

    #[test]
    fn packet_interrupt_pays_the_nic_path() {
        let p = InterruptPath::PacketFromNic {
            one_way: SimDuration::from_micros_f64(2.56),
        };
        assert_eq!(p.transport_latency().as_nanos(), 2_560);
        let host = CoreSpec::host_x86();
        assert!(
            p.total_latency(&host) > SimDuration::from_micros(3),
            "2.56us + receive"
        );
    }

    #[test]
    fn direct_interrupt_is_much_cheaper_than_packet() {
        let host = CoreSpec::host_x86();
        let packet = InterruptPath::PacketFromNic {
            one_way: SimDuration::from_micros_f64(2.56),
        };
        let direct = InterruptPath::DirectFromNic {
            latency: SimDuration::from_nanos(300),
        };
        assert!(direct.total_latency(&host) * 3 < packet.total_latency(&host));
    }

    #[test]
    fn linux_timer_costs_more_to_receive() {
        let host = CoreSpec::host_x86();
        let linux = InterruptPath::LocalTimer(TimerMode::LinuxSignal);
        let dune = InterruptPath::LocalTimer(TimerMode::DuneMapped);
        assert!(linux.receive_cost(&host) > dune.receive_cost(&host));
    }
}
