//! Inter-core shared-memory queue model.
//!
//! Vanilla Shinjuku moves requests between the networking subsystem, the
//! dispatcher, and workers through cache-line-sized shared-memory queues.
//! The paper measures that this "causes 2 µs of additional tail latency for
//! requests that require minimal application work" (§2.2) — the cost of
//! cross-core cache-coherence transfers plus polling discovery on each hop.
//!
//! [`MemQueue`] models a bounded SPSC/MPSC queue where an entry pushed at
//! `t` becomes *visible* to the consumer at `t + latency`: the coherence
//! transfer plus the expected polling delay. Capacity is finite; producers
//! observe rejection just as a full DPDK ring would report it.

use std::collections::VecDeque;

use sim_core::{SimDuration, SimTime};

/// A bounded queue between simulated cores with a visibility latency.
#[derive(Debug)]
pub struct MemQueue<T> {
    entries: VecDeque<(SimTime, T)>,
    capacity: usize,
    latency: SimDuration,
    /// Entries accepted in total.
    pub pushed: u64,
    /// Push attempts rejected because the queue was full.
    pub rejected: u64,
    /// High-water mark of occupancy.
    pub peak: usize,
}

impl<T> MemQueue<T> {
    /// A queue holding up to `capacity` entries, each visible `latency`
    /// after its push.
    pub fn new(capacity: usize, latency: SimDuration) -> MemQueue<T> {
        assert!(capacity > 0, "queue capacity must be positive");
        MemQueue {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            latency,
            pushed: 0,
            rejected: 0,
            peak: 0,
        }
    }

    /// Try to enqueue at `now`. Returns `Err(value)` when full.
    pub fn push(&mut self, now: SimTime, value: T) -> Result<(), T> {
        if self.entries.len() >= self.capacity {
            self.rejected += 1;
            return Err(value);
        }
        self.entries.push_back((now + self.latency, value));
        self.pushed += 1;
        self.peak = self.peak.max(self.entries.len());
        Ok(())
    }

    /// Dequeue the oldest entry that has become visible by `now`.
    pub fn pop(&mut self, now: SimTime) -> Option<T> {
        match self.entries.front() {
            Some(&(visible_at, _)) if visible_at <= now => self.entries.pop_front().map(|(_, v)| v),
            _ => None,
        }
    }

    /// Dequeue up to `max` visible entries (models DPDK burst dequeue).
    pub fn pop_burst(&mut self, now: SimTime, max: usize) -> Vec<T> {
        let mut out = Vec::new();
        while out.len() < max {
            match self.pop(now) {
                Some(v) => out.push(v),
                None => break,
            }
        }
        out
    }

    /// When the next entry becomes visible (for scheduling a poll wake-up).
    /// `None` when empty.
    pub fn next_visible_at(&self) -> Option<SimTime> {
        self.entries.front().map(|&(t, _)| t)
    }

    /// Entries currently queued (visible or not).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The visibility latency of this queue.
    pub fn latency(&self) -> SimDuration {
        self.latency
    }

    /// Remaining space.
    pub fn free(&self) -> usize {
        self.capacity - self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> SimTime {
        SimTime::from_micros(n)
    }

    #[test]
    fn visibility_latency_enforced() {
        let mut q = MemQueue::new(8, SimDuration::from_nanos(200));
        q.push(us(1), "a").unwrap();
        assert_eq!(q.pop(us(1)), None, "not yet coherent");
        assert_eq!(q.pop(SimTime::from_nanos(1_199)), None);
        assert_eq!(q.pop(SimTime::from_nanos(1_200)), Some("a"));
    }

    #[test]
    fn fifo_order_preserved() {
        let mut q = MemQueue::new(8, SimDuration::ZERO);
        for i in 0..5 {
            q.push(us(i), i).unwrap();
        }
        for i in 0..5 {
            assert_eq!(q.pop(us(10)), Some(i));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn capacity_limits_and_counters() {
        let mut q = MemQueue::new(2, SimDuration::ZERO);
        assert!(q.push(us(0), 1).is_ok());
        assert!(q.push(us(0), 2).is_ok());
        assert_eq!(q.push(us(0), 3), Err(3));
        assert_eq!(q.pushed, 2);
        assert_eq!(q.rejected, 1);
        assert_eq!(q.peak, 2);
        assert_eq!(q.free(), 0);
        q.pop(us(1));
        assert_eq!(q.free(), 1);
    }

    #[test]
    fn burst_dequeue_respects_visibility() {
        let mut q = MemQueue::new(8, SimDuration::from_micros(1));
        q.push(us(0), 0).unwrap(); // visible at 1us
        q.push(us(0), 1).unwrap(); // visible at 1us
        q.push(us(5), 2).unwrap(); // visible at 6us
        let burst = q.pop_burst(us(1), 16);
        assert_eq!(burst, vec![0, 1]);
        assert_eq!(q.len(), 1);
        assert_eq!(q.next_visible_at(), Some(us(6)));
        assert_eq!(q.pop_burst(us(6), 1), vec![2]);
    }

    #[test]
    fn head_blocks_until_visible_even_if_later_entries_exist() {
        // FIFO semantics: an invisible head hides later entries (they were
        // pushed later so they are never visible earlier).
        let mut q = MemQueue::new(8, SimDuration::from_micros(2));
        q.push(us(0), "head").unwrap();
        q.push(us(0), "tail").unwrap();
        assert_eq!(q.pop(us(1)), None);
        assert_eq!(q.pop(us(2)), Some("head"));
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = MemQueue::<u8>::new(0, SimDuration::ZERO);
    }
}
