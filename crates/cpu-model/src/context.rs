//! Execution-context model.
//!
//! Each in-flight request runs in its own context so it can be preempted
//! and resumed later, possibly on a *different* worker (§3.4.1: "Once the
//! request reaches the front of the queue again, it can be assigned to any
//! worker"). Workers "spawn a new context and execute the request (or reuse
//! a context if the request had previously been preempted)" and on
//! preemption save "the work it has done so far (e.g., stack and register
//! contents) in host DRAM" (§3.4.3).
//!
//! We model the costs (spawn / save / restore, in host-baseline cycles) and
//! the context pool with exact bookkeeping; the Shinjuku paper's published
//! numbers put a context switch at roughly a few hundred cycles, which the
//! defaults reflect.

use sim_core::SimDuration;

use crate::core::CoreSpec;

/// Cycle costs for context operations (host-baseline cycles).
#[derive(Clone, Copy, Debug)]
pub struct ContextCosts {
    /// Allocate and enter a fresh context for a new request.
    pub spawn_cycles: u64,
    /// Save a preempted context (stack + registers) to DRAM.
    pub save_cycles: u64,
    /// Restore a previously saved context.
    pub restore_cycles: u64,
}

impl Default for ContextCosts {
    fn default() -> Self {
        // Shinjuku-class user-level context switching: ~100 cycles to enter
        // a pooled context, a few hundred to save/restore across DRAM.
        ContextCosts {
            spawn_cycles: 110,
            save_cycles: 320,
            restore_cycles: 280,
        }
    }
}

impl ContextCosts {
    /// Time to spawn on `spec`.
    pub fn spawn(&self, spec: &CoreSpec) -> SimDuration {
        spec.cycles(self.spawn_cycles)
    }

    /// Time to save on `spec`.
    pub fn save(&self, spec: &CoreSpec) -> SimDuration {
        spec.cycles(self.save_cycles)
    }

    /// Time to restore on `spec`.
    pub fn restore(&self, spec: &CoreSpec) -> SimDuration {
        spec.cycles(self.restore_cycles)
    }
}

/// Tracks saved contexts for preempted requests, keyed by request id.
///
/// The pool answers one question on assignment: is this request fresh
/// (spawn) or resumed (restore)? It also counts DRAM residency so tests can
/// assert the "at most one in-flight context per active request" invariant.
#[derive(Debug, Default)]
pub struct ContextPool {
    // Ordered set: resident-context walks must not depend on hasher order.
    saved: std::collections::BTreeSet<u64>,
    /// Total contexts ever spawned.
    pub spawned: u64,
    /// Total save operations.
    pub saves: u64,
    /// Total restore operations.
    pub restores: u64,
    /// High-water mark of saved contexts resident in DRAM.
    pub peak_resident: usize,
}

/// What a worker must do to start running a request.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ContextOp {
    /// First execution: spawn a fresh context.
    Spawn,
    /// Resumption after preemption: restore the saved context.
    Restore,
}

impl ContextPool {
    /// A pool with no saved contexts.
    pub fn new() -> ContextPool {
        ContextPool::default()
    }

    /// Begin executing `req_id`; tells the worker whether to spawn or
    /// restore, and updates bookkeeping.
    pub fn begin(&mut self, req_id: u64) -> ContextOp {
        if self.saved.remove(&req_id) {
            self.restores += 1;
            ContextOp::Restore
        } else {
            self.spawned += 1;
            ContextOp::Spawn
        }
    }

    /// Record that `req_id` was preempted and its context saved to DRAM.
    ///
    /// # Panics
    /// Panics if a context for the same request is already saved — that
    /// would mean the request was running in two places at once.
    pub fn save(&mut self, req_id: u64) {
        let inserted = self.saved.insert(req_id);
        assert!(inserted, "request {req_id} already has a saved context");
        self.saves += 1;
        self.peak_resident = self.peak_resident.max(self.saved.len());
    }

    /// Drop the saved context of a finished/aborted request, if any.
    pub fn discard(&mut self, req_id: u64) {
        self.saved.remove(&req_id);
    }

    /// Whether `req_id` currently has a context saved in DRAM. Lets fault
    /// paths (e.g. a duplicate execution after a retransmit) distinguish
    /// "preempted, resumable" from "never started / already finished"
    /// without tripping the double-save panic.
    pub fn is_saved(&self, req_id: u64) -> bool {
        self.saved.contains(&req_id)
    }

    /// Number of contexts currently saved in DRAM.
    pub fn resident(&self) -> usize {
        self.saved.len()
    }

    /// The cost of `op` on `spec`.
    pub fn op_cost(op: ContextOp, costs: &ContextCosts, spec: &CoreSpec) -> SimDuration {
        match op {
            ContextOp::Spawn => costs.spawn(spec),
            ContextOp::Restore => costs.restore(spec),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_request_spawns() {
        let mut pool = ContextPool::new();
        assert_eq!(pool.begin(1), ContextOp::Spawn);
        assert_eq!(pool.spawned, 1);
        assert_eq!(pool.restores, 0);
    }

    #[test]
    fn preempted_request_restores_even_on_another_worker() {
        let mut pool = ContextPool::new();
        assert_eq!(pool.begin(7), ContextOp::Spawn);
        pool.save(7);
        assert_eq!(pool.resident(), 1);
        // Re-assignment (any worker — the pool is per-request, not per-core).
        assert_eq!(pool.begin(7), ContextOp::Restore);
        assert_eq!(pool.resident(), 0);
        assert_eq!(pool.restores, 1);
    }

    #[test]
    fn multiple_preemptions_round_trip() {
        let mut pool = ContextPool::new();
        pool.begin(3);
        for _ in 0..5 {
            pool.save(3);
            assert_eq!(pool.begin(3), ContextOp::Restore);
        }
        assert_eq!(pool.saves, 5);
        assert_eq!(pool.restores, 5);
        assert_eq!(pool.spawned, 1);
    }

    #[test]
    #[should_panic(expected = "already has a saved context")]
    fn double_save_is_a_bug() {
        let mut pool = ContextPool::new();
        pool.begin(9);
        pool.save(9);
        pool.save(9);
    }

    #[test]
    fn peak_residency_tracked() {
        let mut pool = ContextPool::new();
        for id in 0..10 {
            pool.begin(id);
            pool.save(id);
        }
        for id in 0..10 {
            pool.discard(id);
        }
        assert_eq!(pool.peak_resident, 10);
        assert_eq!(pool.resident(), 0);
    }

    #[test]
    fn costs_scale_with_core() {
        let costs = ContextCosts::default();
        let host = CoreSpec::host_x86();
        let arm = CoreSpec::nic_arm();
        assert!(costs.spawn(&host) < costs.spawn(&arm));
        assert_eq!(
            ContextPool::op_cost(ContextOp::Spawn, &costs, &host),
            costs.spawn(&host)
        );
        assert_eq!(
            ContextPool::op_cost(ContextOp::Restore, &costs, &host),
            costs.restore(&host)
        );
    }
}
