//! Multi-socket topology.
//!
//! The evaluation host is a dual-socket Xeon E5-2658 (§4), and §1 warns
//! that host-side dispatching gets worse on such machines: "the situation
//! is worse if the worker chosen by the dispatcher is not on the socket
//! whose last-level cache had the packet pre-loaded with Direct Data I/O".
//! DDIO preloads into the LLC of the socket whose PCIe root complex hosts
//! the NIC; a worker on the *other* socket pays a cross-socket (QPI/UPI)
//! access for every packet line.

use sim_core::SimDuration;

/// A symmetric multi-socket layout with workers numbered densely.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Topology {
    /// Number of sockets (1 or 2 on the evaluation platform).
    pub sockets: u8,
    /// Worker cores per socket.
    pub cores_per_socket: u8,
}

impl Topology {
    /// Single-socket layout for `cores` workers.
    pub fn single(cores: u8) -> Topology {
        Topology {
            sockets: 1,
            cores_per_socket: cores,
        }
    }

    /// Dual-socket layout splitting `total` workers evenly (rounding the
    /// extra core onto socket 0, where the NIC lives).
    pub fn dual(total: u8) -> Topology {
        Topology {
            sockets: 2,
            cores_per_socket: total.div_ceil(2),
        }
    }

    /// Socket housing worker `core` (dense numbering: socket 0 first).
    pub fn socket_of(&self, core: usize) -> u8 {
        ((core / self.cores_per_socket as usize) as u8).min(self.sockets - 1)
    }

    /// Total worker cores.
    pub fn total_cores(&self) -> usize {
        self.sockets as usize * self.cores_per_socket as usize
    }

    /// Whether an access from `core` to data homed on `home_socket`
    /// crosses the socket interconnect.
    pub fn is_remote(&self, core: usize, home_socket: u8) -> bool {
        self.socket_of(core) != home_socket
    }
}

/// One-way cross-socket cache-line transfer penalty (QPI/UPI hop on the
/// E5-2658 era platform; ~100–130 ns versus a local LLC hit).
pub const CROSS_SOCKET_PENALTY: SimDuration = SimDuration::from_nanos(110);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_socket_everything_local() {
        let t = Topology::single(8);
        for c in 0..8 {
            assert_eq!(t.socket_of(c), 0);
            assert!(!t.is_remote(c, 0));
        }
        assert_eq!(t.total_cores(), 8);
    }

    #[test]
    fn dual_socket_split() {
        let t = Topology::dual(8);
        assert_eq!(t.cores_per_socket, 4);
        for c in 0..4 {
            assert_eq!(t.socket_of(c), 0, "core {c}");
        }
        for c in 4..8 {
            assert_eq!(t.socket_of(c), 1, "core {c}");
        }
        assert!(t.is_remote(6, 0), "socket-1 core accessing socket-0 LLC");
        assert!(!t.is_remote(1, 0));
    }

    #[test]
    fn odd_split_keeps_extra_on_socket_zero() {
        let t = Topology::dual(7);
        assert_eq!(t.cores_per_socket, 4);
        assert_eq!(t.socket_of(3), 0);
        assert_eq!(t.socket_of(4), 1);
        // Out-of-range cores clamp to the last socket rather than panic.
        assert_eq!(t.socket_of(100), 1);
    }
}
