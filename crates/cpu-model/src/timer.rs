//! Preemption timer model.
//!
//! Shinjuku-Offload preempts a worker when a request exceeds its time slice
//! (§3.4.4). The paper measures two ways of arming the local APIC timer:
//!
//! * **Linux path** — `timer_create`/signal delivery: 610 cycles to set,
//!   4193 cycles to receive.
//! * **Dune path** — the Dune kernel module maps the local APIC's timer
//!   registers into guest physical address space so workers set the timer
//!   directly, and the interrupt arrives as a low-overhead posted
//!   interrupt: 40 cycles to set (−93%), 1272 to receive (−70%).
//!
//! This module models both cost profiles and the one-shot timer lifecycle
//! with *generation counters*: re-arming invalidates any in-flight firing,
//! which is how a worker cancels the slice timer when a request finishes
//! early (the simulator's event heap does not support removal).

use sim_core::{SimDuration, SimTime};

use crate::core::CoreSpec;

/// How the timer is armed and its interrupt delivered.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TimerMode {
    /// POSIX timer + signal (the expensive baseline, §3.4.4).
    LinuxSignal,
    /// Dune-mapped APIC registers + posted interrupt (the optimized path).
    DuneMapped,
}

impl TimerMode {
    /// Cycles to arm the timer (paper §3.4.4).
    pub fn set_cycles(self) -> u64 {
        match self {
            TimerMode::LinuxSignal => 610,
            TimerMode::DuneMapped => 40,
        }
    }

    /// Cycles to take the expiry interrupt (paper §3.4.4).
    pub fn deliver_cycles(self) -> u64 {
        match self {
            TimerMode::LinuxSignal => 4193,
            TimerMode::DuneMapped => 1272,
        }
    }

    /// Time to arm on a given core (raw cycles: these are measured counts,
    /// not host-baseline estimates, so no work factor applies).
    pub fn set_cost(self, spec: &CoreSpec) -> SimDuration {
        spec.raw_cycles(self.set_cycles())
    }

    /// Time to take the expiry interrupt on a given core.
    pub fn deliver_cost(self, spec: &CoreSpec) -> SimDuration {
        spec.raw_cycles(self.deliver_cycles())
    }
}

/// A one-shot preemption timer with generation-based cancellation.
///
/// Usage inside a model:
/// 1. `let gen = timer.arm(now + slice)` and schedule a `TimerFired { core,
///    gen }` event at `timer.deadline()`.
/// 2. On request completion call `timer.disarm()`.
/// 3. When `TimerFired` arrives, `timer.accept(gen)` tells you whether the
///    firing is still live or was cancelled/superseded.
#[derive(Debug, Clone)]
pub struct OneShotTimer {
    generation: u64,
    armed: Option<SimTime>,
}

impl Default for OneShotTimer {
    fn default() -> Self {
        Self::new()
    }
}

impl OneShotTimer {
    /// A disarmed timer.
    pub fn new() -> OneShotTimer {
        OneShotTimer {
            generation: 0,
            armed: None,
        }
    }

    /// Arm (or re-arm) for `deadline`, returning the generation token that
    /// must accompany the firing event.
    pub fn arm(&mut self, deadline: SimTime) -> u64 {
        self.generation += 1;
        self.armed = Some(deadline);
        self.generation
    }

    /// Cancel the pending firing, if any.
    pub fn disarm(&mut self) {
        self.generation += 1;
        self.armed = None;
    }

    /// Whether a firing is pending.
    pub fn is_armed(&self) -> bool {
        self.armed.is_some()
    }

    /// Deadline of the pending firing.
    pub fn deadline(&self) -> Option<SimTime> {
        self.armed
    }

    /// Validate a firing: true exactly when `gen` is the live generation.
    /// A live firing also disarms the timer.
    pub fn accept(&mut self, gen: u64) -> bool {
        if self.armed.is_some() && gen == self.generation {
            self.armed = None;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::CoreSpec;

    #[test]
    fn paper_cycle_counts() {
        assert_eq!(TimerMode::LinuxSignal.set_cycles(), 610);
        assert_eq!(TimerMode::DuneMapped.set_cycles(), 40);
        assert_eq!(TimerMode::LinuxSignal.deliver_cycles(), 4193);
        assert_eq!(TimerMode::DuneMapped.deliver_cycles(), 1272);
    }

    #[test]
    fn paper_reduction_percentages() {
        // §3.4.4: set cost reduced 93%, deliver cost reduced 70%.
        let set_red = 1.0
            - TimerMode::DuneMapped.set_cycles() as f64
                / TimerMode::LinuxSignal.set_cycles() as f64;
        let del_red = 1.0
            - TimerMode::DuneMapped.deliver_cycles() as f64
                / TimerMode::LinuxSignal.deliver_cycles() as f64;
        assert!((set_red - 0.93).abs() < 0.005, "set reduction {set_red}");
        assert!(
            (del_red - 0.70).abs() < 0.005,
            "deliver reduction {del_red}"
        );
    }

    #[test]
    fn costs_scale_with_frequency() {
        let host = CoreSpec::host_x86();
        assert_eq!(TimerMode::DuneMapped.set_cost(&host).as_nanos(), 17); // 40/2.3
        assert_eq!(TimerMode::DuneMapped.deliver_cost(&host).as_nanos(), 553);
        assert_eq!(TimerMode::LinuxSignal.deliver_cost(&host).as_nanos(), 1823);
    }

    #[test]
    fn one_shot_lifecycle() {
        let mut t = OneShotTimer::new();
        assert!(!t.is_armed());
        let g1 = t.arm(SimTime::from_micros(10));
        assert!(t.is_armed());
        assert_eq!(t.deadline(), Some(SimTime::from_micros(10)));
        assert!(t.accept(g1), "live firing accepted");
        assert!(!t.is_armed(), "accepting a firing disarms");
        assert!(!t.accept(g1), "a firing is accepted at most once");
    }

    #[test]
    fn disarm_cancels_inflight_firing() {
        let mut t = OneShotTimer::new();
        let g = t.arm(SimTime::from_micros(10));
        t.disarm();
        assert!(!t.accept(g), "cancelled firing rejected");
    }

    #[test]
    fn rearm_supersedes_old_generation() {
        let mut t = OneShotTimer::new();
        let g1 = t.arm(SimTime::from_micros(10));
        let g2 = t.arm(SimTime::from_micros(20));
        assert!(!t.accept(g1), "stale firing rejected");
        assert!(t.accept(g2));
    }
}
