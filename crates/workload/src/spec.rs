//! Workload specification and run metrics.
//!
//! A [`WorkloadSpec`] is the complete, seedable description of one
//! experiment point: the arrival process, the service-time distribution,
//! the request body size, and the measurement window. A system runs it and
//! fills a [`RunMetrics`] — the row format every figure in the paper is
//! plotted from (achieved throughput vs p99 latency).

use sim_core::{SimDuration, SimTime, StageReport};

use crate::dist::ServiceDist;
use crate::latency::ReqClass;

/// Complete description of one load point.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadSpec {
    /// Offered load, requests per second (Poisson open-loop).
    pub offered_rps: f64,
    /// Service-time distribution.
    pub dist: ServiceDist,
    /// Request body bytes beyond the message header (the paper considers
    /// 64 B and 1 KiB requests).
    pub body_len: u16,
    /// Simulated time before which completions are discarded.
    pub warmup: SimDuration,
    /// Simulated measurement window after warmup.
    pub measure: SimDuration,
    /// Master seed; every stochastic stream forks from it.
    pub seed: u64,
}

impl WorkloadSpec {
    /// A workload with sane defaults: 64 B bodies, 10 ms warmup, 100 ms
    /// measurement, seed 1.
    pub fn new(offered_rps: f64, dist: ServiceDist) -> WorkloadSpec {
        WorkloadSpec {
            offered_rps,
            dist,
            body_len: 64,
            warmup: SimDuration::from_millis(10),
            measure: SimDuration::from_millis(100),
            seed: 1,
        }
    }

    /// Total simulated horizon (warmup + measurement).
    pub fn horizon(&self) -> SimTime {
        SimTime::ZERO + self.warmup + self.measure
    }

    /// End of warmup as an absolute instant.
    pub fn warmup_until(&self) -> SimTime {
        SimTime::ZERO + self.warmup
    }

    /// Expected number of requests over the horizon.
    pub fn expected_requests(&self) -> u64 {
        (self.offered_rps * (self.warmup + self.measure).as_secs_f64()) as u64
    }

    /// Classify a sampled service time against this distribution: for
    /// bimodal workloads a request of the long mode is [`ReqClass::Long`];
    /// for other shapes, anything above 4× the mean counts as long.
    pub fn class_of(&self, service: SimDuration) -> ReqClass {
        match self.dist {
            ServiceDist::Bimodal { long, .. } => {
                if service == long {
                    ReqClass::Long
                } else {
                    ReqClass::Short
                }
            }
            other => {
                if service > other.mean() * 4 {
                    ReqClass::Long
                } else {
                    ReqClass::Short
                }
            }
        }
    }
}

/// The measured outcome of running one [`WorkloadSpec`] on one system —
/// one point on one curve of one figure.
#[derive(Clone, Debug, PartialEq)]
pub struct RunMetrics {
    /// Offered load (requests/second).
    pub offered_rps: f64,
    /// Achieved goodput (requests/second over the measurement window).
    pub achieved_rps: f64,
    /// Median sojourn.
    pub p50: SimDuration,
    /// 99th-percentile sojourn — the paper's tail latency.
    pub p99: SimDuration,
    /// 99.9th-percentile sojourn.
    pub p999: SimDuration,
    /// p99 of the short request class (e.g. the 5 us bimodal mode);
    /// zero when the class is empty.
    pub p99_short: SimDuration,
    /// p99 of the long request class; zero when the class is empty.
    pub p99_long: SimDuration,
    /// Mean sojourn.
    pub mean: SimDuration,
    /// Completions measured.
    pub completed: u64,
    /// Requests dropped anywhere in the system (rings, queues).
    pub dropped: u64,
    /// Preemptions observed.
    pub preemptions: u64,
    /// Mean worker utilization in `[0,1]`.
    pub worker_utilization: f64,
    /// Stage-level observability report; `None` unless the run was probed
    /// (`ProbeConfig::enabled()` or stronger).
    pub stages: Option<StageReport>,
}

impl RunMetrics {
    /// Whether this point is saturated: goodput fell more than `tolerance`
    /// below offered load (e.g. 0.03 → 3%).
    pub fn saturated(&self, tolerance: f64) -> bool {
        self.achieved_rps < self.offered_rps * (1.0 - tolerance)
    }

    /// A compact single-line rendering for experiment logs.
    pub fn row(&self) -> String {
        format!(
            "offered={:>10.0} achieved={:>10.0} p50={} p99={} p999={} drops={} preempt={} util={:.2}",
            self.offered_rps,
            self.achieved_rps,
            self.p50,
            self.p99,
            self.p999,
            self.dropped,
            self.preemptions,
            self.worker_utilization,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::Rng;

    #[test]
    fn horizon_and_warmup() {
        let w = WorkloadSpec::new(100_000.0, ServiceDist::Fixed(SimDuration::from_micros(1)));
        assert_eq!(w.warmup_until(), SimTime::from_millis(10));
        assert_eq!(w.horizon(), SimTime::from_millis(110));
        assert_eq!(w.expected_requests(), 11_000);
    }

    #[test]
    fn bimodal_classification_is_exact() {
        let w = WorkloadSpec::new(1.0, ServiceDist::paper_bimodal());
        assert_eq!(w.class_of(SimDuration::from_micros(5)), ReqClass::Short);
        assert_eq!(w.class_of(SimDuration::from_micros(100)), ReqClass::Long);
    }

    #[test]
    fn generic_classification_uses_mean_multiple() {
        let w = WorkloadSpec::new(
            1.0,
            ServiceDist::Exponential {
                mean: SimDuration::from_micros(10),
            },
        );
        assert_eq!(w.class_of(SimDuration::from_micros(10)), ReqClass::Short);
        assert_eq!(w.class_of(SimDuration::from_micros(50)), ReqClass::Long);
    }

    #[test]
    fn saturation_detection() {
        let mut m = RunMetrics {
            offered_rps: 1_000_000.0,
            achieved_rps: 995_000.0,
            p50: SimDuration::from_micros(6),
            p99: SimDuration::from_micros(20),
            p999: SimDuration::from_micros(40),
            p99_short: SimDuration::from_micros(18),
            p99_long: SimDuration::from_micros(40),
            mean: SimDuration::from_micros(8),
            completed: 100_000,
            dropped: 0,
            preemptions: 0,
            worker_utilization: 0.9,
            stages: None,
        };
        assert!(!m.saturated(0.03));
        m.achieved_rps = 900_000.0;
        assert!(m.saturated(0.03));
        assert!(m.row().contains("offered"));
    }

    #[test]
    fn class_of_consistent_with_sampling() {
        // Every sampled bimodal value classifies into one of the two modes.
        let w = WorkloadSpec::new(1.0, ServiceDist::paper_bimodal());
        let mut rng = Rng::new(3);
        for _ in 0..10_000 {
            let s = w.dist.sample(&mut rng);
            let _ = w.class_of(s); // must not panic, always classifiable
            assert!(
                s == SimDuration::from_micros(5) || s == SimDuration::from_micros(100),
                "unexpected bimodal sample {s}"
            );
        }
    }
}
