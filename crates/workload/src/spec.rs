//! Workload specification and run metrics.
//!
//! A [`WorkloadSpec`] is the complete, seedable description of one
//! experiment point: the arrival process, the service-time distribution,
//! the request body size, and the measurement window. A system runs it and
//! fills a [`RunMetrics`] — the row format every figure in the paper is
//! plotted from (achieved throughput vs p99 latency).

use sim_core::{SimDuration, SimTime, StageReport};

use crate::dist::ServiceDist;
use crate::latency::ReqClass;

/// Complete description of one load point.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadSpec {
    /// Offered load, requests per second (Poisson open-loop).
    pub offered_rps: f64,
    /// Service-time distribution.
    pub dist: ServiceDist,
    /// Request body bytes beyond the message header (the paper considers
    /// 64 B and 1 KiB requests).
    pub body_len: u16,
    /// Simulated time before which completions are discarded.
    pub warmup: SimDuration,
    /// Simulated measurement window after warmup.
    pub measure: SimDuration,
    /// Master seed; every stochastic stream forks from it.
    pub seed: u64,
}

impl WorkloadSpec {
    /// A workload with sane defaults: 64 B bodies, 10 ms warmup, 100 ms
    /// measurement, seed 1.
    pub fn new(offered_rps: f64, dist: ServiceDist) -> WorkloadSpec {
        WorkloadSpec {
            offered_rps,
            dist,
            body_len: 64,
            warmup: SimDuration::from_millis(10),
            measure: SimDuration::from_millis(100),
            seed: 1,
        }
    }

    /// This spec with the offered load replaced — the per-point
    /// derivation used by load sweeps, so warmup/measure/seed are
    /// constructed once per figure rather than once per point.
    pub fn at(mut self, offered_rps: f64) -> WorkloadSpec {
        self.offered_rps = offered_rps;
        self
    }

    /// Total simulated horizon (warmup + measurement).
    pub fn horizon(&self) -> SimTime {
        SimTime::ZERO + self.warmup + self.measure
    }

    /// End of warmup as an absolute instant.
    pub fn warmup_until(&self) -> SimTime {
        SimTime::ZERO + self.warmup
    }

    /// Expected number of requests over the horizon.
    pub fn expected_requests(&self) -> u64 {
        (self.offered_rps * (self.warmup + self.measure).as_secs_f64()) as u64
    }

    /// Classify a sampled service time against this distribution: for
    /// bimodal workloads a request of the long mode is [`ReqClass::Long`];
    /// for other shapes, anything above 4× the mean counts as long.
    pub fn class_of(&self, service: SimDuration) -> ReqClass {
        match self.dist {
            ServiceDist::Bimodal { long, .. } => {
                if service == long {
                    ReqClass::Long
                } else {
                    ReqClass::Short
                }
            }
            other => {
                if service > other.mean() * 4 {
                    ReqClass::Long
                } else {
                    ReqClass::Short
                }
            }
        }
    }
}

/// Reliability and fault accounting for one run.
///
/// Every counter is a client- or model-side tally, so a dropped request
/// shows up somewhere instead of silently vanishing from the latency
/// distribution. Two ledgers reconcile a run:
///
/// * **Request ledger** (exact): every request the client launched ends in
///   exactly one of recorded / abandoned / still-open, so
///   [`unaccounted`](FaultMetrics::unaccounted) must always be zero.
/// * **Attempt ledger** (bounded): wire attempts either reach a terminal
///   fate the model counted (completion, duplicate, orphan, link loss,
///   ring drop, shed, stranded-on-crashed-worker) or are still in the
///   pipeline at the horizon; [`in_pipe`](FaultMetrics::in_pipe) is that
///   remainder and must be small and non-negative.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultMetrics {
    /// Wire send attempts, including retransmissions.
    pub attempts: u64,
    /// Distinct requests launched by the client.
    pub launched: u64,
    /// Unique completions recorded (including warmup completions, which
    /// the latency histograms discard but the ledger must not).
    pub completed_all: u64,
    /// Retransmissions sent after a timeout or NACK.
    pub retries: u64,
    /// Per-attempt timeouts that fired while the attempt was live.
    pub timeouts: u64,
    /// Responses for requests already completed (suppressed, not
    /// recorded).
    pub duplicates: u64,
    /// Responses for requests the client had already abandoned.
    pub orphaned: u64,
    /// Requests given up after the attempt budget was exhausted.
    pub abandoned: u64,
    /// Requests still awaiting a response when the run ended.
    pub open_at_horizon: u64,
    /// Request frames lost on the client→server wire.
    pub req_link_lost: u64,
    /// Response frames lost on the server→client wire.
    pub resp_link_lost: u64,
    /// Frames tail-dropped by NIC/worker rings.
    pub ring_dropped: u64,
    /// Requests shed by the dispatcher's admission policy.
    pub shed: u64,
    /// Early-NACK frames the dispatcher sent for shed requests.
    pub nacks: u64,
    /// Tasks stranded on a crashed worker (accepted, never finished).
    pub stranded: u64,
    /// Informed→hashed fallback transitions taken by the stale-feedback
    /// governor.
    pub fallback_switches: u64,
    /// Cumulative nanoseconds the dispatcher spent in hashed fallback.
    pub fallback_ns: u64,
    /// Workers quarantined (excluded from selection) for stale feedback.
    pub quarantines: u64,
    /// In-flight requests reclaimed from suspected workers and
    /// re-dispatched by the NIC-side failure detector.
    pub recovered: u64,
    /// Late completions from stalled-but-alive workers absorbed by the
    /// exactly-once filter after their request was already re-dispatched.
    pub recovery_duplicates: u64,
    /// Workers suspected by the failure detector (lease expiries).
    pub suspicions: u64,
    /// Suspected workers readmitted on late activity (false positives).
    pub readmissions: u64,
}

impl FaultMetrics {
    /// Total frames lost on either wire.
    pub fn link_lost(&self) -> u64 {
        self.req_link_lost + self.resp_link_lost
    }

    /// Request-ledger residue: `launched - (completed + abandoned +
    /// open)`. Always zero when client bookkeeping is sound.
    pub fn unaccounted(&self) -> i64 {
        self.launched as i64
            - self.completed_all as i64
            - self.abandoned as i64
            - self.open_at_horizon as i64
    }

    /// Attempt-ledger residue: attempts whose fate was not explicitly
    /// counted, i.e. frames still inside the pipeline (links, rings,
    /// queues, running workers) at the horizon. Must be non-negative and
    /// bounded by the pipeline depth (plus `recovery_duplicates` when
    /// NIC-side recovery is on).
    ///
    /// Recovery re-dispatch clones an admitted attempt *inside* the
    /// server: when the original copy later surfaces anyway (a stalled
    /// worker finishing its zombie), its terminal event — a duplicate
    /// response at the client, or an absorbed report at the dispatcher —
    /// was never paid for by a wire attempt, so each one is credited
    /// back here.
    pub fn in_pipe(&self) -> i64 {
        self.attempts as i64 + self.recovery_duplicates as i64
            - self.completed_all as i64
            - self.duplicates as i64
            - self.orphaned as i64
            - self.link_lost() as i64
            - self.ring_dropped as i64
            - self.shed as i64
            - self.stranded as i64
    }

    /// Accumulate another replica's counters into this one (used when
    /// averaging metrics across seeds: counters sum, ratios re-derive).
    pub fn absorb(&mut self, other: &FaultMetrics) {
        self.attempts += other.attempts;
        self.launched += other.launched;
        self.completed_all += other.completed_all;
        self.retries += other.retries;
        self.timeouts += other.timeouts;
        self.duplicates += other.duplicates;
        self.orphaned += other.orphaned;
        self.abandoned += other.abandoned;
        self.open_at_horizon += other.open_at_horizon;
        self.req_link_lost += other.req_link_lost;
        self.resp_link_lost += other.resp_link_lost;
        self.ring_dropped += other.ring_dropped;
        self.shed += other.shed;
        self.nacks += other.nacks;
        self.stranded += other.stranded;
        self.fallback_switches += other.fallback_switches;
        self.fallback_ns += other.fallback_ns;
        self.quarantines += other.quarantines;
        self.recovered += other.recovered;
        self.recovery_duplicates += other.recovery_duplicates;
        self.suspicions += other.suspicions;
        self.readmissions += other.readmissions;
    }
}

/// The measured outcome of running one [`WorkloadSpec`] on one system —
/// one point on one curve of one figure.
#[derive(Clone, Debug, PartialEq)]
pub struct RunMetrics {
    /// Offered load (requests/second).
    pub offered_rps: f64,
    /// Achieved goodput (requests/second over the measurement window).
    pub achieved_rps: f64,
    /// Median sojourn.
    pub p50: SimDuration,
    /// 99th-percentile sojourn — the paper's tail latency.
    pub p99: SimDuration,
    /// 99.9th-percentile sojourn.
    pub p999: SimDuration,
    /// p99 of the short request class (e.g. the 5 us bimodal mode);
    /// zero when the class is empty.
    pub p99_short: SimDuration,
    /// p99 of the long request class; zero when the class is empty.
    pub p99_long: SimDuration,
    /// Mean sojourn.
    pub mean: SimDuration,
    /// Completions measured.
    pub completed: u64,
    /// Requests dropped anywhere in the system (rings, queues).
    pub dropped: u64,
    /// Preemptions observed.
    pub preemptions: u64,
    /// Mean worker utilization in `[0,1]`.
    pub worker_utilization: f64,
    /// Stage-level observability report; `None` unless the run was probed
    /// (`ProbeConfig::enabled()` or stronger).
    pub stages: Option<StageReport>,
    /// Reliability and fault accounting (all-zero for a fault-free run
    /// without retries).
    pub faults: FaultMetrics,
}

impl RunMetrics {
    /// Whether this point is saturated: goodput fell more than `tolerance`
    /// below offered load (e.g. 0.03 → 3%).
    pub fn saturated(&self, tolerance: f64) -> bool {
        self.achieved_rps < self.offered_rps * (1.0 - tolerance)
    }

    /// Achieved goodput as a fraction of offered load (1.0 = nothing
    /// lost; 0.0 when no load was offered).
    pub fn goodput_ratio(&self) -> f64 {
        if self.offered_rps > 0.0 {
            self.achieved_rps / self.offered_rps
        } else {
            0.0
        }
    }

    /// A compact single-line rendering for experiment logs.
    pub fn row(&self) -> String {
        format!(
            "offered={:>10.0} achieved={:>10.0} goodput={:.3} p50={} p99={} p999={} drops={} retries={} preempt={} util={:.2}",
            self.offered_rps,
            self.achieved_rps,
            self.goodput_ratio(),
            self.p50,
            self.p99,
            self.p999,
            self.dropped,
            self.faults.retries,
            self.preemptions,
            self.worker_utilization,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::Rng;

    #[test]
    fn horizon_and_warmup() {
        let w = WorkloadSpec::new(100_000.0, ServiceDist::Fixed(SimDuration::from_micros(1)));
        assert_eq!(w.warmup_until(), SimTime::from_millis(10));
        assert_eq!(w.horizon(), SimTime::from_millis(110));
        assert_eq!(w.expected_requests(), 11_000);
    }

    #[test]
    fn bimodal_classification_is_exact() {
        let w = WorkloadSpec::new(1.0, ServiceDist::paper_bimodal());
        assert_eq!(w.class_of(SimDuration::from_micros(5)), ReqClass::Short);
        assert_eq!(w.class_of(SimDuration::from_micros(100)), ReqClass::Long);
    }

    #[test]
    fn generic_classification_uses_mean_multiple() {
        let w = WorkloadSpec::new(
            1.0,
            ServiceDist::Exponential {
                mean: SimDuration::from_micros(10),
            },
        );
        assert_eq!(w.class_of(SimDuration::from_micros(10)), ReqClass::Short);
        assert_eq!(w.class_of(SimDuration::from_micros(50)), ReqClass::Long);
    }

    #[test]
    fn saturation_detection() {
        let mut m = RunMetrics {
            offered_rps: 1_000_000.0,
            achieved_rps: 995_000.0,
            p50: SimDuration::from_micros(6),
            p99: SimDuration::from_micros(20),
            p999: SimDuration::from_micros(40),
            p99_short: SimDuration::from_micros(18),
            p99_long: SimDuration::from_micros(40),
            mean: SimDuration::from_micros(8),
            completed: 100_000,
            dropped: 0,
            preemptions: 0,
            worker_utilization: 0.9,
            stages: None,
            faults: FaultMetrics::default(),
        };
        assert!(!m.saturated(0.03));
        m.achieved_rps = 900_000.0;
        assert!(m.saturated(0.03));
        assert!(m.row().contains("offered"));
        assert!(m.row().contains("goodput=0.900"));
        assert!(m.row().contains("retries=0"));
    }

    #[test]
    fn fault_ledgers_reconcile() {
        let mut f = FaultMetrics {
            attempts: 110,
            launched: 100,
            completed_all: 90,
            retries: 10,
            timeouts: 12,
            duplicates: 1,
            orphaned: 1,
            abandoned: 4,
            open_at_horizon: 6,
            req_link_lost: 8,
            resp_link_lost: 2,
            ring_dropped: 3,
            shed: 2,
            nacks: 2,
            stranded: 1,
            ..FaultMetrics::default()
        };
        assert_eq!(f.unaccounted(), 0, "request ledger closes");
        assert_eq!(f.link_lost(), 10);
        // 110 - 90 - 1 - 1 - 10 - 3 - 2 - 1 = 2 attempts still in pipes.
        assert_eq!(f.in_pipe(), 2);
        f.completed_all += 1;
        assert_eq!(f.unaccounted(), -1, "imbalance is visible");
    }

    #[test]
    fn class_of_consistent_with_sampling() {
        // Every sampled bimodal value classifies into one of the two modes.
        let w = WorkloadSpec::new(1.0, ServiceDist::paper_bimodal());
        let mut rng = Rng::new(3);
        for _ in 0..10_000 {
            let s = w.dist.sample(&mut rng);
            let _ = w.class_of(s); // must not panic, always classifiable
            assert!(
                s == SimDuration::from_micros(5) || s == SimDuration::from_micros(100),
                "unexpected bimodal sample {s}"
            );
        }
    }
}
