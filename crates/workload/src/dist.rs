//! Service-time distributions.
//!
//! The evaluation's synthetic requests "contain fake work that keeps the
//! server busy for a specific amount of time … allow[ing] us to emulate
//! different workload distributions" (§4.1). The paper uses fixed
//! distributions (1 µs, 5 µs, 100 µs) and the bimodal 99.5%@5 µs /
//! 0.5%@100 µs mix; we also provide the exponential, lognormal and Pareto
//! shapes common in the dispersion literature the paper cites (e.g.
//! RocksDB-like and GC-heavy tails) for the extension experiments.

use sim_core::{Rng, SimDuration};

/// A service-time distribution.
// The Empirical variant's 16-level table dominates the enum size; the
// enum stays `Copy` by design (WorkloadSpec is passed by value through
// every experiment), so the size trade is deliberate.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ServiceDist {
    /// Every request takes exactly this long.
    Fixed(SimDuration),
    /// Two request classes: with probability `p_long` a request takes
    /// `long`, otherwise `short`. The paper's headline workload is
    /// `bimodal(0.005, 5 µs, 100 µs)` (Figure 2).
    Bimodal {
        /// Probability of the long class.
        p_long: f64,
        /// Short-class service time.
        short: SimDuration,
        /// Long-class service time.
        long: SimDuration,
    },
    /// Exponential with the given mean (memoryless, moderate dispersion).
    Exponential {
        /// Mean service time.
        mean: SimDuration,
    },
    /// Lognormal parameterized by its actual mean and the shape `sigma`
    /// (σ of the underlying normal). Larger σ → heavier tail.
    Lognormal {
        /// Mean service time of the (lognormal) samples.
        mean: SimDuration,
        /// Shape parameter of the underlying normal.
        sigma: f64,
    },
    /// An empirical distribution quantized to 16 weighted quantile levels
    /// — the stand-in for production service-time traces this environment
    /// cannot ship. The level grid is tail-biased so rare slow requests
    /// (the whole point of dispersion studies) survive quantization.
    /// Build one from recorded samples with [`ServiceDist::from_trace`].
    Empirical {
        /// The 16 quantile levels (sorted ascending).
        levels: [SimDuration; 16],
        /// Cumulative probability at the upper edge of each level's bin;
        /// `cum[15] == 1.0`.
        cum: [f64; 16],
    },
    /// Bounded Pareto-like heavy tail: `scale / U^(1/alpha)` capped at
    /// `cap`, the classic high-dispersion stressor.
    Pareto {
        /// Minimum service time (the scale).
        scale: SimDuration,
        /// Tail index; smaller → heavier tail. Must be > 1 for finite mean.
        alpha: f64,
        /// Upper bound on samples.
        cap: SimDuration,
    },
}

impl ServiceDist {
    /// Quantize a recorded trace of service times into an
    /// [`ServiceDist::Empirical`]. The 16 bins follow a tail-biased grid —
    /// dense in the body, logarithmically denser past p90 — so a 1%
    /// slow-request mode survives quantization (uniform octiles would
    /// erase exactly the dispersion the paper studies).
    ///
    /// # Panics
    /// Panics on an empty trace.
    pub fn from_trace(samples: &[SimDuration]) -> ServiceDist {
        assert!(!samples.is_empty(), "empty service-time trace");
        let mut sorted: Vec<SimDuration> = samples.to_vec();
        sorted.sort_unstable();
        // Bin edges: body bins then tail bins up to 1.0.
        const EDGES: [f64; 17] = [
            0.0, 0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.85, 0.90, 0.94, 0.97, 0.985, 0.993, 0.997,
            0.999, 0.9997, 1.0,
        ];
        let mut levels = [SimDuration::ZERO; 16];
        let mut cum = [0.0f64; 16];
        for i in 0..16 {
            let q = (EDGES[i] + EDGES[i + 1]) / 2.0; // bin midpoint quantile
            let rank = ((q * sorted.len() as f64) as usize).min(sorted.len() - 1);
            levels[i] = sorted[rank];
            cum[i] = EDGES[i + 1];
        }
        ServiceDist::Empirical { levels, cum }
    }

    /// The paper's Figure 2 workload: 99.5% at 5 µs, 0.5% at 100 µs.
    pub fn paper_bimodal() -> ServiceDist {
        ServiceDist::Bimodal {
            p_long: 0.005,
            short: SimDuration::from_micros(5),
            long: SimDuration::from_micros(100),
        }
    }

    /// Draw one service time.
    pub fn sample(&self, rng: &mut Rng) -> SimDuration {
        match *self {
            ServiceDist::Fixed(d) => d,
            ServiceDist::Bimodal {
                p_long,
                short,
                long,
            } => {
                if rng.chance(p_long) {
                    long
                } else {
                    short
                }
            }
            ServiceDist::Exponential { mean } => {
                SimDuration::from_secs_f64(rng.exponential(mean.as_secs_f64()))
            }
            ServiceDist::Lognormal { mean, sigma } => {
                // If X = exp(mu + sigma Z), E[X] = exp(mu + sigma^2/2).
                let mu = mean.as_secs_f64().ln() - sigma * sigma / 2.0;
                let x = (mu + sigma * rng.standard_normal()).exp();
                SimDuration::from_secs_f64(x)
            }
            ServiceDist::Empirical { levels, cum } => {
                let u = rng.next_f64();
                let idx = cum.iter().position(|&c| u < c).unwrap_or(15);
                levels[idx]
            }
            ServiceDist::Pareto { scale, alpha, cap } => {
                let u = rng.next_f64_open();
                let x = scale.as_secs_f64() / u.powf(1.0 / alpha);
                SimDuration::from_secs_f64(x.min(cap.as_secs_f64()))
            }
        }
    }

    /// Analytic mean of the distribution (the Pareto mean ignores the cap,
    /// as an upper bound).
    pub fn mean(&self) -> SimDuration {
        match *self {
            ServiceDist::Fixed(d) => d,
            ServiceDist::Bimodal {
                p_long,
                short,
                long,
            } => {
                let m = short.as_secs_f64() * (1.0 - p_long) + long.as_secs_f64() * p_long;
                SimDuration::from_secs_f64(m)
            }
            ServiceDist::Exponential { mean } => mean,
            ServiceDist::Lognormal { mean, .. } => mean,
            ServiceDist::Empirical { levels, cum } => {
                let mut acc = 0.0;
                let mut lo = 0.0;
                for (level, &hi) in levels.iter().zip(cum.iter()) {
                    acc += level.as_secs_f64() * (hi - lo);
                    lo = hi;
                }
                SimDuration::from_secs_f64(acc)
            }
            ServiceDist::Pareto { scale, alpha, .. } => {
                assert!(alpha > 1.0, "Pareto mean requires alpha > 1");
                SimDuration::from_secs_f64(scale.as_secs_f64() * alpha / (alpha - 1.0))
            }
        }
    }

    /// A short human-readable name for reports.
    pub fn label(&self) -> String {
        match *self {
            ServiceDist::Fixed(d) => format!("fixed({d})"),
            ServiceDist::Bimodal {
                p_long,
                short,
                long,
            } => {
                format!(
                    "bimodal({:.1}%@{short}, {:.1}%@{long})",
                    (1.0 - p_long) * 100.0,
                    p_long * 100.0
                )
            }
            ServiceDist::Exponential { mean } => format!("exp(mean={mean})"),
            ServiceDist::Lognormal { mean, sigma } => format!("lognormal(mean={mean}, s={sigma})"),
            ServiceDist::Empirical { levels, .. } => {
                format!("empirical(p50~{}, max-level {})", levels[4], levels[15])
            }
            ServiceDist::Pareto { scale, alpha, cap } => {
                format!("pareto(scale={scale}, a={alpha}, cap={cap})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_mean(dist: ServiceDist, n: usize, seed: u64) -> f64 {
        let mut rng = Rng::new(seed);
        (0..n)
            .map(|_| dist.sample(&mut rng).as_secs_f64())
            .sum::<f64>()
            / n as f64
    }

    #[test]
    fn fixed_is_constant() {
        let d = ServiceDist::Fixed(SimDuration::from_micros(5));
        let mut rng = Rng::new(1);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut rng), SimDuration::from_micros(5));
        }
        assert_eq!(d.mean(), SimDuration::from_micros(5));
    }

    #[test]
    fn paper_bimodal_mean_and_mix() {
        let d = ServiceDist::paper_bimodal();
        // mean = 0.995*5 + 0.005*100 = 5.475 us
        assert_eq!(d.mean().as_nanos(), 5_475);
        let mut rng = Rng::new(2);
        let n = 200_000;
        let longs = (0..n)
            .filter(|_| d.sample(&mut rng) == SimDuration::from_micros(100))
            .count();
        let frac = longs as f64 / n as f64;
        assert!((frac - 0.005).abs() < 0.001, "long fraction {frac}");
    }

    #[test]
    fn exponential_empirical_mean() {
        let d = ServiceDist::Exponential {
            mean: SimDuration::from_micros(10),
        };
        let m = sample_mean(d, 200_000, 3);
        assert!((m - 10e-6).abs() < 0.3e-6, "mean {m}");
    }

    #[test]
    fn lognormal_empirical_mean_matches_parameterization() {
        let d = ServiceDist::Lognormal {
            mean: SimDuration::from_micros(20),
            sigma: 1.0,
        };
        let m = sample_mean(d, 400_000, 4);
        assert!((m - 20e-6).abs() < 1e-6, "mean {m}");
    }

    #[test]
    fn lognormal_dispersion_grows_with_sigma() {
        let mut rng = Rng::new(5);
        let narrow = ServiceDist::Lognormal {
            mean: SimDuration::from_micros(10),
            sigma: 0.25,
        };
        let wide = ServiceDist::Lognormal {
            mean: SimDuration::from_micros(10),
            sigma: 2.0,
        };
        let max_narrow = (0..50_000).map(|_| narrow.sample(&mut rng)).max().unwrap();
        let max_wide = (0..50_000).map(|_| wide.sample(&mut rng)).max().unwrap();
        assert!(max_wide > max_narrow * 5, "{max_wide} vs {max_narrow}");
    }

    #[test]
    fn pareto_respects_scale_and_cap() {
        let d = ServiceDist::Pareto {
            scale: SimDuration::from_micros(1),
            alpha: 1.5,
            cap: SimDuration::from_millis(1),
        };
        let mut rng = Rng::new(6);
        for _ in 0..100_000 {
            let s = d.sample(&mut rng);
            assert!(s >= SimDuration::from_micros(1));
            assert!(s <= SimDuration::from_millis(1));
        }
        // Uncapped analytic mean: 1us * 1.5/0.5 = 3us.
        assert_eq!(d.mean().as_nanos(), 3_000);
    }

    #[test]
    fn empirical_from_trace_preserves_shape() {
        // Synthesize a "trace": 90% fast (2us), 10% slow (40us).
        let mut trace = Vec::new();
        for i in 0..1000 {
            trace.push(if i % 10 == 0 {
                SimDuration::from_micros(40)
            } else {
                SimDuration::from_micros(2)
            });
        }
        let d = ServiceDist::from_trace(&trace);
        // Mean of the trace: 0.9*2 + 0.1*40 = 5.8us; the weighted
        // quantization should land close.
        let mean = d.mean().as_micros_f64();
        assert!((4.5..7.0).contains(&mean), "quantized mean {mean}");
        let mut rng = Rng::new(5);
        let samples: Vec<SimDuration> = (0..10_000).map(|_| d.sample(&mut rng)).collect();
        assert!(samples.iter().any(|&s| s == SimDuration::from_micros(40)));
        assert!(samples.iter().any(|&s| s == SimDuration::from_micros(2)));
        let slow = samples
            .iter()
            .filter(|&&s| s == SimDuration::from_micros(40))
            .count();
        let frac = slow as f64 / samples.len() as f64;
        assert!((0.03..0.20).contains(&frac), "slow fraction {frac}");
    }

    #[test]
    fn empirical_levels_are_sorted_quantiles() {
        let trace: Vec<SimDuration> = (1..=1000).map(SimDuration::from_micros).collect();
        let d = ServiceDist::from_trace(&trace);
        if let ServiceDist::Empirical { levels, cum } = d {
            for pair in levels.windows(2) {
                assert!(pair[0] <= pair[1], "levels must ascend");
            }
            assert!(levels[0] <= SimDuration::from_micros(80));
            assert!(
                levels[15] >= SimDuration::from_micros(995),
                "tail level {}",
                levels[15]
            );
            assert!((cum[15] - 1.0).abs() < 1e-12);
            for pair in cum.windows(2) {
                assert!(pair[0] < pair[1], "cumulative probs must ascend");
            }
        } else {
            panic!("expected empirical");
        }
    }

    #[test]
    fn empirical_preserves_rare_tail_mass() {
        // 1% of the trace at 250us: the tail must survive quantization
        // with roughly the right probability mass.
        let mut trace = vec![SimDuration::from_micros(2); 9900];
        trace.extend(vec![SimDuration::from_micros(250); 100]);
        let d = ServiceDist::from_trace(&trace);
        let mut rng = Rng::new(9);
        let n = 200_000;
        let slow = (0..n)
            .filter(|_| d.sample(&mut rng) >= SimDuration::from_micros(250))
            .count();
        let frac = slow as f64 / n as f64;
        assert!(
            (0.004..0.02).contains(&frac),
            "tail mass {frac} should be near 1%"
        );
    }

    #[test]
    #[should_panic(expected = "empty service-time trace")]
    fn empirical_rejects_empty_trace() {
        let _ = ServiceDist::from_trace(&[]);
    }

    #[test]
    fn labels_are_informative() {
        assert!(ServiceDist::paper_bimodal().label().contains("bimodal"));
        assert!(ServiceDist::Fixed(SimDuration::from_micros(1))
            .label()
            .contains("fixed"));
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let d = ServiceDist::paper_bimodal();
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..1000 {
            assert_eq!(d.sample(&mut a), d.sample(&mut b));
        }
    }
}
