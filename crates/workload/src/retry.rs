//! Client-side reliability policy.
//!
//! Open-loop load generators in the paper's methodology fire and forget;
//! under fault injection that silently flatters the tail — a dropped
//! request simply never appears in the latency histogram. [`RetryPolicy`]
//! gives the client mutilate-style reliability: a per-request timeout,
//! bounded exponential backoff between attempts, and a hard attempt cap so
//! a dead server cannot pin the client forever. Duplicate-response
//! suppression lives with the client state (`systems::common`); this
//! module is the pure policy: *when* to give up and *how long* to wait.

use sim_core::SimDuration;

/// Timeout/retry policy for one client.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Timeout for the first attempt.
    pub timeout: SimDuration,
    /// Multiplier applied to the timeout on every retry (`>= 1.0`).
    pub backoff: f64,
    /// Upper bound the backed-off timeout never exceeds.
    pub max_timeout: SimDuration,
    /// Total attempts including the first (`>= 1`). After the last
    /// attempt's timeout fires the request is abandoned.
    pub max_attempts: u32,
}

impl RetryPolicy {
    /// Defaults matched to the simulated testbed: the end-to-end sojourn
    /// under healthy load is tens of microseconds, so a 200 µs first
    /// timeout retransmits only genuinely lost work, doubling up to a 2 ms
    /// cap over at most 4 attempts.
    pub fn paper_default() -> RetryPolicy {
        RetryPolicy {
            timeout: SimDuration::from_micros(200),
            backoff: 2.0,
            max_timeout: SimDuration::from_millis(2),
            max_attempts: 4,
        }
    }

    /// Timeout armed for `attempt` (1-based): `timeout · backoff^(n-1)`,
    /// clamped to [`max_timeout`](RetryPolicy::max_timeout).
    ///
    /// # Panics
    /// Panics if `attempt == 0` — attempts are 1-based.
    pub fn timeout_for(&self, attempt: u32) -> SimDuration {
        assert!(attempt >= 1, "attempts are 1-based");
        let mut t = self.timeout;
        for _ in 1..attempt {
            t = t.mul_f64(self.backoff);
            if t >= self.max_timeout {
                return self.max_timeout;
            }
        }
        t.min(self.max_timeout)
    }

    /// Whether a request on `attempt` (1-based) may be retransmitted once
    /// more after a timeout or NACK.
    pub fn may_retry(&self, attempt: u32) -> bool {
        attempt < self.max_attempts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_then_caps() {
        let p = RetryPolicy {
            timeout: SimDuration::from_micros(100),
            backoff: 2.0,
            max_timeout: SimDuration::from_micros(350),
            max_attempts: 8,
        };
        assert_eq!(p.timeout_for(1), SimDuration::from_micros(100));
        assert_eq!(p.timeout_for(2), SimDuration::from_micros(200));
        assert_eq!(p.timeout_for(3), SimDuration::from_micros(350));
        assert_eq!(p.timeout_for(7), SimDuration::from_micros(350));
    }

    #[test]
    fn attempt_budget() {
        let p = RetryPolicy {
            max_attempts: 3,
            ..RetryPolicy::paper_default()
        };
        assert!(p.may_retry(1));
        assert!(p.may_retry(2));
        assert!(!p.may_retry(3));
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn attempt_zero_is_a_bug() {
        RetryPolicy::paper_default().timeout_for(0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The backed-off timeout is monotone in the attempt number and
        /// never exceeds the configured cap (an ISSUE-2 acceptance
        /// property).
        #[test]
        fn backoff_never_exceeds_cap(
            base_us in 1u64..1_000,
            backoff in 1.0f64..4.0,
            cap_us in 1u64..100_000,
            attempt in 1u32..64,
        ) {
            let p = RetryPolicy {
                timeout: SimDuration::from_micros(base_us),
                backoff,
                max_timeout: SimDuration::from_micros(cap_us),
                max_attempts: 64,
            };
            let t = p.timeout_for(attempt);
            prop_assert!(t <= p.max_timeout, "timeout {t} above cap");
            if attempt > 1 {
                prop_assert!(t >= p.timeout_for(attempt - 1).min(p.max_timeout));
            }
        }
    }
}
