//! Arrival processes for open-loop load generation.
//!
//! The paper drives both systems with "an open loop load generator similar
//! to mutilate that transmits requests over UDP" (§4). Open-loop means
//! arrivals do not wait for responses — exactly what makes overload visible
//! as unbounded queueing. Poisson arrivals are the standard model; we also
//! provide deterministic (uniform) spacing and a two-state bursty (MMPP-
//! style) process for the extension experiments.

use sim_core::{Rng, SimDuration};

/// An arrival process generating inter-arrival gaps.
#[derive(Clone, Copy, Debug)]
pub enum ArrivalProcess {
    /// Poisson arrivals at `rate_rps` requests/second (exponential gaps).
    Poisson {
        /// Mean arrival rate, requests per second.
        rate_rps: f64,
    },
    /// Deterministic arrivals every `1/rate_rps` seconds.
    Uniform {
        /// Arrival rate, requests per second.
        rate_rps: f64,
    },
    /// Two-state Markov-modulated Poisson process: alternates between a
    /// calm state and a burst state with different rates; state holding
    /// times are exponential.
    Bursty {
        /// Rate in the calm state.
        calm_rps: f64,
        /// Rate in the burst state.
        burst_rps: f64,
        /// Mean dwell time in the calm state.
        calm_dwell: SimDuration,
        /// Mean dwell time in the burst state.
        burst_dwell: SimDuration,
    },
}

impl ArrivalProcess {
    /// Long-run average rate in requests/second.
    pub fn mean_rate(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate_rps } | ArrivalProcess::Uniform { rate_rps } => rate_rps,
            ArrivalProcess::Bursty {
                calm_rps,
                burst_rps,
                calm_dwell,
                burst_dwell,
            } => {
                let tc = calm_dwell.as_secs_f64();
                let tb = burst_dwell.as_secs_f64();
                (calm_rps * tc + burst_rps * tb) / (tc + tb)
            }
        }
    }
}

/// Stateful gap generator for one client.
#[derive(Debug, Clone)]
pub struct ArrivalGen {
    process: ArrivalProcess,
    rng: Rng,
    /// For `Bursty`: are we currently in the burst state, and when does the
    /// current state end (in seconds of accumulated arrival time)?
    bursting: bool,
    state_left: f64,
}

impl ArrivalGen {
    /// Create a generator over `process` drawing from `rng`.
    pub fn new(process: ArrivalProcess, rng: Rng) -> ArrivalGen {
        let mut gen = ArrivalGen {
            process,
            rng,
            bursting: false,
            state_left: 0.0,
        };
        if let ArrivalProcess::Bursty { calm_dwell, .. } = process {
            gen.state_left = gen.rng.exponential(calm_dwell.as_secs_f64());
        }
        gen
    }

    /// The gap until the next arrival.
    pub fn next_gap(&mut self) -> SimDuration {
        match self.process {
            ArrivalProcess::Poisson { rate_rps } => {
                SimDuration::from_secs_f64(self.rng.exponential(1.0 / rate_rps))
            }
            ArrivalProcess::Uniform { rate_rps } => SimDuration::from_secs_f64(1.0 / rate_rps),
            ArrivalProcess::Bursty {
                calm_rps,
                burst_rps,
                calm_dwell,
                burst_dwell,
            } => {
                let rate = if self.bursting { burst_rps } else { calm_rps };
                let gap = self.rng.exponential(1.0 / rate);
                self.state_left -= gap;
                if self.state_left <= 0.0 {
                    self.bursting = !self.bursting;
                    let dwell = if self.bursting {
                        burst_dwell
                    } else {
                        calm_dwell
                    };
                    self.state_left = self.rng.exponential(dwell.as_secs_f64());
                }
                SimDuration::from_secs_f64(gap)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empirical_rate(process: ArrivalProcess, n: usize, seed: u64) -> f64 {
        let mut gen = ArrivalGen::new(process, Rng::new(seed));
        let total: f64 = (0..n).map(|_| gen.next_gap().as_secs_f64()).sum();
        n as f64 / total
    }

    #[test]
    fn poisson_rate_converges() {
        let r = empirical_rate(
            ArrivalProcess::Poisson {
                rate_rps: 500_000.0,
            },
            200_000,
            1,
        );
        assert!((r - 500_000.0).abs() < 10_000.0, "rate {r}");
    }

    #[test]
    fn uniform_gaps_are_exact() {
        let mut gen = ArrivalGen::new(
            ArrivalProcess::Uniform {
                rate_rps: 1_000_000.0,
            },
            Rng::new(2),
        );
        for _ in 0..100 {
            assert_eq!(gen.next_gap(), SimDuration::from_micros(1));
        }
    }

    #[test]
    fn bursty_long_run_rate_matches_mean() {
        let p = ArrivalProcess::Bursty {
            calm_rps: 100_000.0,
            burst_rps: 900_000.0,
            calm_dwell: SimDuration::from_millis(1),
            burst_dwell: SimDuration::from_millis(1),
        };
        assert!((p.mean_rate() - 500_000.0).abs() < 1.0);
        let r = empirical_rate(p, 400_000, 3);
        assert!((r - 500_000.0).abs() < 50_000.0, "rate {r}");
    }

    #[test]
    fn poisson_gaps_have_cv_one() {
        let mut gen = ArrivalGen::new(ArrivalProcess::Poisson { rate_rps: 1e6 }, Rng::new(4));
        let gaps: Vec<f64> = (0..100_000).map(|_| gen.next_gap().as_secs_f64()).collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64;
        let cv = var.sqrt() / mean;
        assert!((cv - 1.0).abs() < 0.02, "coefficient of variation {cv}");
    }

    #[test]
    fn determinism_per_seed() {
        let p = ArrivalProcess::Poisson { rate_rps: 1e6 };
        let mut a = ArrivalGen::new(p, Rng::new(9));
        let mut b = ArrivalGen::new(p, Rng::new(9));
        for _ in 0..1000 {
            assert_eq!(a.next_gap(), b.next_gap());
        }
    }
}
