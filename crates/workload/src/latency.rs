//! End-to-end latency recording.
//!
//! The paper reports "the 99th percentile latency as the tail latency" (§4)
//! of the client-observed sojourn time, after a warmup. [`LatencyRecorder`]
//! tracks overall and per-class histograms (short vs long requests in the
//! bimodal workload), completion counts for goodput, and slowdown (sojourn
//! divided by service time), with warmup samples discarded.

use sim_core::stats::Histogram;
use sim_core::{SimDuration, SimTime};

/// Which class a request belongs to (for per-class tails in dispersive
/// workloads).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReqClass {
    /// Short request (e.g. the 5 µs mode of the bimodal mix).
    Short,
    /// Long request (e.g. the 100 µs mode).
    Long,
}

/// Collects latency samples after a warmup cutoff.
#[derive(Debug)]
pub struct LatencyRecorder {
    warmup_until: SimTime,
    all: Histogram,
    short: Histogram,
    long: Histogram,
    slowdown_x1000: Histogram,
    /// Completions recorded (post-warmup).
    pub completed: u64,
    /// Completions ignored because they finished during warmup.
    pub warmup_discarded: u64,
    first_recorded: Option<SimTime>,
    last_recorded: Option<SimTime>,
}

impl LatencyRecorder {
    /// A recorder that discards completions before `warmup_until`.
    pub fn new(warmup_until: SimTime) -> LatencyRecorder {
        LatencyRecorder {
            warmup_until,
            all: Histogram::latency(),
            short: Histogram::latency(),
            long: Histogram::latency(),
            slowdown_x1000: Histogram::latency(),
            completed: 0,
            warmup_discarded: 0,
            first_recorded: None,
            last_recorded: None,
        }
    }

    /// Record a completion observed at `now` for a request sent at
    /// `sent_at` with intrinsic service time `service` and class `class`.
    pub fn record(
        &mut self,
        now: SimTime,
        sent_at: SimTime,
        service: SimDuration,
        class: ReqClass,
    ) {
        if now < self.warmup_until {
            self.warmup_discarded += 1;
            return;
        }
        let sojourn = now.saturating_duration_since(sent_at);
        self.all.record(sojourn.as_nanos());
        match class {
            ReqClass::Short => self.short.record(sojourn.as_nanos()),
            ReqClass::Long => self.long.record(sojourn.as_nanos()),
        }
        if !service.is_zero() {
            let slowdown = sojourn.div_duration_f64(service);
            self.slowdown_x1000.record((slowdown * 1000.0) as u64);
        }
        self.completed += 1;
        if self.first_recorded.is_none() {
            self.first_recorded = Some(now);
        }
        self.last_recorded = Some(now);
    }

    /// The overall latency histogram.
    pub fn histogram(&self) -> &Histogram {
        &self.all
    }

    /// Per-class histogram.
    pub fn class_histogram(&self, class: ReqClass) -> &Histogram {
        match class {
            ReqClass::Short => &self.short,
            ReqClass::Long => &self.long,
        }
    }

    /// p99 sojourn, as the paper plots. `None` before any sample.
    pub fn p99(&self) -> Option<SimDuration> {
        self.all.p99().map(SimDuration::from_nanos)
    }

    /// Median sojourn.
    pub fn p50(&self) -> Option<SimDuration> {
        self.all.p50().map(SimDuration::from_nanos)
    }

    /// 99.9th percentile sojourn.
    pub fn p999(&self) -> Option<SimDuration> {
        self.all.p999().map(SimDuration::from_nanos)
    }

    /// Mean sojourn.
    pub fn mean(&self) -> Option<SimDuration> {
        (self.completed > 0).then(|| SimDuration::from_nanos_f64_trunc(self.all.mean()))
    }

    /// p99 of the slowdown (sojourn / service).
    pub fn p99_slowdown(&self) -> Option<f64> {
        self.slowdown_x1000.p99().map(|v| v as f64 / 1000.0)
    }

    /// Achieved goodput over the measurement span, requests/second.
    pub fn achieved_rps(&self) -> f64 {
        match (self.first_recorded, self.last_recorded) {
            (Some(first), Some(last)) if last > first => {
                (self.completed.saturating_sub(1)) as f64 / last.duration_since(first).as_secs_f64()
            }
            _ => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> SimTime {
        SimTime::from_micros(n)
    }

    #[test]
    fn warmup_discarded() {
        let mut rec = LatencyRecorder::new(us(100));
        rec.record(us(50), us(45), SimDuration::from_micros(5), ReqClass::Short);
        assert_eq!(rec.completed, 0);
        assert_eq!(rec.warmup_discarded, 1);
        rec.record(
            us(150),
            us(140),
            SimDuration::from_micros(5),
            ReqClass::Short,
        );
        assert_eq!(rec.completed, 1);
        assert_eq!(rec.p99(), Some(SimDuration::from_micros(10)));
    }

    #[test]
    fn per_class_separation() {
        let mut rec = LatencyRecorder::new(SimTime::ZERO);
        for i in 0..100 {
            rec.record(
                us(10 + i),
                us(i),
                SimDuration::from_micros(5),
                ReqClass::Short,
            );
        }
        rec.record(
            us(1000),
            us(0),
            SimDuration::from_micros(100),
            ReqClass::Long,
        );
        assert_eq!(rec.class_histogram(ReqClass::Short).count(), 100);
        assert_eq!(rec.class_histogram(ReqClass::Long).count(), 1);
        // The long class does not contaminate the short-class tail.
        let short_p99 = rec.class_histogram(ReqClass::Short).p99().unwrap();
        assert!(short_p99 <= 10_100, "short p99 {short_p99}");
        assert!(rec.histogram().max().unwrap() >= 1_000_000);
    }

    #[test]
    fn slowdown_tracks_ratio() {
        let mut rec = LatencyRecorder::new(SimTime::ZERO);
        // 20us sojourn on a 5us request = 4x slowdown.
        rec.record(us(20), us(0), SimDuration::from_micros(5), ReqClass::Short);
        let s = rec.p99_slowdown().unwrap();
        assert!((s - 4.0).abs() < 0.05, "slowdown {s}");
    }

    #[test]
    fn achieved_rps_spans_measurement_window() {
        let mut rec = LatencyRecorder::new(SimTime::ZERO);
        // 11 completions, 1 per 10us, spanning 100us -> 100k rps.
        for i in 0..11u64 {
            rec.record(
                us(i * 10),
                us(0),
                SimDuration::from_micros(1),
                ReqClass::Short,
            );
        }
        let rps = rec.achieved_rps();
        assert!((rps - 100_000.0).abs() < 1.0, "rps {rps}");
    }

    #[test]
    fn empty_recorder_reports_none() {
        let rec = LatencyRecorder::new(SimTime::ZERO);
        assert_eq!(rec.p99(), None);
        assert_eq!(rec.mean(), None);
        assert_eq!(rec.achieved_rps(), 0.0);
    }

    #[test]
    fn zero_service_time_does_not_divide_by_zero() {
        let mut rec = LatencyRecorder::new(SimTime::ZERO);
        rec.record(us(5), us(0), SimDuration::ZERO, ReqClass::Short);
        assert_eq!(rec.completed, 1);
        assert_eq!(rec.p99_slowdown(), None);
    }
}
