//! # workload — load generation and measurement
//!
//! The mutilate-style open-loop methodology of the paper's evaluation (§4):
//! Poisson [`ArrivalGen`]s, synthetic [`ServiceDist`]s (fixed, the paper's
//! bimodal mix, and heavier-tailed shapes for extensions), warmup-aware
//! [`LatencyRecorder`]s reporting the p99 the figures plot, and the
//! [`WorkloadSpec`] / [`RunMetrics`] row format shared by every system and
//! experiment in the workspace.

//! # Example
//!
//! ```
//! use sim_core::Rng;
//! use workload::ServiceDist;
//!
//! let dist = ServiceDist::paper_bimodal(); // 99.5% @ 5us, 0.5% @ 100us
//! assert_eq!(dist.mean().as_nanos(), 5_475);
//! let mut rng = Rng::new(1);
//! let s = dist.sample(&mut rng);
//! assert!(s.as_micros_f64() == 5.0 || s.as_micros_f64() == 100.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arrivals;
mod dist;
mod latency;
mod retry;
mod spec;

pub use arrivals::{ArrivalGen, ArrivalProcess};
pub use dist::ServiceDist;
pub use latency::{LatencyRecorder, ReqClass};
pub use retry::RetryPolicy;
pub use spec::{FaultMetrics, RunMetrics, WorkloadSpec};
