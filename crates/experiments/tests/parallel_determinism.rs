//! The parallel sweep runner's whole contract in one test: the worker
//! pool only changes *when* points run, never *what* they compute, so
//! `--jobs 1` and `--jobs 4` must produce identical metrics — down to
//! the last preemption count — for every server assembly.
//!
//! This lives in its own integration-test binary because the job count
//! is process-global state; nothing else may race it.

use experiments::sweep::{par_map, set_jobs};
use experiments::Scale;
use systems::baseline::{BaselineConfig, BaselineKind};
use systems::multi_shinjuku::MultiShinjukuConfig;
use systems::offload::OffloadConfig;
use systems::rpcvalet::RpcValetConfig;
use systems::shinjuku::ShinjukuConfig;
use systems::{ProbeConfig, ServerSystem, SystemConfig};
use workload::{RunMetrics, ServiceDist};

fn assemblies() -> Vec<SystemConfig> {
    vec![
        SystemConfig::Offload(OffloadConfig::paper(4, 4)),
        SystemConfig::Shinjuku(ShinjukuConfig::paper(4)),
        SystemConfig::Baseline(BaselineConfig {
            workers: 4,
            kind: BaselineKind::Rss,
        }),
        SystemConfig::RpcValet(RpcValetConfig { workers: 4 }),
        SystemConfig::MultiShinjuku(MultiShinjukuConfig::split(10, 2)),
    ]
}

fn one_point_per_assembly(jobs: usize) -> Vec<RunMetrics> {
    set_jobs(jobs);
    let out = par_map(&assemblies(), |sys| {
        let spec = Scale::Quick.spec_seeded(250_000.0, ServiceDist::paper_bimodal(), 23);
        sys.run(spec, ProbeConfig::disabled())
    });
    set_jobs(0);
    out
}

#[test]
fn jobs_1_and_jobs_4_are_bit_identical_for_every_assembly() {
    let serial = one_point_per_assembly(1);
    let pooled = one_point_per_assembly(4);
    assert_eq!(serial.len(), pooled.len());
    for (s, p) in serial.iter().zip(&pooled) {
        assert_eq!(s, p, "an assembly diverged between --jobs 1 and --jobs 4");
        assert!(s.completed > 0, "the point must actually simulate traffic");
    }
}
