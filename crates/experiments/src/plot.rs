//! Terminal plots: render a [`Figure`]'s latency-throughput curves as an
//! ASCII chart, so `cargo run --bin fig6 -- --plot` shows the paper's
//! figure shape without leaving the terminal.
//!
//! The y-axis is log-scaled p99 latency (tails span orders of magnitude),
//! the x-axis is offered load; one glyph per curve.

use crate::report::Figure;

/// Glyphs assigned to curves, in order.
const GLYPHS: [char; 6] = ['o', 'x', '+', '*', '#', '@'];

/// Render the figure as an ASCII chart of p99 (log y) vs offered load.
/// `width`/`height` are the plot-area dimensions in characters.
pub fn ascii(figure: &Figure, width: usize, height: usize) -> String {
    assert!(width >= 16 && height >= 4, "plot area too small");
    let mut xs: Vec<f64> = Vec::new();
    let mut ys: Vec<f64> = Vec::new();
    for c in &figure.curves {
        for m in &c.points {
            if m.p99.as_nanos() > 0 {
                xs.push(m.offered_rps);
                ys.push(m.p99.as_micros_f64());
            }
        }
    }
    if xs.is_empty() {
        return format!("{} — no data\n", figure.id);
    }
    let (x_lo, x_hi) = bounds(&xs);
    let (y_lo, y_hi) = bounds(&ys);
    let (ly_lo, ly_hi) = (y_lo.max(1e-3).log10(), y_hi.max(1e-3).log10());
    let ly_span = (ly_hi - ly_lo).max(1e-9);
    let x_span = (x_hi - x_lo).max(1e-9);

    let mut grid = vec![vec![' '; width]; height];
    for (ci, curve) in figure.curves.iter().enumerate() {
        let glyph = GLYPHS[ci % GLYPHS.len()];
        for m in &curve.points {
            if m.p99.as_nanos() == 0 {
                continue;
            }
            let x = ((m.offered_rps - x_lo) / x_span * (width - 1) as f64).round() as usize;
            let ly = m.p99.as_micros_f64().max(1e-3).log10();
            let y = ((ly - ly_lo) / ly_span * (height - 1) as f64).round() as usize;
            let row = height - 1 - y.min(height - 1);
            grid[row][x.min(width - 1)] = glyph;
        }
    }

    let mut out = String::new();
    out.push_str(&format!("{} — {}\n", figure.id, figure.title));
    out.push_str(&format!(
        "p99 (us, log scale) {:>width$.1}\n",
        y_hi,
        width = 10
    ));
    for (i, row) in grid.iter().enumerate() {
        // Left gutter: y tick at top, middle, bottom.
        let tick = if i == 0 {
            format!("{:>9.1} |", y_hi)
        } else if i == height - 1 {
            format!("{:>9.1} |", y_lo)
        } else if i == height / 2 {
            let mid = 10f64.powf(ly_lo + ly_span / 2.0);
            format!("{:>9.1} |", mid)
        } else {
            format!("{:>9} |", "")
        };
        out.push_str(&tick);
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("{:>10} +{}\n", "", "-".repeat(width)));
    out.push_str(&format!(
        "{:>10}  {:<w2$}{:>w2$}\n",
        "",
        format!("{:.0}", x_lo),
        format!("{:.0} offered rps", x_hi),
        w2 = width / 2
    ));
    for (ci, c) in figure.curves.iter().enumerate() {
        out.push_str(&format!("  {} = {}\n", GLYPHS[ci % GLYPHS.len()], c.label));
    }
    out
}

fn bounds(v: &[f64]) -> (f64, f64) {
    let lo = v.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = v.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Curve;
    use sim_core::SimDuration;
    use workload::RunMetrics;

    fn metrics(offered: f64, p99_us: u64) -> RunMetrics {
        RunMetrics {
            offered_rps: offered,
            achieved_rps: offered,
            p50: SimDuration::from_micros(5),
            p99: SimDuration::from_micros(p99_us),
            p999: SimDuration::from_micros(p99_us * 2),
            p99_short: SimDuration::from_micros(p99_us),
            p99_long: SimDuration::from_micros(p99_us * 2),
            mean: SimDuration::from_micros(6),
            completed: 1000,
            dropped: 0,
            preemptions: 0,
            worker_utilization: 0.5,
            stages: None,
            faults: workload::FaultMetrics::default(),
        }
    }

    fn figure() -> Figure {
        Figure {
            id: "figX".into(),
            title: "test".into(),
            curves: vec![
                Curve {
                    label: "A".into(),
                    points: vec![metrics(1e5, 10), metrics(2e5, 15), metrics(3e5, 500)],
                },
                Curve {
                    label: "B".into(),
                    points: vec![metrics(1e5, 12), metrics(2e5, 13), metrics(3e5, 20)],
                },
            ],
        }
    }

    #[test]
    fn chart_contains_glyphs_and_legend() {
        let s = ascii(&figure(), 40, 12);
        assert!(s.contains('o'), "{s}");
        assert!(s.contains('x'), "{s}");
        assert!(s.contains("o = A"));
        assert!(s.contains("x = B"));
        assert!(s.contains("offered rps"));
    }

    #[test]
    fn exploding_tail_lands_on_the_top_row() {
        let s = ascii(&figure(), 40, 12);
        let rows: Vec<&str> = s.lines().collect();
        // Row index 2 is the top of the plot area (after two header lines).
        let top_plot_row = rows[2];
        assert!(
            top_plot_row.contains('o'),
            "the 500us point should be at the top: {s}"
        );
    }

    #[test]
    fn empty_figure_degrades_gracefully() {
        let f = Figure {
            id: "e".into(),
            title: "t".into(),
            curves: vec![],
        };
        assert!(ascii(&f, 40, 10).contains("no data"));
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_plot_area_rejected() {
        let _ = ascii(&figure(), 4, 2);
    }
}
