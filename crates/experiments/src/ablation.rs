//! Extension experiments: the §5.1 hardware-fix ablations and the §2.2
//! baseline-failure comparison.
//!
//! These go beyond the paper's measured figures and quantify its
//! *proposals*: what happens to the Figure 6 bottleneck when the packet
//! path becomes CXL, when the ARM pipeline becomes an ASIC, and what the
//! dispersion workload does to every §2.1 baseline at one fixed load.

use nicsched::{NicProfile, PolicySpec};
use sim_core::SimDuration;
use systems::baseline::{BaselineConfig, BaselineKind};
use systems::offload::OffloadConfig;
use systems::rpcvalet::RpcValetConfig;
use systems::shinjuku::ShinjukuConfig;
use workload::{ServiceDist, WorkloadSpec};

use crate::figures::Scale;
use crate::report::Figure;
use crate::sweep::{linspace, run_grid, GridCurve};

/// The ablation family's shared base spec (seed 11, figure windows).
fn spec(scale: Scale, offered: f64, dist: ServiceDist) -> WorkloadSpec {
    scale.spec_seeded(offered, dist, 11)
}

/// Resolve an optional `--policy` override to a concrete spec (the
/// paper's FCFS when absent) and tag curve labels accordingly.
fn policy_or_default(policy: Option<PolicySpec>) -> PolicySpec {
    policy.unwrap_or(PolicySpec::FCFS)
}

fn tagged(label: &str, policy: Option<PolicySpec>) -> String {
    match policy {
        Some(p) => format!("{label} [{p}]"),
        None => label.to_string(),
    }
}

/// **Ablation A (comm-path)** — the Figure 6 workload (fixed 1 µs, 16
/// workers, cap 5) on three §5.1 design points: the measured Stingray,
/// Stingray-with-CXL, and the ideal line-rate NIC. Quantifies how much of
/// the offload bottleneck is transport vs ARM compute.
pub fn comm_path(scale: Scale) -> Figure {
    comm_path_with(scale, None)
}

/// [`comm_path`] with an optional scheduler-policy override.
pub fn comm_path_with(scale: Scale, policy: Option<PolicySpec>) -> Figure {
    let base = spec(scale, 0.0, ServiceDist::Fixed(SimDuration::from_micros(1)));
    let loads = linspace(
        250_000.0,
        4_000_000.0,
        match scale {
            Scale::Quick => 6,
            Scale::Full => 16,
        },
    );
    let profile_curve = |label: &str, profile: NicProfile| {
        GridCurve::system(
            tagged(label, policy),
            OffloadConfig {
                time_slice: None,
                profile,
                policy: policy_or_default(policy),
                ..OffloadConfig::paper(16, 5)
            },
        )
    };
    Figure {
        id: "ablation_comm".into(),
        title: "fixed 1us, Offload 16w (cap 5): Stingray vs Stingray+CXL vs ideal NIC".into(),
        curves: run_grid(
            &loads,
            base,
            vec![
                profile_curve("Stingray", NicProfile::stingray()),
                profile_curve("Stingray-CXL", NicProfile::stingray_cxl()),
                profile_curve("Ideal-NIC", NicProfile::ideal()),
            ],
        ),
    }
}

/// **Ablation B (preemption path)** — bimodal workload with preemption via
/// worker-local Dune timers (the prototype) vs NIC-sent interrupt packets
/// (the design §3.4.4 rejects because of the 2.56 µs path).
pub fn preempt_path(scale: Scale) -> Figure {
    preempt_path_with(scale, None)
}

/// [`preempt_path`] with an optional scheduler-policy override.
pub fn preempt_path_with(scale: Scale, policy: Option<PolicySpec>) -> Figure {
    let base = spec(scale, 0.0, ServiceDist::paper_bimodal());
    let loads = linspace(
        50_000.0,
        550_000.0,
        match scale {
            Scale::Quick => 5,
            Scale::Full => 11,
        },
    );
    let profile_curve = |label: &str, profile: NicProfile| {
        GridCurve::system(
            tagged(label, policy),
            OffloadConfig {
                profile,
                policy: policy_or_default(policy),
                ..OffloadConfig::paper(4, 4)
            },
        )
    };
    Figure {
        id: "ablation_preempt".into(),
        title: "bimodal, Offload 4w (cap 4): local APIC timer vs packet-based preemption".into(),
        curves: run_grid(
            &loads,
            base,
            vec![
                profile_curve("Local-timer", NicProfile::stingray()),
                profile_curve("Packet-interrupt", NicProfile::stingray_packet_preemption()),
            ],
        ),
    }
}

/// **Baselines (§2.1/§2.2)** — the dispersion story at a sweep of loads:
/// RSS, RSS+stealing, Flow Director, Shinjuku, Shinjuku-Offload on the
/// bimodal workload, all with 4 worker cores (Shinjuku gets 3 + the
/// dispatcher core, matching the paper's accounting).
pub fn baselines(scale: Scale) -> Figure {
    let base = spec(scale, 0.0, ServiceDist::paper_bimodal());
    let loads = linspace(
        50_000.0,
        450_000.0,
        match scale {
            Scale::Quick => 5,
            Scale::Full => 9,
        },
    );
    let baseline = |label: &str, kind: BaselineKind| {
        GridCurve::system(label, BaselineConfig { workers: 4, kind })
    };
    Figure {
        id: "baselines".into(),
        title: "bimodal dispersion across scheduling designs (4 host cores)".into(),
        curves: run_grid(
            &loads,
            base,
            vec![
                baseline("RSS", BaselineKind::Rss),
                baseline("WorkStealing", BaselineKind::RssStealing),
                baseline("FlowDirector", BaselineKind::FlowDirector),
                GridCurve::system("RPCValet", RpcValetConfig { workers: 4 }),
                GridCurve::system("Shinjuku", ShinjukuConfig::paper(3)),
                GridCurve::system("Shinjuku-Offload", OffloadConfig::paper(4, 4)),
            ],
        ),
    }
}

/// **Ablation C (DDIO, §5.2)** — unloaded latency with classic LLC DDIO vs
/// the informed-scheduler L1 placement the paper proposes.
pub fn ddio(scale: Scale) -> Figure {
    ddio_with(scale, None)
}

/// [`ddio`] with an optional scheduler-policy override.
pub fn ddio_with(scale: Scale, policy: Option<PolicySpec>) -> Figure {
    let base = spec(scale, 0.0, ServiceDist::Fixed(SimDuration::from_micros(1)));
    let loads = linspace(
        50_000.0,
        800_000.0,
        match scale {
            Scale::Quick => 4,
            Scale::Full => 8,
        },
    );
    let with = |label: &str, ddio_l1: bool| {
        GridCurve::system(
            tagged(label, policy),
            OffloadConfig {
                time_slice: None,
                ddio_l1,
                policy: policy_or_default(policy),
                ..OffloadConfig::paper(4, 2)
            },
        )
    };
    Figure {
        id: "ablation_ddio".into(),
        title: "fixed 1us, Offload 4w (cap 2): LLC DDIO vs informed L1 placement (§5.2)".into(),
        curves: run_grid(
            &loads,
            base,
            vec![with("DDIO-LLC", false), with("DDIO-L1", true)],
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::peak_throughput;

    #[test]
    fn comm_path_ordering() {
        let f = comm_path(Scale::Quick);
        let stingray = peak_throughput(&f.curves[0].points);
        let cxl = peak_throughput(&f.curves[1].points);
        let ideal = peak_throughput(&f.curves[2].points);
        // CXL shortens the RTT but the ARM TX stage still binds; the ideal
        // NIC removes both.
        assert!(
            cxl >= stingray * 0.95,
            "cxl {cxl:.0} vs stingray {stingray:.0}"
        );
        assert!(
            ideal > stingray * 1.5,
            "ideal {ideal:.0} should crush stingray {stingray:.0}"
        );
    }

    #[test]
    fn packet_preemption_hurts_tail() {
        let f = preempt_path(Scale::Quick);
        let local = &f.curves[0].points;
        let packet = &f.curves[1].points;
        // Compare p99 at the highest common unsaturated load.
        let pair = local
            .iter()
            .zip(packet)
            .rfind(|(a, b)| !a.saturated(0.05) && !b.saturated(0.05));
        let (a, b) = pair.expect("at least one unsaturated point");
        assert!(
            b.p99 >= a.p99,
            "packet-based preemption should not beat local timers: {} vs {}",
            b.p99,
            a.p99
        );
    }

    #[test]
    fn baselines_show_the_dispersion_story() {
        let f = baselines(Scale::Quick);
        let find = |label: &str| &f.curves.iter().find(|c| c.label == label).unwrap().points;
        // At the mid load, run-to-completion RSS should have a far worse
        // tail than the centralized preemptive systems.
        let mid = f.curves[0].points.len() / 2;
        let rss = find("RSS")[mid].p99;
        let shin = find("Shinjuku")[mid].p99;
        let off = find("Shinjuku-Offload")[mid].p99;
        assert!(rss > shin, "rss {rss} vs shinjuku {shin}");
        assert!(rss > off, "rss {rss} vs offload {off}");
    }

    #[test]
    fn ddio_l1_is_never_slower() {
        let f = ddio(Scale::Quick);
        for (llc, l1) in f.curves[0].points.iter().zip(&f.curves[1].points) {
            if !llc.saturated(0.05) && !l1.saturated(0.05) {
                assert!(
                    l1.p50 <= llc.p50,
                    "L1 placement should not hurt median: {} vs {}",
                    l1.p50,
                    llc.p50
                );
            }
        }
    }
}
