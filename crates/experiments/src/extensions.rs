//! Extension experiments beyond the paper's measured figures, each
//! grounded in a specific claim of the text:
//!
//! * [`multi_dispatcher`] — §2.2(3): scaling Shinjuku past one dispatcher
//!   with RSS across dispatcher groups: throughput, imbalance, and the
//!   "8.33% of execution resources wasted" accounting.
//! * [`elastic_rss`] — §5.1(1): Elastic-RSS-style µs-scale core
//!   provisioning vs static RSS.
//! * [`slice_sweep`] — the 10 µs slice choice (§4.1): short-class tail vs
//!   slice length on the bimodal workload.
//! * [`policies`] — §5.1(4): programmable queue policies (FCFS vs
//!   shortest-remaining vs class-priority) on the same offloaded hardware.
//! * [`heavy_tail`] — §2.2(2): dispersion beyond bimodal (lognormal
//!   service times) across scheduling designs.

use nicsched::PolicySpec;
use sim_core::SimDuration;
use systems::baseline::{BaselineConfig, BaselineKind};
use systems::multi_shinjuku::{self, MultiShinjukuConfig};
use systems::offload::OffloadConfig;
use systems::rpcvalet::RpcValetConfig;
use systems::shinjuku::ShinjukuConfig;
use systems::{ProbeConfig, ServerSystem};
use workload::{ServiceDist, WorkloadSpec};

use crate::figures::Scale;
use crate::report::{Curve, Figure};
use crate::sweep::{linspace, par_map, run_grid, GridCurve};

/// The extension family's shared base spec: seed 17, and a slightly
/// shorter Full window (60 ms) than the paper figures — these suites run
/// many more curves.
fn spec(scale: Scale, offered: f64, dist: ServiceDist) -> WorkloadSpec {
    let mut s = scale.spec_seeded(offered, dist, 17);
    if scale == Scale::Full {
        s.measure = SimDuration::from_millis(60);
    }
    s
}

/// One row of the multi-dispatcher scaling table.
#[derive(Debug, Clone)]
pub struct MultiDispatchRow {
    /// Dispatcher groups.
    pub groups: usize,
    /// Workers per group.
    pub workers_per_group: usize,
    /// Saturated throughput (requests/second).
    pub achieved_rps: f64,
    /// Max/mean admitted requests across groups.
    pub imbalance: f64,
    /// Fraction of cores spent dispatching.
    pub overhead: f64,
}

/// §2.2(3): sweep dispatcher-group counts on a 32-core box under 1 µs
/// requests offered far beyond a single dispatcher's capacity.
pub fn multi_dispatcher(scale: Scale) -> Vec<MultiDispatchRow> {
    let dist = ServiceDist::Fixed(SimDuration::from_micros(1));
    // Just under the 10GbE frame-rate ceiling (~7.27M 64B-body requests/s),
    // so multi-group configurations stay distinguishable from the wire.
    let offered = 6_500_000.0;
    par_map(&[1usize, 2, 4, 8], |&groups| {
        let cfg = MultiShinjukuConfig {
            time_slice: None,
            ..MultiShinjukuConfig::split(32, groups)
        };
        let out =
            multi_shinjuku::run_probed(spec(scale, offered, dist), cfg, ProbeConfig::disabled());
        MultiDispatchRow {
            groups,
            workers_per_group: cfg.workers_per_group,
            achieved_rps: out.metrics.achieved_rps,
            imbalance: out.imbalance,
            overhead: cfg.dispatch_overhead_fraction(),
        }
    })
}

/// Render the multi-dispatcher rows as an aligned table.
pub fn multi_dispatcher_table(rows: &[MultiDispatchRow]) -> String {
    use std::fmt::Write;
    let mut out =
        String::from("## multi_dispatcher — fixed 1us on 32 cores, offered 6.5M RPS (§2.2(3))\n");
    let _ = writeln!(
        out,
        "{:>7} {:>9} {:>14} {:>10} {:>10}",
        "groups", "w/group", "achieved_rps", "imbalance", "overhead"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:>7} {:>9} {:>14.0} {:>10.3} {:>9.1}%",
            r.groups,
            r.workers_per_group,
            r.achieved_rps,
            r.imbalance,
            r.overhead * 100.0
        );
    }
    out
}

/// §5.1(1): Elastic RSS vs static RSS over a load sweep; reports the mean
/// provisioned cores per point.
pub fn elastic_rss(scale: Scale) -> (Figure, Vec<f64>) {
    let dist = ServiceDist::Fixed(SimDuration::from_micros(5));
    let loads = linspace(
        100_000.0,
        1_300_000.0,
        match scale {
            Scale::Quick => 4,
            Scale::Full => 7,
        },
    );
    let static_rss = par_map(&loads, |&rps| {
        BaselineConfig {
            workers: 8,
            kind: BaselineKind::Rss,
        }
        .run(spec(scale, rps, dist), ProbeConfig::disabled())
    });
    let (elastic, mean_active): (Vec<_>, Vec<_>) = par_map(&loads, |&rps| {
        systems::baseline::run_with_elastic(
            spec(scale, rps, dist),
            BaselineConfig {
                workers: 8,
                kind: BaselineKind::ElasticRss,
            },
        )
    })
    .into_iter()
    .unzip();
    (
        Figure {
            id: "ext_elastic_rss".into(),
            title: "fixed 5us, 8 cores: static RSS vs Elastic RSS (us-scale provisioning)".into(),
            curves: vec![
                Curve {
                    label: "RSS-static".into(),
                    points: static_rss,
                },
                Curve {
                    label: "Elastic-RSS".into(),
                    points: elastic,
                },
            ],
        },
        mean_active,
    )
}

/// §4.1's slice choice: short-class p99 on the bimodal workload as the
/// preemption slice sweeps from aggressive to off.
pub fn slice_sweep(scale: Scale) -> Figure {
    let dist = ServiceDist::paper_bimodal();
    let offered = 350_000.0;
    let slices: Vec<(&str, Option<SimDuration>)> = vec![
        ("2us", Some(SimDuration::from_micros(2))),
        ("5us", Some(SimDuration::from_micros(5))),
        ("10us", Some(SimDuration::from_micros(10))),
        ("20us", Some(SimDuration::from_micros(20))),
        ("50us", Some(SimDuration::from_micros(50))),
        ("off", None),
    ];
    let indexed: Vec<(usize, Option<SimDuration>)> = slices
        .iter()
        .enumerate()
        .map(|(i, (_, s))| (i, *s))
        .collect();
    let points = par_map(&indexed, |&(i, slice)| {
        let mut m = OffloadConfig {
            time_slice: slice,
            ..OffloadConfig::paper(4, 4)
        }
        .run(spec(scale, offered, dist), ProbeConfig::disabled());
        // x-axis: slice index (labels in the CSV carry the value).
        m.offered_rps = i as f64;
        m
    });
    Figure {
        id: "ext_slice_sweep".into(),
        title: "bimodal at 350k RPS, Offload 4w: slice length vs tail (x = slice index: 2/5/10/20/50/off)"
            .into(),
        curves: vec![Curve { label: "Offload".into(), points }],
    }
}

/// §5.1(4): the same offloaded hardware under three queue policies.
pub fn policies(scale: Scale) -> Figure {
    let base = spec(scale, 0.0, ServiceDist::paper_bimodal());
    let loads = linspace(
        100_000.0,
        550_000.0,
        match scale {
            Scale::Quick => 4,
            Scale::Full => 10,
        },
    );
    let with = |label: &str, policy: PolicySpec| {
        GridCurve::system(
            label,
            OffloadConfig {
                policy,
                ..OffloadConfig::paper(4, 4)
            },
        )
    };
    Figure {
        id: "ext_policies".into(),
        title: "bimodal, Offload 4w (cap 4): FCFS vs shortest-remaining vs class-priority".into(),
        curves: run_grid(
            &loads,
            base,
            vec![
                with("FCFS", PolicySpec::FCFS),
                with("SRF", PolicySpec::named("srf")),
                with("ClassPrio", PolicySpec::named("class-priority:cutoff=10us")),
            ],
        ),
    }
}

/// §2.2(2): a lognormal (sigma = 2) heavy-tail workload across designs.
pub fn heavy_tail(scale: Scale) -> Figure {
    let base = spec(
        scale,
        0.0,
        ServiceDist::Lognormal {
            mean: SimDuration::from_micros(10),
            sigma: 2.0,
        },
    );
    let loads = linspace(
        50_000.0,
        300_000.0,
        match scale {
            Scale::Quick => 4,
            Scale::Full => 6,
        },
    );
    Figure {
        id: "ext_heavy_tail".into(),
        title: "lognormal(mean 10us, sigma 2) across designs, 4 host cores".into(),
        curves: run_grid(
            &loads,
            base,
            vec![
                GridCurve::system(
                    "RSS",
                    BaselineConfig {
                        workers: 4,
                        kind: BaselineKind::Rss,
                    },
                ),
                GridCurve::system("Shinjuku", ShinjukuConfig::paper(3)),
                GridCurve::system("Shinjuku-Offload", OffloadConfig::paper(4, 4)),
            ],
        ),
    }
}

/// §1's multi-socket warning quantified: the Figure-2-style bimodal
/// workload on 8 workers — single socket, dual socket with load-blind
/// selection, and dual socket with the socket-aware selector.
pub fn dual_socket(scale: Scale) -> Figure {
    let mut base = spec(scale, 0.0, ServiceDist::Fixed(SimDuration::from_micros(2)));
    base.body_len = 1024; // big packets make the cache path visible
    let loads = linspace(
        100_000.0,
        1_200_000.0,
        match scale {
            Scale::Quick => 4,
            Scale::Full => 8,
        },
    );
    let with = |label: &str, dual: bool, aware: bool| {
        GridCurve::system(
            label,
            OffloadConfig {
                dual_socket: dual,
                socket_aware: aware,
                time_slice: None,
                ..OffloadConfig::paper(8, 2)
            },
        )
    };
    Figure {
        id: "ext_dual_socket".into(),
        title: "fixed 2us, 1KiB bodies, Offload 8w: single socket vs dual (blind) vs dual (socket-aware)"
            .into(),
        curves: run_grid(
            &loads,
            base,
            vec![
                with("Single-socket", false, false),
                with("Dual-blind", true, false),
                with("Dual-aware", true, true),
            ],
        ),
    }
}

/// §2.2(3)'s scalability claim as a curve: saturated throughput vs worker
/// count on 1 µs requests. The host Shinjuku dispatcher flattens near its
/// per-request budget ("the dispatcher can only scale to 5M requests,
/// i.e., about 11 worker cores"), the offloaded ARM dispatcher flattens
/// far earlier, and the RPCValet-style hardware queue tracks the workers
/// until the wire binds.
pub fn worker_scaling(scale: Scale) -> Figure {
    let dist = ServiceDist::Fixed(SimDuration::from_micros(1));
    let workers: Vec<f64> = match scale {
        Scale::Quick => vec![2.0, 6.0, 10.0, 16.0],
        Scale::Full => vec![2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 16.0, 20.0, 24.0],
    };
    let offered = 7_000_000.0; // just under the 10GbE frame rate
    let base = spec(scale, offered, dist);
    // x-axis carries the worker count; each point runs at the saturating
    // offered load and re-labels offered_rps for reporting.
    let relabel = |mut m: workload::RunMetrics, w: f64| {
        m.offered_rps = w;
        m
    };
    Figure {
        id: "ext_worker_scaling".into(),
        title: "fixed 1us, saturated throughput vs workers (x = workers): host vs ARM dispatcher vs hw queue"
            .into(),
        curves: run_grid(
            &workers,
            base,
            vec![
                GridCurve::new("Shinjuku", move |w, s| {
                    relabel(
                        ShinjukuConfig {
                            workers: w as usize,
                            time_slice: None,
                            ..ShinjukuConfig::paper(w as usize)
                        }
                        .run(s, ProbeConfig::disabled()),
                        w,
                    )
                }),
                GridCurve::new("Shinjuku-Offload", move |w, s| {
                    relabel(
                        OffloadConfig {
                            time_slice: None,
                            ..OffloadConfig::paper(w as usize, 5)
                        }
                        .run(s, ProbeConfig::disabled()),
                        w,
                    )
                }),
                GridCurve::new("RPCValet", move |w, s| {
                    relabel(
                        RpcValetConfig {
                            workers: w as usize,
                        }
                        .run(s, ProbeConfig::disabled()),
                        w,
                    )
                }),
            ],
        ),
    }
}

/// §5.2's congestion-control co-design: open-loop vs JIT-paced clients on
/// the bimodal workload, swept across (and past) capacity.
pub fn jit_pacing(scale: Scale) -> Figure {
    let base = spec(scale, 0.0, ServiceDist::paper_bimodal());
    let loads = linspace(
        200_000.0,
        900_000.0,
        match scale {
            Scale::Quick => 4,
            Scale::Full => 8,
        },
    );
    let with = |label: &str, jit: Option<u64>| {
        GridCurve::system(
            label,
            OffloadConfig {
                jit_target_depth: jit,
                ..OffloadConfig::paper(4, 4)
            },
        )
    };
    Figure {
        id: "ext_jit_pacing".into(),
        title: "bimodal, Offload 4w: open loop vs NIC-feedback JIT pacing (setpoint 16) (§5.2)"
            .into(),
        curves: run_grid(
            &loads,
            base,
            vec![with("Open-loop", None), with("JIT-paced", Some(16))],
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multi_dispatcher_scales_and_accounts() {
        let rows = multi_dispatcher(Scale::Quick);
        assert_eq!(rows.len(), 4);
        // One dispatcher is capped near 5M; more groups push beyond.
        assert!(
            rows[0].achieved_rps < 5_500_000.0,
            "1 group: {:.0}",
            rows[0].achieved_rps
        );
        // 4 groups serve the full 6.5M offered; one group is pinned at
        // its dispatcher's ~4.3M.
        assert!(
            rows[2].achieved_rps > rows[0].achieved_rps * 1.3,
            "4 groups {:.0} vs 1 group {:.0}",
            rows[2].achieved_rps,
            rows[0].achieved_rps
        );
        assert!(!rows[2].achieved_rps.is_nan());
        // Overhead grows with dispatcher count on a fixed-size box.
        assert!(rows[3].overhead > rows[0].overhead);
        let table = multi_dispatcher_table(&rows);
        assert!(table.contains("groups"));
    }

    #[test]
    fn elastic_rss_tracks_load() {
        let (fig, active) = elastic_rss(Scale::Quick);
        assert_eq!(fig.curves.len(), 2);
        assert!(
            active.first().unwrap() < active.last().unwrap(),
            "provisioning must grow with load: {active:?}"
        );
    }

    #[test]
    fn slice_sweep_shows_the_tradeoff() {
        let f = slice_sweep(Scale::Quick);
        let pts = &f.curves[0].points;
        // No preemption (last point) must have the worst short-class tail.
        let off = pts.last().unwrap().p99_short;
        let ten_us = pts[2].p99_short;
        assert!(
            off > ten_us,
            "slice off ({off}) should beat 10us ({ten_us}) for worst short-class tail"
        );
    }

    #[test]
    fn srf_policy_protects_shorts() {
        let f = policies(Scale::Quick);
        let fcfs = &f.curves[0].points;
        let srf = &f.curves[1].points;
        let last = fcfs.len() - 1;
        assert!(
            srf[last].p99_short <= fcfs[last].p99_short,
            "SRF should not worsen the short-class tail: {} vs {}",
            srf[last].p99_short,
            fcfs[last].p99_short
        );
    }

    #[test]
    fn worker_scaling_shapes() {
        let f = worker_scaling(Scale::Quick);
        let shin = &f.curves[0].points;
        let off = &f.curves[1].points;
        let valet = &f.curves[2].points;
        // The offload flattens at the ARM TX cap regardless of workers.
        let last = off.len() - 1;
        assert!(
            (off[last].achieved_rps - off[1].achieved_rps).abs() / off[1].achieved_rps < 0.1,
            "offload should be flat past a few workers"
        );
        // Shinjuku scales further than the offload but flattens below the
        // hardware queue.
        assert!(shin[last].achieved_rps > off[last].achieved_rps * 1.5);
        assert!(valet[last].achieved_rps > shin[last].achieved_rps);
    }

    #[test]
    fn jit_tames_overload() {
        let f = jit_pacing(Scale::Quick);
        let open_last = f.curves[0].points.last().unwrap();
        let jit_last = f.curves[1].points.last().unwrap();
        assert!(
            jit_last.p99 < open_last.p99,
            "JIT must bound the overload tail: {} vs {}",
            jit_last.p99,
            open_last.p99
        );
    }

    #[test]
    fn dual_socket_ordering() {
        let f = dual_socket(Scale::Quick);
        // At the lightest load: single <= aware <= blind on median latency.
        let single = f.curves[0].points[0].p50;
        let blind = f.curves[1].points[0].p50;
        let aware = f.curves[2].points[0].p50;
        assert!(single <= aware, "single {single} vs aware {aware}");
        assert!(aware <= blind, "aware {aware} vs blind {blind}");
    }

    #[test]
    fn heavy_tail_story_holds() {
        let f = heavy_tail(Scale::Quick);
        let mid = f.curves[0].points.len() - 1;
        let rss = f.curves[0].points[mid].p99;
        let off = f.curves[2].points[mid].p99;
        assert!(
            rss > off,
            "run-to-completion must trail centralized preemption on heavy tails: {rss} vs {off}"
        );
    }
}
