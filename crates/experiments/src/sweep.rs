//! Load-sweep driver: run one system over a range of offered loads, in
//! parallel across load points, preserving per-point determinism.

use sim_core::stats::Summary;
use workload::{FaultMetrics, RunMetrics, WorkloadSpec};

/// Run `f` for every load in `loads_rps`, in parallel, returning results
/// in input order. Each point is an independent, seeded simulation, so
/// parallelism does not perturb results.
pub fn sweep<F>(loads_rps: &[f64], f: F) -> Vec<RunMetrics>
where
    F: Fn(f64) -> RunMetrics + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mut results: Vec<Option<RunMetrics>> = (0..loads_rps.len()).map(|_| None).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results_mx = std::sync::Mutex::new(&mut results);

    std::thread::scope(|scope| {
        for _ in 0..threads.min(loads_rps.len()) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= loads_rps.len() {
                    break;
                }
                let m = f(loads_rps[i]);
                results_mx.lock().unwrap()[i] = Some(m);
            });
        }
    });

    results
        .into_iter()
        .map(|r| r.expect("all points computed"))
        .collect()
}

/// Replication across seeds: run `f` on `spec` under `n_seeds` distinct
/// seeds (derived from `spec.seed`), returning the seed-averaged metrics
/// plus the coefficient of variation of the p99 — the error bar a careful
/// reproduction reports. Percentile averaging across replicas is the
/// standard display convention; the CV tells you when it is hiding
/// variance.
pub fn replicate<F>(spec: WorkloadSpec, n_seeds: u64, f: F) -> (RunMetrics, f64)
where
    F: Fn(WorkloadSpec) -> RunMetrics + Sync,
{
    assert!(n_seeds >= 1, "need at least one replica");
    let seeds: Vec<f64> = (0..n_seeds).map(|i| i as f64).collect();
    let runs = sweep(&seeds, |i| {
        let mut s = spec;
        s.seed = spec
            .seed
            .wrapping_add(i as u64)
            .wrapping_mul(0x9E37_79B9)
            .max(1);
        f(s)
    });
    let mut achieved = Summary::new();
    let mut p50 = Summary::new();
    let mut p99 = Summary::new();
    let mut p999 = Summary::new();
    let mut mean_l = Summary::new();
    let mut util = Summary::new();
    let mut completed = 0u64;
    let mut dropped = 0u64;
    let mut preemptions = 0u64;
    let mut faults = FaultMetrics::default();
    for m in &runs {
        faults.absorb(&m.faults);
        achieved.record(m.achieved_rps);
        p50.record(m.p50.as_nanos() as f64);
        p99.record(m.p99.as_nanos() as f64);
        p999.record(m.p999.as_nanos() as f64);
        mean_l.record(m.mean.as_nanos() as f64);
        util.record(m.worker_utilization);
        completed += m.completed;
        dropped += m.dropped;
        preemptions += m.preemptions;
    }
    let d = |s: &Summary| sim_core::SimDuration::from_nanos(s.mean() as u64);
    let cv = if p99.mean() > 0.0 {
        p99.std_dev() / p99.mean()
    } else {
        0.0
    };
    (
        RunMetrics {
            offered_rps: spec.offered_rps,
            achieved_rps: achieved.mean(),
            p50: d(&p50),
            p99: d(&p99),
            p999: d(&p999),
            p99_short: runs[0].p99_short,
            p99_long: runs[0].p99_long,
            mean: d(&mean_l),
            completed,
            dropped,
            preemptions,
            worker_utilization: util.mean(),
            stages: None,
            faults,
        },
        cv,
    )
}

/// Evenly spaced loads from `lo` to `hi` inclusive, `n >= 2` points.
pub fn linspace(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(n >= 2, "need at least two points");
    (0..n)
        .map(|i| lo + (hi - lo) * i as f64 / (n - 1) as f64)
        .collect()
}

/// The highest achieved throughput across a sweep (the "plateau" value
/// plotted by Figure 3 style experiments).
pub fn peak_throughput(results: &[RunMetrics]) -> f64 {
    results.iter().map(|m| m.achieved_rps).fold(0.0, f64::max)
}

/// The knee of a latency-throughput curve: the highest offered load whose
/// p99 stays at or below `slo` and which is not saturated. Returns the
/// achieved throughput at that point, or 0 if every point violates.
pub fn knee_throughput(results: &[RunMetrics], slo: sim_core::SimDuration) -> f64 {
    results
        .iter()
        .filter(|m| m.p99 <= slo && !m.saturated(0.03))
        .map(|m| m.achieved_rps)
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::SimDuration;

    fn fake(offered: f64) -> RunMetrics {
        RunMetrics {
            offered_rps: offered,
            achieved_rps: offered.min(1000.0),
            p50: SimDuration::from_micros(5),
            p99: SimDuration::from_micros(if offered > 800.0 { 500 } else { 20 }),
            p999: SimDuration::from_micros(40),
            p99_short: SimDuration::from_micros(15),
            p99_long: SimDuration::from_micros(40),
            mean: SimDuration::from_micros(8),
            completed: offered as u64,
            dropped: 0,
            preemptions: 0,
            worker_utilization: 0.5,
            stages: None,
            faults: FaultMetrics::default(),
        }
    }

    #[test]
    fn sweep_preserves_order() {
        let loads = linspace(100.0, 1000.0, 10);
        let results = sweep(&loads, fake);
        assert_eq!(results.len(), 10);
        for (l, m) in loads.iter().zip(&results) {
            assert_eq!(m.offered_rps, *l);
        }
    }

    #[test]
    fn linspace_endpoints() {
        let xs = linspace(0.0, 100.0, 5);
        assert_eq!(xs, vec![0.0, 25.0, 50.0, 75.0, 100.0]);
    }

    #[test]
    fn peak_and_knee() {
        let results = sweep(&linspace(100.0, 2000.0, 20), fake);
        assert_eq!(peak_throughput(&results), 1000.0);
        let knee = knee_throughput(&results, SimDuration::from_micros(100));
        assert!(knee <= 800.0 && knee > 0.0, "knee {knee}");
    }

    #[test]
    #[should_panic(expected = "two points")]
    fn linspace_rejects_degenerate() {
        let _ = linspace(0.0, 1.0, 1);
    }

    #[test]
    fn replication_averages_and_reports_cv() {
        use sim_core::SimDuration;
        use systems::{ProbeConfig, ServerSystem};
        use workload::ServiceDist;
        let spec = WorkloadSpec {
            offered_rps: 150_000.0,
            dist: ServiceDist::paper_bimodal(),
            body_len: 64,
            warmup: SimDuration::from_millis(1),
            measure: SimDuration::from_millis(8),
            seed: 5,
        };
        let (m, cv) = replicate(spec, 4, |s| {
            systems::offload::OffloadConfig::paper(4, 4).run(s, ProbeConfig::disabled())
        });
        assert!(m.completed > 3000, "all replicas contribute completions");
        assert!(!m.saturated(0.05), "{}", m.row());
        assert!(
            (0.0..0.5).contains(&cv),
            "p99 CV {cv} should be modest at light load"
        );
        // Replication is itself deterministic.
        let (m2, cv2) = replicate(spec, 4, |s| {
            systems::offload::OffloadConfig::paper(4, 4).run(s, ProbeConfig::disabled())
        });
        assert_eq!(m.p99, m2.p99);
        assert_eq!(cv, cv2);
    }
}
