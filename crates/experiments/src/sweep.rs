//! Load-sweep driver: run one system over a range of offered loads, in
//! parallel across load points, preserving per-point determinism.
//!
//! # Parallelism model
//!
//! Every grid point is one independent, seeded simulation — the engine
//! itself is strictly single-threaded (see `sim_core::queue`), so fanning
//! points across host cores cannot perturb results. The pool here is a
//! dependency-free `std::thread::scope` work-stealing loop: an atomic
//! cursor hands out point indices, results land in their input slot, and
//! output order is always input order. The worker count is process-global
//! (every figure function funnels through [`par_map`]), set by the
//! `--jobs N` flag on each experiment binary via [`init_jobs_from_args`]:
//! `--jobs 1` runs inline on the calling thread — no pool at all — and by
//! construction produces byte-identical output to any other `--jobs`
//! value; the default is the host's available parallelism.

use std::sync::atomic::{AtomicUsize, Ordering};

use sim_core::stats::Summary;
use systems::ServerSystem;
use workload::{FaultMetrics, RunMetrics, WorkloadSpec};

use crate::report::Curve;

/// Configured worker count; 0 means "auto" (available parallelism).
static JOBS: AtomicUsize = AtomicUsize::new(0);

/// Set the sweep worker count for this process. `0` restores the default
/// (one worker per available core). `1` disables the pool entirely.
pub fn set_jobs(n: usize) {
    JOBS.store(n, Ordering::Relaxed);
}

/// The effective sweep worker count.
pub fn jobs() -> usize {
    match JOBS.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4),
        n => n,
    }
}

/// Parse `--jobs N` / `--jobs=N` from the process arguments and install
/// it via [`set_jobs`]; returns the effective worker count. Every
/// experiment binary calls this first. Unparsable values are ignored
/// (auto remains in effect) rather than aborting a long sweep over a
/// typo'd flag nobody needs for correctness.
pub fn init_jobs_from_args() -> usize {
    let args: Vec<String> = std::env::args().collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let val = if a == "--jobs" {
            it.next().cloned()
        } else {
            a.strip_prefix("--jobs=").map(str::to_string)
        };
        if let Some(n) = val.and_then(|v| v.parse::<usize>().ok()) {
            set_jobs(n);
        }
    }
    jobs()
}

/// Parse `--policy <spec>` / `--policy=<spec>` from `args` using the
/// scheduler registry grammar (`srpt`, `edf:deadline=50us`,
/// `wfq:w=4,1,1`, ...). Returns `None` when the flag is absent. Unlike
/// `--jobs`, a malformed spec aborts the process: silently sweeping the
/// default policy when the user asked for another would corrupt results.
pub fn policy_from_args(args: &[String]) -> Option<nicsched::PolicySpec> {
    let mut found = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let val = if a == "--policy" {
            it.next().cloned()
        } else {
            a.strip_prefix("--policy=").map(str::to_string)
        };
        if let Some(v) = val {
            match nicsched::PolicySpec::parse(&v) {
                Ok(spec) => found = Some(spec),
                Err(e) => {
                    eprintln!("invalid --policy {v:?}: {e}");
                    eprintln!(
                        "known policies: {}",
                        nicsched::PolicyRegistry::standard().names().join(", ")
                    );
                    std::process::exit(2);
                }
            }
        }
    }
    found
}

/// [`policy_from_args`] over this process's own arguments.
pub fn init_policy_from_args() -> Option<nicsched::PolicySpec> {
    let args: Vec<String> = std::env::args().collect();
    policy_from_args(&args)
}

/// Map `f` over `items` on the sweep pool, returning results in input
/// order. With an effective job count of 1 (or a single item) this runs
/// inline on the calling thread; either way the output is identical,
/// because every item is computed independently.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = jobs().min(items.len());
    if threads <= 1 {
        return items.iter().map(f).collect();
    }
    let mut results: Vec<Option<R>> = items.iter().map(|_| None).collect();
    let next = AtomicUsize::new(0);
    let results_mx = std::sync::Mutex::new(&mut results);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(&items[i]);
                results_mx.lock().unwrap()[i] = Some(r);
            });
        }
    });

    results
        .into_iter()
        .map(|r| r.expect("all points computed"))
        .collect()
}

/// Run `f` for every load in `loads_rps`, in parallel, returning results
/// in input order. Each point is an independent, seeded simulation, so
/// parallelism does not perturb results.
pub fn sweep<F>(loads_rps: &[f64], f: F) -> Vec<RunMetrics>
where
    F: Fn(f64) -> RunMetrics + Sync,
{
    par_map(loads_rps, |&l| f(l))
}

/// One labelled curve of a [`run_grid`] call: a closure from `(x, base
/// spec)` to metrics.
pub struct GridCurve<'a> {
    /// Curve label for tables and CSV.
    pub label: String,
    /// Per-point runner; receives the grid x-value and the figure's
    /// shared base spec.
    pub run: Box<dyn Fn(f64, WorkloadSpec) -> RunMetrics + Sync + 'a>,
}

impl<'a> GridCurve<'a> {
    /// A curve from an arbitrary per-point closure (for grids whose x
    /// axis is not offered load, e.g. Figure 3's outstanding cap).
    pub fn new<F>(label: impl Into<String>, run: F) -> Self
    where
        F: Fn(f64, WorkloadSpec) -> RunMetrics + Sync + 'a,
    {
        GridCurve {
            label: label.into(),
            run: Box::new(run),
        }
    }

    /// The common case: one assembly, probes off, x = offered load.
    pub fn system(label: impl Into<String>, sys: impl ServerSystem + Sync + 'a) -> Self {
        GridCurve::new(label, move |rps, base: WorkloadSpec| {
            sys.run(base.at(rps), sim_core::ProbeConfig::disabled())
        })
    }
}

/// Run several labelled curves over one x-grid as a single flattened
/// parallel batch, returning [`Curve`]s in the given order with points in
/// x order. This is the shared body of every figure and ablation grid:
/// the `WorkloadSpec` is constructed once per figure (warmup, windows,
/// distribution, seed) and only the per-point load is derived, and the
/// curves×points matrix saturates the pool even when a single curve has
/// fewer points than workers.
pub fn run_grid(xs: &[f64], base: WorkloadSpec, curves: Vec<GridCurve<'_>>) -> Vec<Curve> {
    let points: Vec<(usize, f64)> = curves
        .iter()
        .enumerate()
        .flat_map(|(c, _)| xs.iter().map(move |&x| (c, x)))
        .collect();
    let mut metrics = par_map(&points, |&(c, x)| (curves[c].run)(x, base)).into_iter();
    curves
        .into_iter()
        .map(|c| Curve {
            label: c.label,
            points: metrics.by_ref().take(xs.len()).collect(),
        })
        .collect()
}

/// Replication across seeds: run `f` on `spec` under `n_seeds` distinct
/// seeds (derived from `spec.seed`), returning the seed-averaged metrics
/// plus the coefficient of variation of the p99 — the error bar a careful
/// reproduction reports. Percentile averaging across replicas is the
/// standard display convention; the CV tells you when it is hiding
/// variance.
pub fn replicate<F>(spec: WorkloadSpec, n_seeds: u64, f: F) -> (RunMetrics, f64)
where
    F: Fn(WorkloadSpec) -> RunMetrics + Sync,
{
    assert!(n_seeds >= 1, "need at least one replica");
    let seeds: Vec<f64> = (0..n_seeds).map(|i| i as f64).collect();
    let runs = sweep(&seeds, |i| {
        let mut s = spec;
        s.seed = spec
            .seed
            .wrapping_add(i as u64)
            .wrapping_mul(0x9E37_79B9)
            .max(1);
        f(s)
    });
    let mut achieved = Summary::new();
    let mut p50 = Summary::new();
    let mut p99 = Summary::new();
    let mut p999 = Summary::new();
    let mut mean_l = Summary::new();
    let mut util = Summary::new();
    let mut completed = 0u64;
    let mut dropped = 0u64;
    let mut preemptions = 0u64;
    let mut faults = FaultMetrics::default();
    for m in &runs {
        faults.absorb(&m.faults);
        achieved.record(m.achieved_rps);
        p50.record(m.p50.as_nanos() as f64);
        p99.record(m.p99.as_nanos() as f64);
        p999.record(m.p999.as_nanos() as f64);
        mean_l.record(m.mean.as_nanos() as f64);
        util.record(m.worker_utilization);
        completed += m.completed;
        dropped += m.dropped;
        preemptions += m.preemptions;
    }
    let d = |s: &Summary| sim_core::SimDuration::from_nanos(s.mean() as u64);
    let cv = if p99.mean() > 0.0 {
        p99.std_dev() / p99.mean()
    } else {
        0.0
    };
    (
        RunMetrics {
            offered_rps: spec.offered_rps,
            achieved_rps: achieved.mean(),
            p50: d(&p50),
            p99: d(&p99),
            p999: d(&p999),
            p99_short: runs[0].p99_short,
            p99_long: runs[0].p99_long,
            mean: d(&mean_l),
            completed,
            dropped,
            preemptions,
            worker_utilization: util.mean(),
            stages: None,
            faults,
        },
        cv,
    )
}

/// Evenly spaced loads from `lo` to `hi` inclusive, `n >= 2` points.
pub fn linspace(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(n >= 2, "need at least two points");
    (0..n)
        .map(|i| lo + (hi - lo) * i as f64 / (n - 1) as f64)
        .collect()
}

/// The highest achieved throughput across a sweep (the "plateau" value
/// plotted by Figure 3 style experiments).
pub fn peak_throughput(results: &[RunMetrics]) -> f64 {
    results.iter().map(|m| m.achieved_rps).fold(0.0, f64::max)
}

/// The knee of a latency-throughput curve: the highest offered load whose
/// p99 stays at or below `slo` and which is not saturated. Returns the
/// achieved throughput at that point, or 0 if every point violates.
pub fn knee_throughput(results: &[RunMetrics], slo: sim_core::SimDuration) -> f64 {
    results
        .iter()
        .filter(|m| m.p99 <= slo && !m.saturated(0.03))
        .map(|m| m.achieved_rps)
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::SimDuration;

    fn fake(offered: f64) -> RunMetrics {
        RunMetrics {
            offered_rps: offered,
            achieved_rps: offered.min(1000.0),
            p50: SimDuration::from_micros(5),
            p99: SimDuration::from_micros(if offered > 800.0 { 500 } else { 20 }),
            p999: SimDuration::from_micros(40),
            p99_short: SimDuration::from_micros(15),
            p99_long: SimDuration::from_micros(40),
            mean: SimDuration::from_micros(8),
            completed: offered as u64,
            dropped: 0,
            preemptions: 0,
            worker_utilization: 0.5,
            stages: None,
            faults: FaultMetrics::default(),
        }
    }

    #[test]
    fn sweep_preserves_order() {
        let loads = linspace(100.0, 1000.0, 10);
        let results = sweep(&loads, fake);
        assert_eq!(results.len(), 10);
        for (l, m) in loads.iter().zip(&results) {
            assert_eq!(m.offered_rps, *l);
        }
    }

    #[test]
    fn par_map_is_input_ordered_for_any_job_count() {
        let items: Vec<u64> = (0..97).collect();
        let expect: Vec<u64> = items.iter().map(|i| i * 3 + 1).collect();
        // The global job count races with concurrently running tests by
        // design; every setting must yield the same (ordered) output.
        for jobs in [1, 2, 4, 13, 0] {
            set_jobs(jobs);
            assert_eq!(par_map(&items, |&i| i * 3 + 1), expect, "jobs {jobs}");
        }
        set_jobs(0);
    }

    #[test]
    fn run_grid_matches_per_curve_sweeps() {
        let xs = linspace(100.0, 900.0, 7);
        let base = WorkloadSpec::new(
            0.0,
            workload::ServiceDist::Fixed(SimDuration::from_micros(1)),
        );
        let curves = run_grid(
            &xs,
            base,
            vec![
                GridCurve::new("a", |x, _| fake(x)),
                GridCurve::new("b", |x, _| fake(x * 2.0)),
            ],
        );
        assert_eq!(curves.len(), 2);
        assert_eq!(curves[0].label, "a");
        assert_eq!(curves[1].label, "b");
        for (x, m) in xs.iter().zip(&curves[0].points) {
            assert_eq!(m.offered_rps, *x);
        }
        for (x, m) in xs.iter().zip(&curves[1].points) {
            assert_eq!(m.offered_rps, *x * 2.0);
        }
    }

    #[test]
    fn linspace_endpoints() {
        let xs = linspace(0.0, 100.0, 5);
        assert_eq!(xs, vec![0.0, 25.0, 50.0, 75.0, 100.0]);
    }

    #[test]
    fn peak_and_knee() {
        let results = sweep(&linspace(100.0, 2000.0, 20), fake);
        assert_eq!(peak_throughput(&results), 1000.0);
        let knee = knee_throughput(&results, SimDuration::from_micros(100));
        assert!(knee <= 800.0 && knee > 0.0, "knee {knee}");
    }

    #[test]
    #[should_panic(expected = "two points")]
    fn linspace_rejects_degenerate() {
        let _ = linspace(0.0, 1.0, 1);
    }

    #[test]
    fn replication_averages_and_reports_cv() {
        use sim_core::SimDuration;
        use systems::{ProbeConfig, ServerSystem};
        use workload::ServiceDist;
        let spec = WorkloadSpec {
            offered_rps: 150_000.0,
            dist: ServiceDist::paper_bimodal(),
            body_len: 64,
            warmup: SimDuration::from_millis(1),
            measure: SimDuration::from_millis(8),
            seed: 5,
        };
        let (m, cv) = replicate(spec, 4, |s| {
            systems::offload::OffloadConfig::paper(4, 4).run(s, ProbeConfig::disabled())
        });
        assert!(m.completed > 3000, "all replicas contribute completions");
        assert!(!m.saturated(0.05), "{}", m.row());
        assert!(
            (0.0..0.5).contains(&cv),
            "p99 CV {cv} should be modest at light load"
        );
        // Replication is itself deterministic.
        let (m2, cv2) = replicate(spec, 4, |s| {
            systems::offload::OffloadConfig::paper(4, 4).run(s, ProbeConfig::disabled())
        });
        assert_eq!(m.p99, m2.p99);
        assert_eq!(cv, cv2);
    }
}
