//! The titular experiment: how much does the *gap* — the latency of the
//! core-status feedback path — cost the scheduler?
//!
//! §2.3 argues that existing NIC offload frameworks lack exactly one
//! abstraction: fine-grained core feedback. §3.1's ideal SmartNIC has a
//! coherent-memory path for it; the Stingray's is a 2.56 µs packet. This
//! experiment isolates that variable with a minimal model: `W` workers,
//! fixed service times, and a zero-cost dispatcher that assigns each
//! arrival to the worker that looks least loaded *according to a
//! [`FeedbackChannel`] with configurable one-way latency*. Workers report
//! occupancy on every change. Everything else — arrival process, service
//! times, worker speed — is held constant, so any difference between
//! curves is purely the staleness of the scheduler's information.
//!
//! The expected shape: with nanosecond feedback the dispatcher balances
//! perfectly; as the gap approaches and passes the service time, arrivals
//! herd onto workers that *looked* idle a round-trip ago, manufacturing
//! imbalance and queueing that the hardware never required.

use nicsched::{CoreFeedback, FeedbackChannel};
use sim_core::stats::Histogram;
use sim_core::{Ctx, Engine, Model, Probe, ProbeConfig, Rng, SimDuration, SimTime};
use workload::{ArrivalGen, ArrivalProcess};

use crate::figures::Scale;

/// One row of the feedback-gap table.
#[derive(Debug, Clone)]
pub struct GapRow {
    /// Human label of the feedback path.
    pub path: &'static str,
    /// One-way feedback latency.
    pub latency: SimDuration,
    /// p99 sojourn of served tasks.
    pub p99: SimDuration,
    /// Mean sojourn.
    pub mean: SimDuration,
    /// Peak depth of any single worker queue (imbalance witness).
    pub peak_worker_queue: usize,
    /// Mean worst-case staleness of the dispatcher's view at decision
    /// time, measured by the probe layer (≥ the one-way latency).
    pub mean_staleness: SimDuration,
}

enum Ev {
    Arrive,
    WorkerDone(usize),
}

struct GapModel {
    arrivals: ArrivalGen,
    service: SimDuration,
    horizon: SimTime,
    channel: FeedbackChannel,
    /// True queue depth per worker (occupancy the dispatcher cannot see).
    depth: Vec<u32>,
    /// Sojourn start timestamps per worker, FIFO.
    queued_at: Vec<std::collections::VecDeque<SimTime>>,
    sojourn: Histogram,
    peak: usize,
}

impl GapModel {
    fn report(&mut self, now: SimTime, w: usize) {
        let occupancy = self.depth[w];
        self.channel.send(
            now,
            CoreFeedback {
                worker: w,
                occupancy,
                busy: occupancy > 0,
                reported_at: now,
            },
        );
    }

    /// The dispatcher's choice: least-loaded according to the *stale* view.
    fn choose(&mut self, now: SimTime) -> usize {
        let mut best = 0;
        let mut best_seen = u32::MAX;
        for w in 0..self.depth.len() {
            let seen = self.channel.view(now, w).map(|f| f.occupancy).unwrap_or(0);
            if seen < best_seen {
                best_seen = seen;
                best = w;
            }
        }
        best
    }
}

impl Model for GapModel {
    type Event = Ev;

    fn handle(&mut self, event: Ev, ctx: &mut Ctx<'_, Ev>) {
        match event {
            Ev::Arrive => {
                if ctx.now() < self.horizon {
                    let gap = self.arrivals.next_gap();
                    ctx.schedule_in(gap, Ev::Arrive);
                }
                let w = self.choose(ctx.now());
                // The dispatcher just acted on its stale view: surface how
                // out-of-date that view was, and how much of the picture
                // is still in transit.
                let staleness = self.channel.worst_staleness(ctx.now());
                let undelivered = self.channel.in_flight();
                if let Some(s) = staleness {
                    ctx.probe().hop("feedback.staleness", s);
                }
                ctx.probe().depth("feedback.in_flight", undelivered);
                self.depth[w] += 1;
                self.peak = self.peak.max(self.depth[w] as usize);
                ctx.probe().depth_i("gap.worker", w, self.depth[w] as usize);
                self.queued_at[w].push_back(ctx.now());
                self.report(ctx.now(), w);
                if self.depth[w] == 1 {
                    ctx.schedule_in(self.service, Ev::WorkerDone(w));
                }
            }
            Ev::WorkerDone(w) => {
                let started = self.queued_at[w].pop_front().expect("queued task");
                self.sojourn
                    .record(ctx.now().duration_since(started).as_nanos());
                self.depth[w] -= 1;
                self.report(ctx.now(), w);
                if self.depth[w] > 0 {
                    ctx.schedule_in(self.service, Ev::WorkerDone(w));
                }
            }
        }
    }
}

/// Run the isolation experiment across the §3/§5 feedback paths.
pub fn run(scale: Scale) -> Vec<GapRow> {
    let paths: Vec<(&'static str, SimDuration)> = vec![
        (
            "coherent memory (ideal, ~120ns)",
            SimDuration::from_nanos(120),
        ),
        ("CXL-class link (~400ns)", SimDuration::from_nanos(400)),
        (
            "Stingray packet path (2.56us)",
            SimDuration::from_nanos(2_560),
        ),
        ("coarse feedback (10us)", SimDuration::from_micros(10)),
        ("very coarse feedback (50us)", SimDuration::from_micros(50)),
    ];
    let horizon = match scale {
        Scale::Quick => SimTime::from_millis(20),
        Scale::Full => SimTime::from_millis(200),
    };
    let workers = 8;
    let service = SimDuration::from_micros(2);
    // rho = 0.8 across 8 workers.
    let rate = 0.8 * workers as f64 / service.as_secs_f64();

    paths
        .into_iter()
        .map(|(path, latency)| {
            let mut model = GapModel {
                arrivals: ArrivalGen::new(ArrivalProcess::Poisson { rate_rps: rate }, Rng::new(99)),
                service,
                horizon,
                channel: FeedbackChannel::new(workers, latency),
                depth: vec![0; workers],
                queued_at: vec![std::collections::VecDeque::new(); workers],
                sojourn: Histogram::latency(),
                peak: 0,
            };
            // Prime the dispatcher's view so `choose` has data.
            for w in 0..workers {
                model.report(SimTime::ZERO, w);
            }
            let mut engine = Engine::new(model);
            engine.set_probe(Probe::new(ProbeConfig::enabled()));
            engine.schedule_at(SimTime::ZERO, Ev::Arrive);
            engine.run();
            let report = engine.probe_mut().report(horizon);
            let mean_staleness = report
                .hop("feedback.staleness")
                .map(|h| h.mean)
                .unwrap_or(SimDuration::ZERO);
            let m = engine.model();
            GapRow {
                path,
                latency,
                p99: SimDuration::from_nanos(m.sojourn.p99().unwrap_or(0)),
                mean: SimDuration::from_nanos(m.sojourn.mean() as u64),
                peak_worker_queue: m.peak,
                mean_staleness,
            }
        })
        .collect()
}

/// Render rows as an aligned table.
pub fn table(rows: &[GapRow]) -> String {
    use std::fmt::Write;
    let mut out = String::from(
        "## feedback_gap — 8 workers, fixed 2us, rho 0.8: scheduling quality vs feedback latency\n",
    );
    let _ = writeln!(
        out,
        "{:<36} {:>10} {:>10} {:>10} {:>10} {:>12}",
        "feedback path", "one-way", "mean", "p99", "peak q", "staleness"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<36} {:>10} {:>10} {:>10} {:>10} {:>12}",
            r.path,
            r.latency.to_string(),
            r.mean.to_string(),
            r.p99.to_string(),
            r.peak_worker_queue,
            r.mean_staleness.to_string()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staleness_degrades_scheduling_monotonically_at_the_ends() {
        let rows = run(Scale::Quick);
        assert_eq!(rows.len(), 5);
        let coherent = &rows[0];
        let stingray = &rows[2];
        let coarse = &rows[4];
        // The gap costs tail latency: fresh info beats 2.56us beats 50us.
        assert!(
            coherent.p99 <= stingray.p99,
            "coherent {} vs stingray {}",
            coherent.p99,
            stingray.p99
        );
        assert!(
            stingray.p99 < coarse.p99,
            "stingray {} vs coarse {}",
            stingray.p99,
            coarse.p99
        );
        // And it manufactures imbalance (herding).
        assert!(coarse.peak_worker_queue > coherent.peak_worker_queue);
    }

    #[test]
    fn measured_staleness_is_bounded_below_by_the_path_latency() {
        for r in run(Scale::Quick) {
            assert!(
                r.mean_staleness >= r.latency,
                "{}: staleness {} below one-way latency {}",
                r.path,
                r.mean_staleness,
                r.latency
            );
        }
    }

    #[test]
    fn fresh_feedback_is_near_ideal() {
        let rows = run(Scale::Quick);
        // With ~120ns feedback on 2us services at rho 0.8, queueing is
        // mild: p99 within a small multiple of the service time.
        assert!(
            rows[0].p99 < SimDuration::from_micros(20),
            "near-ideal p99 {}",
            rows[0].p99
        );
    }

    #[test]
    fn table_renders() {
        let rows = run(Scale::Quick);
        let t = table(&rows);
        assert!(t.contains("feedback_gap"));
        assert!(t.contains("2.560us") || t.contains("2.56"));
    }
}
