//! Experiment output: aligned tables on stdout and CSV files on disk.

use std::fmt::Write as _;
use std::path::Path;

use workload::RunMetrics;

/// One labelled latency-throughput curve (one line in a paper figure).
#[derive(Debug, Clone)]
pub struct Curve {
    /// Legend label, e.g. "Shinjuku-Offload".
    pub label: String,
    /// Sweep results in offered-load order.
    pub points: Vec<RunMetrics>,
}

/// A complete figure: several curves over the same offered loads.
#[derive(Debug, Clone)]
pub struct Figure {
    /// Figure identifier, e.g. "fig2".
    pub id: String,
    /// Human title echoing the paper's caption.
    pub title: String,
    /// The curves.
    pub curves: Vec<Curve>,
}

impl Figure {
    /// Render an aligned text table: one row per offered load, achieved
    /// throughput and p99 per curve.
    pub fn table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "## {} — {}", self.id, self.title);
        let _ = write!(out, "{:>14}", "offered_rps");
        for c in &self.curves {
            let _ = write!(
                out,
                " | {:>14} {:>12}",
                format!("{}_rps", short(&c.label)),
                format!("{}_p99us", short(&c.label))
            );
        }
        let _ = writeln!(out);
        let rows = self
            .curves
            .iter()
            .map(|c| c.points.len())
            .max()
            .unwrap_or(0);
        for i in 0..rows {
            let offered = self
                .curves
                .iter()
                .find_map(|c| c.points.get(i).map(|m| m.offered_rps))
                .unwrap_or(0.0);
            let _ = write!(out, "{offered:>14.0}");
            for c in &self.curves {
                match c.points.get(i) {
                    Some(m) => {
                        let _ = write!(
                            out,
                            " | {:>14.0} {:>12.1}",
                            m.achieved_rps,
                            m.p99.as_micros_f64()
                        );
                    }
                    None => {
                        let _ = write!(out, " | {:>14} {:>12}", "-", "-");
                    }
                }
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Render the figure as CSV.
    pub fn csv(&self) -> String {
        let mut out = String::from("curve,offered_rps,achieved_rps,goodput,p50_us,p99_us,p999_us,p99_short_us,p99_long_us,mean_us,completed,dropped,retries,preemptions,worker_utilization\n");
        for c in &self.curves {
            for m in &c.points {
                let _ = writeln!(
                    out,
                    "{},{:.0},{:.0},{:.4},{:.3},{:.3},{:.3},{:.3},{:.3},{:.3},{},{},{},{},{:.4}",
                    csv_field(&c.label),
                    m.offered_rps,
                    m.achieved_rps,
                    m.goodput_ratio(),
                    m.p50.as_micros_f64(),
                    m.p99.as_micros_f64(),
                    m.p999.as_micros_f64(),
                    m.p99_short.as_micros_f64(),
                    m.p99_long.as_micros_f64(),
                    m.mean.as_micros_f64(),
                    m.completed,
                    m.dropped,
                    m.faults.retries,
                    m.preemptions,
                    m.worker_utilization,
                );
            }
        }
        out
    }

    /// Write the CSV under `dir/<id>.csv`, creating the directory.
    pub fn write_csv(&self, dir: &Path) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.csv", self.id));
        std::fs::write(&path, self.csv())?;
        Ok(path)
    }
}

/// Quote a CSV field when it needs it. Policy-parameterised curve labels
/// carry commas (`wfq:w=4,1,1`), which would otherwise shift every column
/// after the first.
pub(crate) fn csv_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Reduce a label to a column-friendly slug (alphanumerics only, but
/// never truncated into ambiguity: "Shinjuku" and "Shinjuku-Offload"
/// must stay distinct).
fn short(label: &str) -> String {
    label
        .chars()
        .filter(|c| c.is_ascii_alphanumeric())
        .collect::<String>()
        .to_lowercase()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::SimDuration;

    fn metrics(offered: f64) -> RunMetrics {
        RunMetrics {
            offered_rps: offered,
            achieved_rps: offered,
            p50: SimDuration::from_micros(5),
            p99: SimDuration::from_micros(20),
            p999: SimDuration::from_micros(40),
            p99_short: SimDuration::from_micros(18),
            p99_long: SimDuration::from_micros(40),
            mean: SimDuration::from_micros(7),
            completed: 100,
            dropped: 0,
            preemptions: 3,
            worker_utilization: 0.42,
            stages: None,
            faults: workload::FaultMetrics {
                launched: 100,
                completed_all: 100,
                attempts: 100,
                retries: 2,
                ..Default::default()
            },
        }
    }

    fn figure() -> Figure {
        Figure {
            id: "figX".into(),
            title: "test figure".into(),
            curves: vec![
                Curve {
                    label: "Shinjuku".into(),
                    points: vec![metrics(1e5), metrics(2e5)],
                },
                Curve {
                    label: "Shinjuku-Offload".into(),
                    points: vec![metrics(1e5), metrics(2e5)],
                },
            ],
        }
    }

    #[test]
    fn table_contains_all_points() {
        let t = figure().table();
        assert!(t.contains("figX"));
        assert!(t.contains("100000"));
        assert!(t.contains("200000"));
        assert!(t.contains("20.0"), "p99 in us: {t}");
    }

    #[test]
    fn csv_round_trips_fields() {
        let c = figure().csv();
        let lines: Vec<&str> = c.lines().collect();
        assert_eq!(lines.len(), 1 + 4, "header + 4 rows");
        assert!(lines[0].starts_with("curve,offered_rps"));
        assert_eq!(
            lines[0].split(',').count(),
            lines[1].split(',').count(),
            "header and rows have the same column count"
        );
        assert!(lines[1].starts_with("Shinjuku,100000"));
        assert!(lines[1].contains(",0.4200"));
        assert!(lines[0].contains(",goodput,"), "goodput column present");
        assert!(lines[0].contains(",retries,"), "retries column present");
        assert!(lines[1].contains(",1.0000,"), "goodput ratio rendered");
    }

    #[test]
    fn comma_bearing_labels_are_quoted_in_csv() {
        let mut f = figure();
        f.curves[0].label = "wfq:w=4,1,1".into();
        let c = f.csv();
        let lines: Vec<&str> = c.lines().collect();
        assert!(lines[1].starts_with("\"wfq:w=4,1,1\","), "{}", lines[1]);
        // Quoted commas aside, the column count must match the header.
        let data_cols = lines[1].split(',').count() - "wfq:w=4,1,1".matches(',').count();
        assert_eq!(lines[0].split(',').count(), data_cols);
    }

    #[test]
    fn write_csv_creates_file() {
        let dir = std::env::temp_dir().join("mindgap-report-test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = figure().write_csv(&dir).unwrap();
        let content = std::fs::read_to_string(path).unwrap();
        assert!(content.contains("Shinjuku-Offload"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn uneven_curves_render_dashes() {
        let mut f = figure();
        f.curves[1].points.pop();
        let t = f.table();
        assert!(t.contains('-'));
    }
}
