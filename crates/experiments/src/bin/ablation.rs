//! The §5.1/§5.2 ablations: comm path, preemption path, DDIO placement.
//! `--policy <spec>` swaps the offload scheduler (registry grammar).
fn main() {
    experiments::sweep::init_jobs_from_args();
    let policy = experiments::sweep::init_policy_from_args();
    for figure in [
        experiments::ablation::comm_path_with(experiments::Scale::Full, policy),
        experiments::ablation::preempt_path_with(experiments::Scale::Full, policy),
        experiments::ablation::ddio_with(experiments::Scale::Full, policy),
    ] {
        experiments::emit(&figure);
    }
}
