//! The §5.1/§5.2 ablations: comm path, preemption path, DDIO placement.
fn main() {
    experiments::sweep::init_jobs_from_args();
    for figure in [
        experiments::ablation::comm_path(experiments::Scale::Full),
        experiments::ablation::preempt_path(experiments::Scale::Full),
        experiments::ablation::ddio(experiments::Scale::Full),
    ] {
        experiments::emit(&figure);
    }
}
