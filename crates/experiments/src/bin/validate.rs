//! Reproduction self-check: verify every headline claim of the paper at
//! quick scale and print PASS/FAIL per claim. Exits non-zero on any
//! failure — suitable as a CI smoke test for the whole reproduction.

use experiments::sweep::{knee_throughput, peak_throughput};
use experiments::Scale;
use sim_core::SimDuration;

struct Check {
    name: &'static str,
    pass: bool,
    detail: String,
}

fn main() {
    experiments::sweep::init_jobs_from_args();
    let scale = Scale::Quick;
    let mut checks: Vec<Check> = Vec::new();

    // Figure 2: offload sustains more bimodal load than Shinjuku.
    {
        let f = experiments::figures::fig2(scale);
        let slo = SimDuration::from_micros(500);
        let shin = knee_throughput(&f.curves[0].points, slo);
        let off = knee_throughput(&f.curves[1].points, slo);
        checks.push(Check {
            name: "fig2: Offload (4w) outlasts Shinjuku (3w) on the bimodal mix",
            pass: off > shin,
            detail: format!("knees: shinjuku {shin:.0} vs offload {off:.0} rps"),
        });
    }

    // Figure 3: the queuing optimization raises 4-worker throughput a lot.
    {
        let f = experiments::figures::fig3(scale);
        let w4 = &f.curves[1].points;
        let first = w4.first().unwrap().achieved_rps;
        let peak = peak_throughput(w4);
        checks.push(Check {
            name: "fig3: outstanding cap lifts 4-worker throughput >150%",
            pass: peak > first * 2.5,
            detail: format!(
                "cap1 {first:.0} -> plateau {peak:.0} (+{:.0}%)",
                (peak / first - 1.0) * 100.0
            ),
        });
    }

    // Figure 4: the extra worker wins at 5us.
    {
        let f = experiments::figures::fig4(scale);
        let slo = SimDuration::from_micros(400);
        let shin = knee_throughput(&f.curves[0].points, slo);
        let off = knee_throughput(&f.curves[1].points, slo);
        checks.push(Check {
            name: "fig4: Offload (4w) beats Shinjuku (3w) on fixed 5us",
            pass: off > shin * 1.1,
            detail: format!("knees: {shin:.0} vs {off:.0} rps"),
        });
    }

    // Figure 6: the ARM dispatcher is the bottleneck.
    {
        let f = experiments::figures::fig6(scale);
        let shin = peak_throughput(&f.curves[0].points);
        let off = peak_throughput(&f.curves[1].points);
        checks.push(Check {
            name: "fig6: Shinjuku greatly outperforms Offload on fixed 1us",
            pass: shin > off * 1.8,
            detail: format!("peaks: shinjuku {shin:.0} vs offload {off:.0} rps"),
        });
    }

    // Microbench: the encoded paper numbers.
    {
        let rows = experiments::microbench::run();
        let arm = rows
            .iter()
            .find(|r| r.name.contains("ARM CPU -> host"))
            .unwrap();
        checks.push(Check {
            name: "microbench: ARM->host construct+traverse = 2.56us",
            pass: arm.measured.contains("2.560us"),
            detail: arm.measured.clone(),
        });
    }

    // Feedback gap: staleness costs tail latency.
    {
        let rows = experiments::feedback_gap::run(scale);
        let pass = rows[0].p99 <= rows[2].p99 && rows[2].p99 < rows[4].p99;
        checks.push(Check {
            name: "feedback gap: fresher core feedback -> lower p99",
            pass,
            detail: format!(
                "coherent {} / stingray {} / 50us {}",
                rows[0].p99, rows[2].p99, rows[4].p99
            ),
        });
    }

    let mut failed = 0;
    println!(
        "mindgap reproduction self-check ({} claims)\n",
        checks.len()
    );
    for c in &checks {
        let status = if c.pass { "PASS" } else { "FAIL" };
        if !c.pass {
            failed += 1;
        }
        println!("[{status}] {}\n       {}", c.name, c.detail);
    }
    println!();
    if failed > 0 {
        println!("{failed} claim(s) FAILED");
        std::process::exit(1);
    }
    println!("all claims reproduced");
}
