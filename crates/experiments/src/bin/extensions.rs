//! Extension experiments: multi-dispatcher scaling, Elastic RSS, slice
//! sweep, policy comparison, heavy tails.
fn main() {
    experiments::sweep::init_jobs_from_args();
    let scale = experiments::Scale::Full;
    let gap_rows = experiments::feedback_gap::run(scale);
    println!("{}", experiments::feedback_gap::table(&gap_rows));

    let rows = experiments::extensions::multi_dispatcher(scale);
    println!("{}", experiments::extensions::multi_dispatcher_table(&rows));

    let (fig, active) = experiments::extensions::elastic_rss(scale);
    experiments::emit(&fig);
    println!("mean provisioned cores per load point: {active:?}\n");

    for fig in [
        experiments::extensions::slice_sweep(scale),
        experiments::extensions::policies(scale),
        experiments::extensions::heavy_tail(scale),
        experiments::extensions::dual_socket(scale),
        experiments::extensions::jit_pacing(scale),
        experiments::extensions::worker_scaling(scale),
    ] {
        experiments::emit(&fig);
    }
}
