//! Recovery grid: NIC-side orphan re-dispatch vs client-retry-only,
//! suspicion window × fault type × policy on the offload assembly.
//!
//! `--smoke` runs the deterministic CI body (fcfs, crash + stall, one
//! retry-only and one 30µs nic-recovery arm each; asserts ledgers close
//! and nic p99 strictly beats retry-only p99 for both fault types);
//! `--invariants` layers the runtime invariant checker over the smoke run
//! (bit-identical output, panics on violations); `--json` prints rows as
//! JSON instead of the aligned table; `--quick` shrinks the grid;
//! `--policy <spec>` replaces the policy list (registry grammar, e.g.
//! `srpt` or `edf:deadline=50us`).
fn main() {
    experiments::sweep::init_jobs_from_args();
    let args: Vec<String> = std::env::args().collect();
    let as_json = args.iter().any(|a| a == "--json");
    let invariants = args.iter().any(|a| a == "--invariants");
    let policy = experiments::sweep::policy_from_args(&args);
    let rows = if args.iter().any(|a| a == "--smoke") {
        experiments::recovery::smoke_checked(invariants)
    } else {
        let scale = if args.iter().any(|a| a == "--quick") {
            experiments::Scale::Quick
        } else {
            experiments::Scale::Full
        };
        experiments::recovery::run_with(scale, policy)
    };
    if as_json {
        println!("{}", experiments::recovery::json(&rows));
    } else {
        println!("{}", experiments::recovery::table(&rows));
        let path = experiments::recovery::write_csv(&rows, &experiments::results_dir())
            .expect("writing recovery CSV");
        println!("wrote {}", path.display());
    }
}
