//! Reproduce the paper's inline microbenchmark numbers.
fn main() {
    let rows = experiments::microbench::run();
    println!("{}", experiments::microbench::table(&rows));
}
