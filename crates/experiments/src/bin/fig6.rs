//! Regenerate the paper's Fig6 (see experiments::figures).
fn main() {
    let figure = experiments::figures::fig6(experiments::Scale::Full);
    experiments::emit(&figure);
}
