//! Regenerate the paper's Fig6 (see experiments::figures).
fn main() {
    experiments::sweep::init_jobs_from_args();
    let figure = experiments::figures::fig6(experiments::Scale::Full);
    experiments::emit(&figure);
}
