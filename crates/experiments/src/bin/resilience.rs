//! Resilience grid: loss rate × fault type across every assembly.
//!
//! `--smoke` runs the deterministic CI body (one loss+crash point per
//! system, probing on, ledger asserted closed); `--invariants` layers the
//! runtime invariant checker over the smoke run (bit-identical output,
//! panics on any causality/conservation violation); `--json` prints the
//! rows as JSON instead of the aligned table; `--quick` shrinks the grid;
//! `--policy <spec>` swaps the scheduler on every policy-capable assembly
//! (registry grammar, e.g. `srpt` or `edf:deadline=50us`).
fn main() {
    experiments::sweep::init_jobs_from_args();
    let args: Vec<String> = std::env::args().collect();
    let as_json = args.iter().any(|a| a == "--json");
    let invariants = args.iter().any(|a| a == "--invariants");
    let policy = experiments::sweep::policy_from_args(&args);
    let rows = if args.iter().any(|a| a == "--smoke") {
        experiments::resilience::smoke_checked(invariants)
    } else {
        let scale = if args.iter().any(|a| a == "--quick") {
            experiments::Scale::Quick
        } else {
            experiments::Scale::Full
        };
        experiments::resilience::run_with(scale, policy)
    };
    if as_json {
        println!("{}", experiments::resilience::json(&rows));
    } else {
        println!("{}", experiments::resilience::table(&rows));
        let path = experiments::resilience::write_csv(&rows, &experiments::results_dir())
            .expect("writing resilience CSV");
        println!("wrote {}", path.display());
    }
}
