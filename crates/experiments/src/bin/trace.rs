//! Per-request timeline tracing: watch individual requests cross every
//! stage of a server assembly, and see the paper's feedback gap as a
//! measured idle interval rather than an inferred one.
//!
//! ```text
//! trace [system] [rps] [--json] [--policy <spec>]
//! ```
//!
//! `system` is one of `offload` (default), `shinjuku`, `rss`, `rpcvalet`,
//! `multi`; `rps` the offered load (default 200000). `--json` emits the
//! timelines as a JSON array instead of tables. `--policy` swaps the
//! scheduler on policy-capable assemblies (registry grammar, e.g.
//! `srpt` or `edf:deadline=50us`).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use nicsched::PolicySpec;
use sim_core::{ProbeConfig, SimDuration, SimTime, TraceEvent};
use systems::baseline::{BaselineConfig, BaselineKind};
use systems::multi_shinjuku::MultiShinjukuConfig;
use systems::offload::OffloadConfig;
use systems::rpcvalet::RpcValetConfig;
use systems::shinjuku::ShinjukuConfig;
use systems::{ServerSystem, SystemConfig};
use workload::{ServiceDist, WorkloadSpec};

/// How many requests to show in table mode.
const SHOWN: usize = 8;

fn system_by_name(name: &str) -> Option<SystemConfig> {
    Some(match name {
        "offload" => SystemConfig::Offload(OffloadConfig::paper(4, 4)),
        "shinjuku" => SystemConfig::Shinjuku(ShinjukuConfig::paper(4)),
        "rss" => SystemConfig::Baseline(BaselineConfig {
            workers: 4,
            kind: BaselineKind::Rss,
        }),
        "rpcvalet" => SystemConfig::RpcValet(RpcValetConfig { workers: 4 }),
        "multi" => SystemConfig::MultiShinjuku(MultiShinjukuConfig {
            groups: 2,
            workers_per_group: 2,
            time_slice: None,
            policy: PolicySpec::FCFS,
        }),
        _ => return None,
    })
}

/// Swap the scheduling policy on assemblies that have one; baselines and
/// RPCValet are policy-oblivious and pass through unchanged.
fn with_policy(sys: SystemConfig, policy: PolicySpec) -> SystemConfig {
    match sys {
        SystemConfig::Offload(mut c) => {
            c.policy = policy;
            SystemConfig::Offload(c)
        }
        SystemConfig::Shinjuku(mut c) => {
            c.policy = policy;
            SystemConfig::Shinjuku(c)
        }
        SystemConfig::MultiShinjuku(mut c) => {
            c.policy = policy;
            SystemConfig::MultiShinjuku(c)
        }
        other => other,
    }
}

/// Group the flat event stream into per-request timelines, preserving
/// event order within each request.
fn timelines(trace: &[TraceEvent]) -> BTreeMap<u64, Vec<&TraceEvent>> {
    let mut by_req: BTreeMap<u64, Vec<&TraceEvent>> = BTreeMap::new();
    for ev in trace {
        by_req.entry(ev.req).or_default().push(ev);
    }
    by_req
}

fn render_tables(by_req: &BTreeMap<u64, Vec<&TraceEvent>>) -> String {
    let mut out = String::new();
    for (req, events) in by_req.iter().take(SHOWN) {
        let t0 = events.first().map(|e| e.at).unwrap_or(SimTime::ZERO);
        let _ = writeln!(out, "request {req}");
        let mut prev = t0;
        for ev in events {
            let _ = writeln!(
                out,
                "  {:>12}  +{:>10}  {}",
                ev.at.to_string(),
                ev.at.saturating_duration_since(prev).to_string(),
                ev.stage
            );
            prev = ev.at;
        }
        let total = prev.saturating_duration_since(t0);
        let _ = writeln!(
            out,
            "  {:>12}   {:>10}  total sojourn",
            "",
            total.to_string()
        );
    }
    out
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn render_json(by_req: &BTreeMap<u64, Vec<&TraceEvent>>) -> String {
    let mut out = String::from("[");
    let mut first_req = true;
    for (req, events) in by_req {
        if !first_req {
            out.push(',');
        }
        first_req = false;
        let _ = write!(out, "{{\"req\":{req},\"events\":[");
        let mut first_ev = true;
        for ev in events {
            if !first_ev {
                out.push(',');
            }
            first_ev = false;
            let _ = write!(
                out,
                "{{\"stage\":\"{}\",\"at_ns\":{}}}",
                json_escape(ev.stage),
                ev.at.as_nanos()
            );
        }
        out.push_str("]}");
    }
    out.push(']');
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let mut sys = args
        .iter()
        .find_map(|a| system_by_name(a))
        .unwrap_or(SystemConfig::Offload(OffloadConfig::paper(4, 4)));
    if let Some(spec) = experiments::sweep::policy_from_args(&args) {
        sys = with_policy(sys, spec);
    }
    let rps = args
        .iter()
        .find_map(|a| a.parse::<f64>().ok())
        .unwrap_or(200_000.0);

    let spec = WorkloadSpec {
        offered_rps: rps,
        dist: ServiceDist::paper_bimodal(),
        body_len: 64,
        warmup: SimDuration::ZERO,
        measure: SimDuration::from_millis(2),
        seed: 7,
    };
    let m = sys.run(spec, ProbeConfig::with_trace(65_536));
    let stages = m.stages.expect("probed run always reports stages");
    let by_req = timelines(&stages.trace);

    if json {
        println!("{}", render_json(&by_req));
        return;
    }

    println!("# {} @ {:.0} rps, seed {}\n", sys.name(), rps, spec.seed);
    println!("{stages}");
    if stages.trace_dropped > 0 {
        println!(
            "(trace buffer full: {} later events dropped; raise the capacity for longer runs)\n",
            stages.trace_dropped
        );
    }
    println!(
        "## per-request timelines (first {SHOWN} of {})\n",
        by_req.len()
    );
    println!("{}", render_tables(&by_req));
    if let Some(gap) = stages.hop("worker.idle_gap") {
        println!(
            "## the feedback gap, measured\n\
             workers sat idle waiting for the scheduler to notice them {} times;\n\
             mean idle gap {} (p99 {}) — the interval the paper argues a\n\
             NIC-resident scheduler with fresh core feedback can close.",
            gap.count, gap.mean, gap.p99
        );
    }
    println!(
        "\nclient view: mean {} p99 {} over {} completed requests",
        m.mean, m.p99, m.completed
    );
}
