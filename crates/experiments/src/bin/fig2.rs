//! Regenerate the paper's Fig2 (see experiments::figures).
fn main() {
    let figure = experiments::figures::fig2(experiments::Scale::Full);
    experiments::emit(&figure);
}
