//! Regenerate the paper's Fig2 (see experiments::figures). `--policy
//! <spec>` swaps the scheduler on both assemblies (registry grammar).
fn main() {
    experiments::sweep::init_jobs_from_args();
    let policy = experiments::sweep::init_policy_from_args();
    let figure = experiments::figures::fig2_with(experiments::Scale::Full, policy);
    experiments::emit(&figure);
}
