//! Regenerate the paper's Fig2 (see experiments::figures).
fn main() {
    experiments::sweep::init_jobs_from_args();
    let figure = experiments::figures::fig2(experiments::Scale::Full);
    experiments::emit(&figure);
}
