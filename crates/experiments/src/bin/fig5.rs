//! Regenerate the paper's Fig5 (see experiments::figures).
fn main() {
    let figure = experiments::figures::fig5(experiments::Scale::Full);
    experiments::emit(&figure);
}
