//! Regenerate the paper's Fig5 (see experiments::figures).
fn main() {
    experiments::sweep::init_jobs_from_args();
    let figure = experiments::figures::fig5(experiments::Scale::Full);
    experiments::emit(&figure);
}
