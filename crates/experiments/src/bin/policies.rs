//! Policy-registry sweep: every registered scheduling policy crossed
//! with the Fig. 2/3 workloads on every assembly.
//!
//! `--smoke` (alias `--quick`) runs the short deterministic grid CI
//! diffs across `--jobs` values; `--json` prints rows as JSON instead of
//! the aligned table (and skips the CSV); `--jobs N` fans independent
//! cells over N threads without perturbing a byte of output.
fn main() {
    experiments::sweep::init_jobs_from_args();
    let args: Vec<String> = std::env::args().collect();
    let as_json = args.iter().any(|a| a == "--json");
    let scale = if args.iter().any(|a| a == "--smoke" || a == "--quick") {
        experiments::Scale::Quick
    } else {
        experiments::Scale::Full
    };
    let rows = experiments::policies::run(scale);
    if as_json {
        println!("{}", experiments::policies::json(&rows));
    } else {
        println!("{}", experiments::policies::table(&rows));
        let path = experiments::policies::write_csv(&rows, &experiments::results_dir())
            .expect("writing policies CSV");
        println!("wrote {}", path.display());
    }
}
