//! The §2.1/§2.2 baseline comparison on the dispersion workload.
fn main() {
    experiments::sweep::init_jobs_from_args();
    let figure = experiments::ablation::baselines(experiments::Scale::Full);
    experiments::emit(&figure);
}
