//! Regenerate the paper's Fig3 (see experiments::figures).
fn main() {
    experiments::sweep::init_jobs_from_args();
    let figure = experiments::figures::fig3(experiments::Scale::Full);
    experiments::emit(&figure);
}
