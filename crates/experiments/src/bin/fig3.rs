//! Regenerate the paper's Fig3 (see experiments::figures).
fn main() {
    let figure = experiments::figures::fig3(experiments::Scale::Full);
    experiments::emit(&figure);
}
