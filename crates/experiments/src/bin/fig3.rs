//! Regenerate the paper's Fig3 (see experiments::figures). `--policy
//! <spec>` swaps the offload scheduler (registry grammar).
fn main() {
    experiments::sweep::init_jobs_from_args();
    let policy = experiments::sweep::init_policy_from_args();
    let figure = experiments::figures::fig3_with(experiments::Scale::Full, policy);
    experiments::emit(&figure);
}
