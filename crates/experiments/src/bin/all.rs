//! Regenerate every experiment in the repository: Figures 2-6, the
//! microbenchmark table, the ablations and the baseline comparison.
fn main() {
    experiments::sweep::init_jobs_from_args();
    println!("=== microbenchmarks ===");
    println!(
        "{}",
        experiments::microbench::table(&experiments::microbench::run())
    );
    for figure in [
        experiments::figures::fig2(experiments::Scale::Full),
        experiments::figures::fig3(experiments::Scale::Full),
        experiments::figures::fig4(experiments::Scale::Full),
        experiments::figures::fig5(experiments::Scale::Full),
        experiments::figures::fig6(experiments::Scale::Full),
        experiments::ablation::comm_path(experiments::Scale::Full),
        experiments::ablation::preempt_path(experiments::Scale::Full),
        experiments::ablation::ddio(experiments::Scale::Full),
        experiments::ablation::baselines(experiments::Scale::Full),
    ] {
        experiments::emit(&figure);
    }

    println!("=== extensions ===");
    let gap_rows = experiments::feedback_gap::run(experiments::Scale::Full);
    println!("{}", experiments::feedback_gap::table(&gap_rows));

    let rows = experiments::extensions::multi_dispatcher(experiments::Scale::Full);
    println!("{}", experiments::extensions::multi_dispatcher_table(&rows));
    let (fig, active) = experiments::extensions::elastic_rss(experiments::Scale::Full);
    experiments::emit(&fig);
    println!("mean provisioned cores per load point: {active:?}\n");
    for fig in [
        experiments::extensions::slice_sweep(experiments::Scale::Full),
        experiments::extensions::policies(experiments::Scale::Full),
        experiments::extensions::heavy_tail(experiments::Scale::Full),
        experiments::extensions::dual_socket(experiments::Scale::Full),
        experiments::extensions::jit_pacing(experiments::Scale::Full),
        experiments::extensions::worker_scaling(experiments::Scale::Full),
    ] {
        experiments::emit(&fig);
    }
}
