//! Regenerate the paper's Fig4 (see experiments::figures).
fn main() {
    experiments::sweep::init_jobs_from_args();
    let figure = experiments::figures::fig4(experiments::Scale::Full);
    experiments::emit(&figure);
}
