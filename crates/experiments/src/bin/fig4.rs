//! Regenerate the paper's Fig4 (see experiments::figures).
fn main() {
    let figure = experiments::figures::fig4(experiments::Scale::Full);
    experiments::emit(&figure);
}
