//! NIC-side failure recovery versus client-retry-only: suspicion window
//! × fault type × scheduling policy, on the offload assembly.
//!
//! The tentpole claim: because the dispatcher lives on the NIC and sees
//! every assignment and completion, it can detect a silent worker and
//! re-dispatch its orphaned requests in tens of microseconds — while a
//! client on the other side of the wire needs a full retransmission
//! timeout (200µs base, exponential backoff) to notice anything at all.
//! Per (policy, fault) cell this grid runs one *retry-only* arm (the
//! orphans' only way home is the client timer) against one *nic-recovery*
//! arm per suspicion window, at equal offered load and the same fault
//! schedule, and reports tail latency plus the full recovery ledger.
//!
//! Fault types:
//!
//! - `crash`: two of four workers die permanently, staggered mid-run.
//!   Their in-flight requests are gone; the only question is who notices
//!   first, the NIC's lease table or the client's timer.
//! - `stall`: a storm of transient per-worker stalls (GC pause, SMI)
//!   sweeps the pool. This is the false-positive gauntlet: a reclaimed
//!   request's zombie copy finishes anyway when the worker wakes, and
//!   the exactly-once filter must absorb it while the detector readmits
//!   the worker.
//!
//! Every row closes the request ledger, and the smoke body asserts the
//! headline result: NIC recovery strictly beats retry-only p99 for both
//! fault types.

use nicsched::RecoveryPolicy;
use sim_core::{FaultConfig, ProbeConfig, SimDuration, SimTime};
use systems::offload::OffloadConfig;
use systems::{ResilienceConfig, ServerSystem, SystemConfig};
use workload::{RetryPolicy, RunMetrics, ServiceDist, WorkloadSpec};

use crate::figures::Scale;

/// Fault type applied to the worker pool.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Two permanent worker crashes, staggered mid-run.
    Crash,
    /// A storm of transient stalls rotating across the pool.
    Stall,
}

impl Fault {
    /// Stable label for tables and CSV.
    pub fn label(&self) -> &'static str {
        match self {
            Fault::Crash => "crash",
            Fault::Stall => "stall",
        }
    }

    /// The fault schedule, scaled to the run horizon. Workers 1 and 3
    /// crash at 40% and 55% of the run; the stall storm parks one worker
    /// at a time for 250µs, round-robin, through the measure window.
    fn schedule(&self, horizon: SimTime, workers: usize) -> FaultConfig {
        let h = horizon.as_nanos();
        match self {
            Fault::Crash => FaultConfig::default()
                .with_crash(1, SimTime::from_nanos(h * 2 / 5))
                .with_crash(3, SimTime::from_nanos(h * 11 / 20)),
            Fault::Stall => {
                let mut f = FaultConfig::default();
                let stall = 250_000u64; // 250µs outage
                let gap = 400_000u64; // storm period
                let mut start = h * 3 / 10;
                let mut w = 0usize;
                let mut slots = 0;
                while start + stall < h && slots < sim_core::MAX_FAULT_EVENTS {
                    f = f.with_stall(
                        w,
                        SimTime::from_nanos(start),
                        SimTime::from_nanos(start + stall),
                    );
                    start += gap;
                    w = (w + 1) % workers;
                    slots += 1;
                }
                f
            }
        }
    }
}

/// One cell of the recovery grid.
#[derive(Debug, Clone)]
pub struct RecoveryRow {
    /// Scheduling policy spec driving the dispatcher.
    pub policy: &'static str,
    /// Fault type label.
    pub fault: &'static str,
    /// Recovery arm: `"retry-only"` or `"nic-recovery"`.
    pub mode: &'static str,
    /// Suspicion window in µs (0 for the retry-only arm).
    pub window_us: u64,
    /// First-completions over launched requests.
    pub goodput: f64,
    /// p99 sojourn of completed requests.
    pub p99: SimDuration,
    /// Client retransmissions.
    pub retries: u64,
    /// Requests the client gave up on.
    pub abandoned: u64,
    /// Attempts stranded inside crashed workers.
    pub stranded: u64,
    /// Orphans reclaimed and re-dispatched by the NIC.
    pub recovered: u64,
    /// Zombie completions absorbed by the exactly-once filter.
    pub duplicates: u64,
    /// Lease expiries (worker suspicions).
    pub suspicions: u64,
    /// False-positive suspicions readmitted on late activity.
    pub readmissions: u64,
    /// Request-ledger residue — must be zero.
    pub unaccounted: i64,
}

const WORKERS: usize = 4;

fn spec_for(scale: Scale) -> WorkloadSpec {
    let (warmup, measure) = match scale {
        Scale::Quick => (SimDuration::from_millis(1), SimDuration::from_millis(5)),
        Scale::Full => (SimDuration::from_millis(2), SimDuration::from_millis(20)),
    };
    WorkloadSpec {
        offered_rps: 250_000.0,
        dist: ServiceDist::paper_bimodal(),
        body_len: 64,
        warmup,
        measure,
        seed: 7,
    }
}

fn policies(scale: Scale) -> Vec<&'static str> {
    match scale {
        Scale::Quick => vec!["fcfs"],
        Scale::Full => vec!["fcfs", "srpt"],
    }
}

fn windows(scale: Scale) -> Vec<u64> {
    match scale {
        Scale::Quick => vec![30],
        Scale::Full => vec![15, 30, 60],
    }
}

/// The two arms share everything — workload, seed, fault schedule, retry
/// policy — except the `recovery` field.
fn cell(
    policy: &'static str,
    fault: Fault,
    window_us: Option<u64>,
    spec: WorkloadSpec,
) -> RecoveryRow {
    let mut res = ResilienceConfig {
        faults: fault.schedule(spec.horizon(), WORKERS),
        retry: Some(RetryPolicy::paper_default()),
        ..ResilienceConfig::default()
    };
    if let Some(us) = window_us {
        res = res.with_recovery(RecoveryPolicy::with_suspicion(SimDuration::from_micros(us)));
    }
    let mut cfg = OffloadConfig::paper(WORKERS, 4);
    cfg.policy = nicsched::PolicySpec::parse(policy).expect("valid policy spec");
    let sys = SystemConfig::Offload(cfg);
    let m = sys.run_resilient(spec, ProbeConfig::disabled(), res);
    row_from(policy, fault, window_us, &m)
}

fn row_from(
    policy: &'static str,
    fault: Fault,
    window_us: Option<u64>,
    m: &RunMetrics,
) -> RecoveryRow {
    let f = &m.faults;
    RecoveryRow {
        policy,
        fault: fault.label(),
        mode: if window_us.is_some() {
            "nic-recovery"
        } else {
            "retry-only"
        },
        window_us: window_us.unwrap_or(0),
        goodput: m.goodput_ratio(),
        p99: m.p99,
        retries: f.retries,
        abandoned: f.abandoned,
        stranded: f.stranded,
        recovered: f.recovered,
        duplicates: f.recovery_duplicates,
        suspicions: f.suspicions,
        readmissions: f.readmissions,
        unaccounted: f.unaccounted(),
    }
}

/// Run the suspicion-window × fault × policy grid. Cells are independent
/// seeded runs, so the grid fans out over the sweep pool (`--jobs`) with
/// rows returned in grid order.
pub fn run(scale: Scale) -> Vec<RecoveryRow> {
    run_with(scale, None)
}

/// [`run`] with an optional policy override replacing the default policy
/// list (`--policy`); `None` matches [`run`] exactly.
pub fn run_with(scale: Scale, policy: Option<nicsched::PolicySpec>) -> Vec<RecoveryRow> {
    let spec = spec_for(scale);
    let policy_list: Vec<&'static str> = match policy {
        // Spec strings are interned, so the label is already 'static.
        Some(p) => vec![p.as_str()],
        None => policies(scale),
    };
    let mut cells: Vec<(&'static str, Fault, Option<u64>)> = Vec::new();
    for &p in &policy_list {
        for fault in [Fault::Crash, Fault::Stall] {
            cells.push((p, fault, None));
            for &w in &windows(scale) {
                cells.push((p, fault, Some(w)));
            }
        }
    }
    crate::sweep::par_map(&cells, |&(p, fault, w)| cell(p, fault, w, spec))
}

/// The deterministic CI body: fcfs, both fault types, retry-only versus
/// one 30µs nic-recovery arm. Asserts the ledgers close and the headline
/// result — NIC-side re-dispatch strictly beats client-retry-only p99 for
/// both fault types at equal offered load.
pub fn smoke() -> Vec<RecoveryRow> {
    smoke_checked(false)
}

/// The smoke body with runtime invariant checking optionally enabled.
/// Rows must be bit-identical either way — CI runs both and diffs.
pub fn smoke_checked(invariants: bool) -> Vec<RecoveryRow> {
    let spec = spec_for(Scale::Quick);
    let mut rows = Vec::new();
    for fault in [Fault::Crash, Fault::Stall] {
        let mut pair = Vec::new();
        for window in [None, Some(30u64)] {
            let mut res = ResilienceConfig {
                faults: fault.schedule(spec.horizon(), WORKERS),
                retry: Some(RetryPolicy::paper_default()),
                ..ResilienceConfig::default()
            };
            if let Some(us) = window {
                res =
                    res.with_recovery(RecoveryPolicy::with_suspicion(SimDuration::from_micros(us)));
            }
            if invariants {
                res = res.with_invariants();
            }
            let sys = SystemConfig::Offload(OffloadConfig::paper(WORKERS, 4));
            let m = sys.run_resilient(spec, ProbeConfig::enabled(), res);
            let row = row_from("fcfs", fault, window, &m);
            assert_eq!(
                row.unaccounted, 0,
                "{} {}: request ledger leaks: {:?}",
                row.fault, row.mode, m.faults
            );
            pair.push(row);
        }
        let (retry, nic) = (&pair[0], &pair[1]);
        assert!(
            nic.recovered > 0,
            "{}: nic arm never reclaimed an orphan: {nic:?}",
            fault.label()
        );
        assert!(
            nic.p99 < retry.p99,
            "{}: nic-recovery p99 {} must strictly beat retry-only p99 {}",
            fault.label(),
            nic.p99,
            retry.p99
        );
        rows.extend(pair);
    }
    rows
}

/// Render rows as an aligned table.
pub fn table(rows: &[RecoveryRow]) -> String {
    use std::fmt::Write;
    let mut out = String::from(
        "## recovery — 250k rps paper bimodal: NIC-side orphan re-dispatch vs client-retry-only\n",
    );
    let _ = writeln!(
        out,
        "{:<6} {:<6} {:<13} {:>7} {:>8} {:>10} {:>8} {:>7} {:>6} {:>6} {:>5} {:>5} {:>6} {:>6}",
        "policy",
        "fault",
        "mode",
        "win_us",
        "goodput",
        "p99",
        "retries",
        "abandon",
        "strand",
        "recov",
        "dups",
        "susp",
        "readmt",
        "unacct"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<6} {:<6} {:<13} {:>7} {:>8.4} {:>10} {:>8} {:>7} {:>6} {:>6} {:>5} {:>5} {:>6} {:>6}",
            r.policy,
            r.fault,
            r.mode,
            r.window_us,
            r.goodput,
            r.p99.to_string(),
            r.retries,
            r.abandoned,
            r.stranded,
            r.recovered,
            r.duplicates,
            r.suspicions,
            r.readmissions,
            r.unaccounted
        );
    }
    out
}

/// Render rows as a JSON array (no external serializer: every field is a
/// number or a fixed label, so the encoding is trivial and stable).
pub fn json(rows: &[RecoveryRow]) -> String {
    use std::fmt::Write;
    let mut out = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "  {{\"policy\":\"{}\",\"fault\":\"{}\",\"mode\":\"{}\",\"window_us\":{},\"goodput\":{:.6},\"p99_ns\":{},\"retries\":{},\"abandoned\":{},\"stranded\":{},\"recovered\":{},\"duplicates\":{},\"suspicions\":{},\"readmissions\":{},\"unaccounted\":{}}}",
            r.policy,
            r.fault,
            r.mode,
            r.window_us,
            r.goodput,
            r.p99.as_nanos(),
            r.retries,
            r.abandoned,
            r.stranded,
            r.recovered,
            r.duplicates,
            r.suspicions,
            r.readmissions,
            r.unaccounted
        );
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push(']');
    out
}

/// Persist rows as CSV next to the figure outputs; returns the path.
pub fn write_csv(
    rows: &[RecoveryRow],
    dir: &std::path::Path,
) -> std::io::Result<std::path::PathBuf> {
    use std::fmt::Write;
    let mut out = String::from(
        "policy,fault,mode,window_us,goodput,p99_us,retries,abandoned,stranded,recovered,duplicates,suspicions,readmissions,unaccounted\n",
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{},{},{},{},{:.6},{:.3},{},{},{},{},{},{},{},{}",
            r.policy,
            r.fault,
            r.mode,
            r.window_us,
            r.goodput,
            r.p99.as_nanos() as f64 / 1e3,
            r.retries,
            r.abandoned,
            r.stranded,
            r.recovered,
            r.duplicates,
            r.suspicions,
            r.readmissions,
            r.unaccounted
        );
    }
    std::fs::create_dir_all(dir)?;
    let path = dir.join("recovery.csv");
    std::fs::write(&path, out)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_proves_the_headline_and_closes_ledgers() {
        let rows = smoke();
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert_eq!(r.unaccounted, 0, "{r:?}");
            assert!(r.goodput > 0.5, "goodput collapsed: {r:?}");
        }
        // The retry-only arms must show zero recovery activity.
        for r in rows.iter().filter(|r| r.mode == "retry-only") {
            assert_eq!((r.recovered, r.suspicions), (0, 0), "{r:?}");
        }
        // The stall arm must exercise the false-positive path: zombies
        // absorbed and workers readmitted.
        let stall_nic = rows
            .iter()
            .find(|r| r.fault == "stall" && r.mode == "nic-recovery")
            .expect("stall nic arm");
        assert!(stall_nic.readmissions > 0, "{stall_nic:?}");
    }

    #[test]
    fn smoke_is_deterministic() {
        let a = json(&smoke());
        let b = json(&smoke());
        assert_eq!(a, b);
    }

    #[test]
    fn table_and_json_render_all_rows() {
        let rows = smoke();
        let t = table(&rows);
        assert!(t.contains("recovery"));
        assert!(t.contains("nic-recovery"));
        let j = json(&rows);
        assert!(j.starts_with('[') && j.ends_with(']'));
        assert_eq!(j.matches("\"policy\"").count(), rows.len());
    }
}
