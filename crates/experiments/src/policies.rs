//! The `policies` sweep: every scheduling policy in the registry crossed
//! with the paper's Figure 2/3 workloads on every assembly.
//!
//! §5.1(4) argues a NIC-resident scheduler should expose *programmable*
//! policies. The registry (`nicsched::PolicyRegistry`) makes the policy a
//! string-keyed plug-in; this experiment is the corresponding sweep
//! driver: each registered policy runs the bimodal Figure 2 workload and
//! the saturating fixed-1 µs Figure 3 workload through the three
//! policy-capable assemblies (Shinjuku-Offload, host Shinjuku,
//! multi-dispatcher Shinjuku). The policy-oblivious designs (RSS baseline
//! and RPCValet) run once per workload as controls — the line a policy
//! has to beat without a central queue to act on.
//!
//! Cells are independent seeded simulations fanned over the sweep pool,
//! so rows are byte-identical at any `--jobs` value.

use nicsched::PolicySpec;
use sim_core::{ProbeConfig, SimDuration};
use systems::baseline::{BaselineConfig, BaselineKind};
use systems::multi_shinjuku::MultiShinjukuConfig;
use systems::offload::OffloadConfig;
use systems::rpcvalet::RpcValetConfig;
use systems::shinjuku::ShinjukuConfig;
use systems::{ServerSystem, SystemConfig};
use workload::{RunMetrics, ServiceDist, WorkloadSpec};

use crate::figures::Scale;
use crate::report::csv_field;

/// One cell of the policy sweep.
#[derive(Debug, Clone)]
pub struct PolicyRow {
    /// Registry spec of the policy under test (`-` for the
    /// policy-oblivious controls).
    pub policy: String,
    /// System label (from [`ServerSystem::name`]).
    pub system: &'static str,
    /// Workload label.
    pub workload: &'static str,
    /// Offered load of the workload point.
    pub offered_rps: f64,
    /// Achieved throughput.
    pub achieved_rps: f64,
    /// Median sojourn.
    pub p50: SimDuration,
    /// p99 sojourn.
    pub p99: SimDuration,
    /// p99 sojourn of the short class (the bimodal story's casualty).
    pub p99_short: SimDuration,
    /// Completed requests.
    pub completed: u64,
    /// Worker preemptions (policies hand out per-dispatch slice grants).
    pub preemptions: u64,
}

/// The registry entries the sweep exercises — every policy shipped in
/// [`nicsched::PolicyRegistry::standard`], with parameterised grammar
/// where the defaults would be degenerate.
pub fn sweep_specs() -> Vec<PolicySpec> {
    [
        "fcfs",
        "cfcfs",
        "dfcfs",
        "srf",
        "srpt",
        "edf:deadline=50us",
        "class-priority:cutoff=10us",
        "wfq:w=4,1,1",
    ]
    .iter()
    .map(|s| PolicySpec::parse(s).expect("sweep spec must parse"))
    .collect()
}

/// The two workload points: the Figure 2 bimodal mix at moderate load
/// (tail story) and the Figure 3 fixed-1 µs saturating point (throughput
/// story).
fn workloads(scale: Scale) -> Vec<(&'static str, WorkloadSpec)> {
    let mut fig2 = scale.spec_seeded(350_000.0, ServiceDist::paper_bimodal(), 7);
    let mut fig3 = scale.spec_seeded(
        2_500_000.0,
        ServiceDist::Fixed(SimDuration::from_micros(1)),
        7,
    );
    if scale == Scale::Quick {
        // The smoke grid is ~50 cells; keep each one short.
        fig2.measure = SimDuration::from_millis(8);
        fig3.measure = SimDuration::from_millis(4);
    }
    vec![("fig2-bimodal", fig2), ("fig3-fixed-1us", fig3)]
}

/// The three assemblies with a pluggable central queue, under `policy`.
fn capable(policy: PolicySpec) -> Vec<SystemConfig> {
    vec![
        SystemConfig::Offload(OffloadConfig {
            policy,
            ..OffloadConfig::paper(4, 4)
        }),
        SystemConfig::Shinjuku(ShinjukuConfig {
            policy,
            ..ShinjukuConfig::paper(4)
        }),
        SystemConfig::MultiShinjuku(MultiShinjukuConfig {
            policy,
            ..MultiShinjukuConfig::split(10, 2)
        }),
    ]
}

/// The policy-oblivious controls: no central queue, nothing to plug in.
fn controls() -> Vec<SystemConfig> {
    vec![
        SystemConfig::Baseline(BaselineConfig {
            workers: 4,
            kind: BaselineKind::Rss,
        }),
        SystemConfig::RpcValet(RpcValetConfig { workers: 4 }),
    ]
}

fn row_from(
    policy: String,
    system: &'static str,
    workload: &'static str,
    m: &RunMetrics,
) -> PolicyRow {
    PolicyRow {
        policy,
        system,
        workload,
        offered_rps: m.offered_rps,
        achieved_rps: m.achieved_rps,
        p50: m.p50,
        p99: m.p99,
        p99_short: m.p99_short,
        completed: m.completed,
        preemptions: m.preemptions,
    }
}

/// Run the full policy × workload × assembly grid. Rows come back in
/// grid order (workload-major, then policy, then assembly, controls
/// last per workload) regardless of the worker count.
pub fn run(scale: Scale) -> Vec<PolicyRow> {
    let mut cells: Vec<(String, SystemConfig, &'static str, WorkloadSpec)> = Vec::new();
    for (wname, wspec) in workloads(scale) {
        for policy in sweep_specs() {
            for sys in capable(policy) {
                cells.push((policy.to_string(), sys, wname, wspec));
            }
        }
        for sys in controls() {
            cells.push(("-".to_string(), sys, wname, wspec));
        }
    }
    crate::sweep::par_map(&cells, |(policy, sys, wname, wspec)| {
        let m = sys.run(*wspec, ProbeConfig::disabled());
        row_from(policy.clone(), sys.name(), wname, &m)
    })
}

/// Render rows as an aligned table, one block per workload.
pub fn table(rows: &[PolicyRow]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let mut current = "";
    for r in rows {
        if r.workload != current {
            current = r.workload;
            let _ = writeln!(
                out,
                "\n## policies — {} @ {:.0} rps\n{:<28} {:<16} {:>12} {:>10} {:>10} {:>10} {:>9} {:>8}",
                r.workload,
                r.offered_rps,
                "policy",
                "system",
                "achieved",
                "p50",
                "p99",
                "p99_short",
                "completed",
                "preempt"
            );
        }
        let _ = writeln!(
            out,
            "{:<28} {:<16} {:>12.0} {:>10} {:>10} {:>10} {:>9} {:>8}",
            r.policy,
            r.system,
            r.achieved_rps,
            r.p50.to_string(),
            r.p99.to_string(),
            r.p99_short.to_string(),
            r.completed,
            r.preemptions
        );
    }
    out
}

/// Render rows as a JSON array (stable key order, no external
/// serializer; CI diffs this across `--jobs` values).
pub fn json(rows: &[PolicyRow]) -> String {
    use std::fmt::Write;
    let mut out = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "  {{\"policy\":\"{}\",\"system\":\"{}\",\"workload\":\"{}\",\"offered_rps\":{},\"achieved_rps\":{:.3},\"p50_ns\":{},\"p99_ns\":{},\"p99_short_ns\":{},\"completed\":{},\"preemptions\":{}}}",
            r.policy,
            r.system,
            r.workload,
            r.offered_rps,
            r.achieved_rps,
            r.p50.as_nanos(),
            r.p99.as_nanos(),
            r.p99_short.as_nanos(),
            r.completed,
            r.preemptions
        );
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push(']');
    out
}

/// Persist rows as CSV next to the figure outputs; returns the path.
/// Policy specs carry commas (`wfq:w=4,1,1`), so the column is quoted.
pub fn write_csv(rows: &[PolicyRow], dir: &std::path::Path) -> std::io::Result<std::path::PathBuf> {
    use std::fmt::Write;
    let mut out = String::from(
        "workload,system,policy,offered_rps,achieved_rps,p50_us,p99_us,p99_short_us,completed,preemptions\n",
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{},{},{},{:.0},{:.0},{:.3},{:.3},{:.3},{},{}",
            r.workload,
            r.system,
            csv_field(&r.policy),
            r.offered_rps,
            r.achieved_rps,
            r.p50.as_nanos() as f64 / 1e3,
            r.p99.as_nanos() as f64 / 1e3,
            r.p99_short.as_nanos() as f64 / 1e3,
            r.completed,
            r.preemptions
        );
    }
    std::fs::create_dir_all(dir)?;
    let path = dir.join("policies.csv");
    std::fs::write(&path, out)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn sweep_covers_the_registry_and_every_assembly() {
        let rows = run(Scale::Quick);
        let policies: BTreeSet<&str> = rows.iter().map(|r| r.policy.as_str()).collect();
        let systems: BTreeSet<&str> = rows.iter().map(|r| r.system).collect();
        let workloads: BTreeSet<&str> = rows.iter().map(|r| r.workload).collect();
        assert!(
            policies.len() >= 7, // 8 specs + the "-" control marker
            "expected the full registry in the sweep: {policies:?}"
        );
        for must in [
            "fcfs",
            "cfcfs",
            "dfcfs",
            "srpt",
            "edf:deadline=50us",
            "wfq:w=4,1,1",
        ] {
            assert!(policies.contains(must), "{must} missing: {policies:?}");
        }
        assert_eq!(
            systems.len(),
            5,
            "all five assemblies must appear: {systems:?}"
        );
        assert_eq!(workloads.len(), 2, "{workloads:?}");
        for r in &rows {
            assert!(
                r.completed > 0,
                "{}/{}/{} completed nothing",
                r.workload,
                r.system,
                r.policy
            );
        }
        // Informed policies act: srpt must hand out preemption grants on
        // the bimodal mix once it has learned the short/long split.
        let srpt_bimodal: u64 = rows
            .iter()
            .filter(|r| r.policy == "srpt" && r.workload == "fig2-bimodal")
            .map(|r| r.preemptions)
            .sum();
        assert!(srpt_bimodal > 0, "srpt never preempted on the bimodal mix");
    }

    #[test]
    fn rows_are_byte_identical_at_any_job_count() {
        // The satellite guarantee behind CI's `--jobs` diff: every
        // registry entry's cells are independent seeded sims, so the
        // fan-out width cannot perturb a single byte of output.
        crate::sweep::set_jobs(1);
        let serial = json(&run(Scale::Quick));
        crate::sweep::set_jobs(4);
        let parallel = json(&run(Scale::Quick));
        crate::sweep::set_jobs(0);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn renderings_carry_every_row() {
        let rows = vec![
            row_from(
                "wfq:w=4,1,1".into(),
                "shinjuku",
                "fig2-bimodal",
                &test_metrics(),
            ),
            row_from("-".into(), "rss", "fig2-bimodal", &test_metrics()),
        ];
        let t = table(&rows);
        assert!(t.contains("wfq:w=4,1,1") && t.contains("rss"));
        let j = json(&rows);
        assert_eq!(j.matches("\"policy\"").count(), rows.len());
        let dir = std::env::temp_dir().join("mindgap-policies-test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = write_csv(&rows, &dir).unwrap();
        let csv = std::fs::read_to_string(path).unwrap();
        assert!(
            csv.contains("\"wfq:w=4,1,1\""),
            "comma-bearing policy must be quoted: {csv}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn test_metrics() -> RunMetrics {
        RunMetrics {
            offered_rps: 1e5,
            achieved_rps: 1e5,
            p50: SimDuration::from_micros(5),
            p99: SimDuration::from_micros(20),
            p999: SimDuration::from_micros(40),
            p99_short: SimDuration::from_micros(18),
            p99_long: SimDuration::from_micros(40),
            mean: SimDuration::from_micros(7),
            completed: 100,
            dropped: 0,
            preemptions: 3,
            worker_utilization: 0.42,
            stages: None,
            faults: workload::FaultMetrics::default(),
        }
    }
}
