//! # experiments — the paper's evaluation, regenerable
//!
//! One module per experiment class:
//!
//! * [`figures`] — Figures 2–6 exactly as captioned in §4.
//! * [`microbench`] — the paper's inline numbers (§1, §2.2, §3.3, §3.4.4).
//! * [`ablation`] — the §5.1/§5.2 proposals quantified (comm path,
//!   preemption path, DDIO placement) plus the §2.1 baseline comparison.
//! * [`extensions`] — further claims made measurable: multi-dispatcher
//!   scaling (§2.2(3)), Elastic RSS (§5.1(1)), the slice-length trade,
//!   programmable policies (§5.1(4)), heavier-tailed dispersion,
//!   dual-socket DDIO, JIT pacing, worker scaling.
//! * [`feedback_gap`] — the titular isolation experiment: scheduling
//!   quality as a pure function of feedback-path latency.
//! * [`resilience`] — the fault-injection grid: loss rate × fault type
//!   across every assembly, with request-ledger reconciliation.
//! * [`policies`] — the registry sweep: every pluggable scheduling
//!   policy × the Fig. 2/3 workloads × every assembly.
//! * [`sweep`] / [`report`] — the load-sweep driver and table/CSV output.
//!
//! Each figure has a binary (`cargo run --release -p experiments --bin
//! fig2` …) that prints the table and writes `results/<id>.csv`; `--bin
//! all` regenerates everything.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod extensions;
pub mod feedback_gap;
pub mod figures;
pub mod microbench;
pub mod plot;
pub mod policies;
pub mod recovery;
pub mod report;
pub mod resilience;
pub mod sweep;

pub use figures::Scale;
pub use report::{Curve, Figure};

/// Default output directory for CSV results, relative to the workspace.
pub fn results_dir() -> std::path::PathBuf {
    std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("results")
}

/// Print a figure's table and persist its CSV, returning the CSV path.
/// With `--plot` in the process arguments, also renders an ASCII chart.
pub fn emit(figure: &Figure) -> std::path::PathBuf {
    println!("{}", figure.table());
    if std::env::args().any(|a| a == "--plot") {
        println!("{}", plot::ascii(figure, 64, 16));
    }
    let path = figure
        .write_csv(&results_dir())
        .expect("writing results CSV");
    println!("wrote {}\n", path.display());
    path
}
