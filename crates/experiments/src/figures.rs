//! The paper's evaluation, experiment by experiment (§4, Figures 2–6).
//!
//! Every function regenerates one figure as labelled latency-throughput
//! curves (or throughput-vs-outstanding for Figure 3) using the same
//! workloads, worker counts and outstanding caps as the paper's captions.
//! `Scale` trades measurement length for runtime so the test suite can
//! exercise every experiment quickly while binaries run the full version.

use nicsched::PolicySpec;
use sim_core::SimDuration;
use systems::offload::OffloadConfig;
use systems::shinjuku::ShinjukuConfig;
use systems::{ProbeConfig, ServerSystem};
use workload::{ServiceDist, WorkloadSpec};

use crate::report::Figure;
use crate::sweep::{linspace, run_grid, GridCurve};

/// Measurement scale.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Short windows, coarse sweeps — seconds per figure, used in tests.
    Quick,
    /// Paper-resolution sweeps — the binaries' default.
    Full,
}

impl Scale {
    /// The scale's measurement windows (warmup, measure).
    pub fn windows(self) -> (SimDuration, SimDuration) {
        match self {
            Scale::Quick => (SimDuration::from_millis(2), SimDuration::from_millis(15)),
            Scale::Full => (SimDuration::from_millis(10), SimDuration::from_millis(80)),
        }
    }

    /// The shared base spec for one figure at this scale: windows and body
    /// size are fixed per scale, the seed per experiment family; sweeps
    /// derive per-point loads with [`WorkloadSpec::at`].
    pub fn spec_seeded(self, offered: f64, dist: ServiceDist, seed: u64) -> WorkloadSpec {
        let (warmup, measure) = self.windows();
        WorkloadSpec {
            offered_rps: offered,
            dist,
            body_len: 64,
            warmup,
            measure,
            seed,
        }
    }

    fn spec(self, offered: f64, dist: ServiceDist) -> WorkloadSpec {
        self.spec_seeded(offered, dist, 7)
    }

    fn points(self, full: usize) -> usize {
        match self {
            Scale::Quick => (full / 3).max(4),
            Scale::Full => full,
        }
    }
}

/// **Figure 2** — bimodal 99.5% @ 5 µs / 0.5% @ 100 µs, 10 µs slice;
/// Shinjuku 3 workers vs Shinjuku-Offload 4 workers (≤ 4 outstanding);
/// p99 vs throughput up to 600 kRPS.
pub fn fig2(scale: Scale) -> Figure {
    fig2_with(scale, None)
}

/// [`fig2`] with an optional scheduler-policy override (`--policy`) on
/// both dispatched assemblies. `None` is the paper's FCFS and is
/// bit-identical to [`fig2`]; an override tags the curve labels with the
/// policy spec so CSVs stay self-describing.
pub fn fig2_with(scale: Scale, policy: Option<PolicySpec>) -> Figure {
    let base = scale.spec(0.0, ServiceDist::paper_bimodal());
    let loads = linspace(50_000.0, 600_000.0, scale.points(12));
    let shinjuku = ShinjukuConfig {
        policy: policy.unwrap_or(PolicySpec::FCFS),
        ..ShinjukuConfig::paper(3)
    };
    let offload = OffloadConfig {
        policy: policy.unwrap_or(PolicySpec::FCFS),
        ..OffloadConfig::paper(4, 4)
    };
    Figure {
        id: "fig2".into(),
        title: "bimodal 99.5%@5us / 0.5%@100us, slice 10us; Shinjuku 3w vs Offload 4w (cap 4)"
            .into(),
        curves: run_grid(
            &loads,
            base,
            vec![
                GridCurve::system(tagged("Shinjuku", policy), shinjuku),
                GridCurve::system(tagged("Shinjuku-Offload", policy), offload),
            ],
        ),
    }
}

/// Append a policy spec to a curve label when one was overridden.
fn tagged(label: &str, policy: Option<PolicySpec>) -> String {
    match policy {
        Some(p) => format!("{label} [{p}]"),
        None => label.to_string(),
    }
}

/// **Figure 3** — fixed 1 µs; Shinjuku-Offload only; throughput as the
/// outstanding-requests cap sweeps 1..=7, for 4 and 16 workers. The curve
/// reports the *achieved* throughput under heavy offered load (the
/// saturation plateau the paper plots).
pub fn fig3(scale: Scale) -> Figure {
    fig3_with(scale, None)
}

/// [`fig3`] with an optional scheduler-policy override; `None` matches
/// [`fig3`] bit for bit.
pub fn fig3_with(scale: Scale, policy: Option<PolicySpec>) -> Figure {
    // Offer well beyond any plateau so achieved == capacity.
    let base = scale.spec(2_500_000.0, ServiceDist::Fixed(SimDuration::from_micros(1)));
    let caps: Vec<f64> = (1..=7).map(f64::from).collect();
    let curve_for = |workers: usize| {
        GridCurve::new(
            tagged(&format!("{workers} workers"), policy),
            move |cap, spec| {
                let cfg = OffloadConfig {
                    time_slice: None,
                    policy: policy.unwrap_or(PolicySpec::FCFS),
                    ..OffloadConfig::paper(workers, cap as u32)
                };
                let mut m = cfg.run(spec, ProbeConfig::disabled());
                // Re-purpose offered_rps to carry the x-axis value
                // (outstanding requests) for reporting.
                m.offered_rps = cap;
                m
            },
        )
    };
    Figure {
        id: "fig3".into(),
        title: "fixed 1us; Offload saturated throughput vs outstanding cap (x = cap)".into(),
        curves: run_grid(&caps, base, vec![curve_for(16), curve_for(4)]),
    }
}

/// **Figure 4** — fixed 5 µs, preemption off; Shinjuku 3 workers vs
/// Offload 4 workers (≤ 4 outstanding); p99 vs throughput to 700 kRPS.
pub fn fig4(scale: Scale) -> Figure {
    let base = scale.spec(0.0, ServiceDist::Fixed(SimDuration::from_micros(5)));
    let loads = linspace(50_000.0, 700_000.0, scale.points(14));
    Figure {
        id: "fig4".into(),
        title: "fixed 5us, no preemption; Shinjuku 3w vs Offload 4w (cap 4)".into(),
        curves: run_grid(
            &loads,
            base,
            vec![
                GridCurve::system(
                    "Shinjuku",
                    ShinjukuConfig {
                        workers: 3,
                        time_slice: None,
                        ..ShinjukuConfig::paper(3)
                    },
                ),
                GridCurve::system(
                    "Shinjuku-Offload",
                    OffloadConfig {
                        time_slice: None,
                        ..OffloadConfig::paper(4, 4)
                    },
                ),
            ],
        ),
    }
}

/// **Figure 5** — fixed 100 µs; Shinjuku 15 workers vs Offload 16 workers
/// (≤ 2 outstanding); p99 vs throughput to 150 kRPS.
pub fn fig5(scale: Scale) -> Figure {
    let base = scale.spec(0.0, ServiceDist::Fixed(SimDuration::from_micros(100)));
    let loads = linspace(20_000.0, 160_000.0, scale.points(15));
    Figure {
        id: "fig5".into(),
        title: "fixed 100us, no preemption; Shinjuku 15w vs Offload 16w (cap 2)".into(),
        curves: run_grid(
            &loads,
            base,
            vec![
                GridCurve::system(
                    "Shinjuku",
                    ShinjukuConfig {
                        workers: 15,
                        time_slice: None,
                        ..ShinjukuConfig::paper(15)
                    },
                ),
                GridCurve::system(
                    "Shinjuku-Offload",
                    OffloadConfig {
                        time_slice: None,
                        ..OffloadConfig::paper(16, 2)
                    },
                ),
            ],
        ),
    }
}

/// **Figure 6** — fixed 1 µs; Shinjuku 15 workers vs Offload 16 workers
/// (≤ 5 outstanding); p99 vs throughput to 4 MRPS. The offload's ARM
/// dispatcher is the bottleneck; Shinjuku "greatly outperforms".
pub fn fig6(scale: Scale) -> Figure {
    let base = scale.spec(0.0, ServiceDist::Fixed(SimDuration::from_micros(1)));
    let loads = linspace(250_000.0, 4_000_000.0, scale.points(16));
    Figure {
        id: "fig6".into(),
        title: "fixed 1us, no preemption; Shinjuku 15w vs Offload 16w (cap 5)".into(),
        curves: run_grid(
            &loads,
            base,
            vec![
                GridCurve::system(
                    "Shinjuku",
                    ShinjukuConfig {
                        workers: 15,
                        time_slice: None,
                        ..ShinjukuConfig::paper(15)
                    },
                ),
                GridCurve::system(
                    "Shinjuku-Offload",
                    OffloadConfig {
                        time_slice: None,
                        ..OffloadConfig::paper(16, 5)
                    },
                ),
            ],
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{knee_throughput, peak_throughput};
    use workload::RunMetrics;

    #[test]
    fn fig2_shape_offload_extends_further() {
        let f = fig2(Scale::Quick);
        let slo = SimDuration::from_micros(500);
        let shin = knee_throughput(&f.curves[0].points, slo);
        let off = knee_throughput(&f.curves[1].points, slo);
        assert!(
            off > shin,
            "offload (4w) should sustain more bimodal load than shinjuku (3w): {off:.0} vs {shin:.0}"
        );
    }

    #[test]
    fn fig3_shape_throughput_rises_then_plateaus() {
        let f = fig3(Scale::Quick);
        let w16 = &f.curves[0].points;
        let w4 = &f.curves[1].points;

        // 4 workers: the queuing optimization must raise throughput by a
        // large factor before leveling out (the paper reports +250%; our
        // calibrated round trip gives roughly +150–200%).
        let first4 = w4.first().unwrap().achieved_rps;
        let peak4 = peak_throughput(w4);
        assert!(
            peak4 > first4 * 1.5,
            "4 workers: cap must raise throughput a lot ({first4:.0} -> {peak4:.0})"
        );
        let last4 = w4.last().unwrap().achieved_rps;
        let second_last4 = w4[w4.len() - 2].achieved_rps;
        assert!(
            (last4 - second_last4).abs() / last4 < 0.10,
            "4 workers: should level out ({second_last4:.0} vs {last4:.0})"
        );

        // 16 workers: monotone non-decreasing (within noise) and reaching
        // the plateau at a *lower* cap than 4 workers — with 16 concurrent
        // requests the 5.1us round trip is already hidden, so the curve
        // starts near the ARM TX plateau. (The paper's +88% implies a much
        // larger effective round trip in the prototype; see EXPERIMENTS.md.)
        let plateau16 = peak_throughput(w16);
        let plateau4 = peak_throughput(w4);
        for pair in w16.windows(2) {
            assert!(
                pair[1].achieved_rps > pair[0].achieved_rps * 0.93,
                "16 workers: throughput must not collapse as cap grows"
            );
        }
        assert!(
            (plateau16 - plateau4).abs() / plateau4 < 0.15,
            "both worker counts hit the same ARM dispatcher plateau: {plateau16:.0} vs {plateau4:.0}"
        );
        let reach = |pts: &[RunMetrics], plateau: f64| {
            pts.iter()
                .position(|m| m.achieved_rps >= 0.95 * plateau)
                .unwrap()
                + 1
        };
        assert!(
            reach(w16, plateau16) <= reach(w4, plateau4),
            "16 workers should plateau at a lower cap"
        );
    }

    #[test]
    fn fig4_shape_offload_wins_with_extra_worker() {
        let f = fig4(Scale::Quick);
        let slo = SimDuration::from_micros(400);
        let shin = knee_throughput(&f.curves[0].points, slo);
        let off = knee_throughput(&f.curves[1].points, slo);
        assert!(
            off > shin * 1.1,
            "4 workers should beat 3 on 5us requests: {off:.0} vs {shin:.0}"
        );
    }

    #[test]
    fn fig6_shape_shinjuku_greatly_outperforms() {
        let f = fig6(Scale::Quick);
        let shin_peak = peak_throughput(&f.curves[0].points);
        let off_peak = peak_throughput(&f.curves[1].points);
        assert!(
            shin_peak > off_peak * 1.8,
            "host dispatcher should dwarf the ARM dispatcher on 1us requests: {shin_peak:.0} vs {off_peak:.0}"
        );
    }
}
