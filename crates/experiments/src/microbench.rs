//! The paper's inline measurements, reproduced as a table:
//!
//! * §3.4.4 — timer set cost 610 → 40 cycles (−93%), timer interrupt
//!   delivery 4193 → 1272 cycles (−70%).
//! * §3.3 — ARM ↔ host one-way communication 2.56 µs.
//! * §2.2 — Shinjuku's inter-thread communication adds ≈ 2 µs of tail
//!   latency for requests with minimal application work.
//! * §1 — a host dispatcher core scales to ≈ 5 M requests/second.

use cpu_model::{ContextCosts, CoreSpec, TimerMode, CROSS_SOCKET_PENALTY};
use nic_model::{packet_lines, Ddio, Placement};
use nicsched::{params, NicProfile, SchedCompute};
use sim_core::SimDuration;
use systems::baseline::{BaselineConfig, BaselineKind};
use systems::shinjuku::ShinjukuConfig;
use systems::{ProbeConfig, ServerSystem};
use workload::{ServiceDist, WorkloadSpec};

/// One row of the microbenchmark table.
#[derive(Debug, Clone)]
pub struct MicrobenchRow {
    /// What is being measured.
    pub name: String,
    /// The paper's reported value.
    pub paper: String,
    /// What this reproduction measures/encodes.
    pub measured: String,
}

/// Produce every microbenchmark row.
pub fn run() -> Vec<MicrobenchRow> {
    let mut rows = Vec::new();
    let host = CoreSpec::host_x86();

    // Timer costs are encoded from the paper; report them with the
    // derived wall-clock numbers at 2.3 GHz.
    rows.push(MicrobenchRow {
        name: "timer set, Linux signal path".into(),
        paper: "610 cycles".into(),
        measured: format!(
            "{} cycles = {}",
            TimerMode::LinuxSignal.set_cycles(),
            TimerMode::LinuxSignal.set_cost(&host)
        ),
    });
    rows.push(MicrobenchRow {
        name: "timer set, Dune-mapped APIC".into(),
        paper: "40 cycles (-93%)".into(),
        measured: format!(
            "{} cycles = {} ({:.0}% reduction)",
            TimerMode::DuneMapped.set_cycles(),
            TimerMode::DuneMapped.set_cost(&host),
            100.0
                * (1.0
                    - TimerMode::DuneMapped.set_cycles() as f64
                        / TimerMode::LinuxSignal.set_cycles() as f64)
        ),
    });
    rows.push(MicrobenchRow {
        name: "timer interrupt delivery, Linux".into(),
        paper: "4193 cycles".into(),
        measured: format!(
            "{} cycles = {}",
            TimerMode::LinuxSignal.deliver_cycles(),
            TimerMode::LinuxSignal.deliver_cost(&host)
        ),
    });
    rows.push(MicrobenchRow {
        name: "timer interrupt delivery, posted (Dune)".into(),
        paper: "1272 cycles (-70%)".into(),
        measured: format!(
            "{} cycles = {} ({:.0}% reduction)",
            TimerMode::DuneMapped.deliver_cycles(),
            TimerMode::DuneMapped.deliver_cost(&host),
            100.0
                * (1.0
                    - TimerMode::DuneMapped.deliver_cycles() as f64
                        / TimerMode::LinuxSignal.deliver_cycles() as f64)
        ),
    });

    // ARM <-> host one-way: TX-stage build + transport on the Stingray
    // profile must reproduce 2.56 us.
    let p = NicProfile::stingray();
    let tx_build = p.compute.stage_cost(params::ARM_TX_BUILD_CYCLES);
    rows.push(MicrobenchRow {
        name: "ARM CPU -> host CPU one-way (construct + traverse)".into(),
        paper: "2.56 us".into(),
        measured: format!("{}", tx_build + p.to_worker),
    });
    rows.push(MicrobenchRow {
        name: "host CPU -> ARM CPU one-way (construct + traverse)".into(),
        paper: "2.56 us".into(),
        measured: format!("{}", params::WORKER_TX_COST + p.from_worker),
    });
    if let SchedCompute::ArmCores(arm) = p.compute {
        rows.push(MicrobenchRow {
            name: "offload dispatcher bottleneck stage (ARM TX build)".into(),
            paper: "(implied: offload saturates ~1.4-1.5M on 1us requests)".into(),
            measured: format!(
                "{} per packet = {:.2}M pkts/s",
                arm.cycles(params::ARM_TX_BUILD_CYCLES),
                1.0 / arm.cycles(params::ARM_TX_BUILD_CYCLES).as_secs_f64() / 1e6
            ),
        });
    }

    // Model-internal cost table (fitted constants, reported for
    // completeness; see DESIGN.md §4 for provenance).
    let ctx = ContextCosts::default();
    rows.push(MicrobenchRow {
        name: "context spawn / save / restore".into(),
        paper: "(not reported; Shinjuku-class user-level contexts)".into(),
        measured: format!(
            "{} / {} / {} on the host",
            ctx.spawn(&host),
            ctx.save(&host),
            ctx.restore(&host)
        ),
    });
    let ddio = Ddio::classic(4096);
    let lines = packet_lines(148);
    rows.push(MicrobenchRow {
        name: "first touch of a 148B packet (DRAM / LLC / L1)".into(),
        paper: "(§5.2: DDIO to LLC; L1 proposal)".into(),
        measured: format!(
            "{} / {} / {}",
            ddio.first_touch(Placement::Dram, lines),
            ddio.first_touch(Placement::Llc, lines),
            ddio.first_touch(Placement::L1, lines)
        ),
    });
    rows.push(MicrobenchRow {
        name: "cross-socket line penalty / work-steal cost".into(),
        paper: "(§1 multi-socket warning; §2.2(4) stealing overhead)".into(),
        measured: format!(
            "{CROSS_SOCKET_PENALTY} per line / {} per steal",
            params::WORK_STEAL_COST
        ),
    });

    // Inter-thread communication overhead: p99 of a near-zero-work request
    // through Shinjuku (networker + dispatcher + worker threads) vs
    // run-to-completion RSS on one core, both at trivial load.
    let tiny = |seed| WorkloadSpec {
        offered_rps: 5_000.0,
        dist: ServiceDist::Fixed(SimDuration::from_nanos(100)),
        body_len: 64,
        warmup: SimDuration::from_millis(2),
        measure: SimDuration::from_millis(30),
        seed,
    };
    let shin = ShinjukuConfig {
        workers: 2,
        time_slice: None,
        ..ShinjukuConfig::paper(2)
    }
    .run(tiny(3), ProbeConfig::disabled());
    let rtc = BaselineConfig {
        workers: 2,
        kind: BaselineKind::Rss,
    }
    .run(tiny(3), ProbeConfig::disabled());
    let delta = shin.p99.saturating_sub(rtc.p99);
    rows.push(MicrobenchRow {
        name: "inter-thread communication added tail (min-work requests)".into(),
        paper: "~2 us (§2.2)".into(),
        measured: format!(
            "shinjuku p99 {} - run-to-completion p99 {} = {delta}",
            shin.p99, rtc.p99
        ),
    });

    // Host dispatcher capacity: overload 15 workers with 1us requests and
    // watch the achieved throughput pin at the dispatcher, not the workers.
    let heavy = WorkloadSpec {
        offered_rps: 8_000_000.0,
        dist: ServiceDist::Fixed(SimDuration::from_micros(1)),
        body_len: 64,
        warmup: SimDuration::from_millis(2),
        measure: SimDuration::from_millis(25),
        seed: 5,
    };
    let m = ShinjukuConfig {
        workers: 15,
        time_slice: None,
        ..ShinjukuConfig::paper(15)
    }
    .run(heavy, ProbeConfig::disabled());
    rows.push(MicrobenchRow {
        name: "host dispatcher capacity (15 workers, 1us requests)".into(),
        paper: "~5M requests/second (§1)".into(),
        measured: format!("{:.2}M req/s achieved", m.achieved_rps / 1e6),
    });

    // §1's bandwidth framing of the same cap: "2.5 Gbps and 41 Gbps of
    // Ethernet traffic if we assume 64 B and 1 KiB requests".
    let gbps = |rps: f64, body: f64| rps * body * 8.0 / 1e9;
    rows.push(MicrobenchRow {
        name: "dispatcher cap as Ethernet bandwidth (64B / 1KiB requests)".into(),
        paper: "2.5 Gbps / 41 Gbps (§1)".into(),
        measured: format!(
            "{:.1} Gbps / {:.1} Gbps at the measured {:.2}M req/s",
            gbps(m.achieved_rps, 64.0),
            gbps(m.achieved_rps, 1024.0),
            m.achieved_rps / 1e6
        ),
    });

    rows
}

/// Render rows as an aligned table.
pub fn table(rows: &[MicrobenchRow]) -> String {
    use std::fmt::Write;
    let name_w = rows.iter().map(|r| r.name.len()).max().unwrap_or(10);
    let paper_w = rows.iter().map(|r| r.paper.len()).max().unwrap_or(10);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:name_w$} | {:paper_w$} | measured",
        "microbenchmark", "paper"
    );
    let _ = writeln!(out, "{:-<name_w$}-+-{:-<paper_w$}-+---------", "", "");
    for r in rows {
        let _ = writeln!(
            out,
            "{:name_w$} | {:paper_w$} | {}",
            r.name, r.paper, r.measured
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_rows_present() {
        let rows = run();
        assert_eq!(rows.len(), 13);
        let t = table(&rows);
        assert!(t.contains("2.56"));
        assert!(t.contains("Dune"));
    }

    #[test]
    fn comm_overhead_is_on_the_order_of_2us() {
        let rows = run();
        let row = rows
            .iter()
            .find(|r| r.name.contains("inter-thread"))
            .unwrap();
        // Parse back the delta from the formatted string is brittle;
        // re-measure directly instead.
        let tiny = |seed| WorkloadSpec {
            offered_rps: 5_000.0,
            dist: ServiceDist::Fixed(SimDuration::from_nanos(100)),
            body_len: 64,
            warmup: SimDuration::from_millis(2),
            measure: SimDuration::from_millis(30),
            seed,
        };
        let shin = ShinjukuConfig {
            workers: 2,
            time_slice: None,
            ..ShinjukuConfig::paper(2)
        }
        .run(tiny(3), ProbeConfig::disabled());
        let rtc = BaselineConfig {
            workers: 2,
            kind: BaselineKind::Rss,
        }
        .run(tiny(3), ProbeConfig::disabled());
        let delta = shin.p99.saturating_sub(rtc.p99);
        assert!(
            delta >= SimDuration::from_nanos(800) && delta <= SimDuration::from_micros(4),
            "added tail {delta} should be ~2us (row: {})",
            row.measured
        );
    }

    #[test]
    fn dispatcher_capacity_near_5m() {
        let rows = run();
        let row = rows
            .iter()
            .find(|r| r.name.contains("dispatcher capacity"))
            .unwrap();
        assert!(row.measured.contains("M req/s"));
    }

    #[test]
    fn bandwidth_framing_matches_section_one_arithmetic() {
        // The paper's 2.5/41 Gbps figures assume exactly 5M req/s; our
        // measured cap is ~86% of that, so the bandwidths scale likewise.
        let rows = run();
        let row = rows
            .iter()
            .find(|r| r.name.contains("Ethernet bandwidth"))
            .unwrap();
        assert!(row.measured.contains("Gbps"), "{}", row.measured);
    }
}
