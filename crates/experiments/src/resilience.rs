//! Resilience under injected faults: loss rate × fault type, per system.
//!
//! The paper's scheduling argument assumes requests arrive, run, and
//! answer; this experiment measures what each assembly does when they
//! don't. Every system runs the same workload under a grid of wire-loss
//! rates crossed with fault scenarios (loss only, a mid-run worker crash,
//! a feedback blackout), with the client retry policy on everywhere. Per
//! cell we report goodput (first-completions over launched), tail
//! latency, retry volume, drop decomposition, and — for the informed
//! dispatchers — the measured fallback time: how long the dispatcher ran
//! in degraded RSS-hash mode because its feedback was stale.
//!
//! Every run closes the request ledger: `launched = completed + abandoned
//! + still-open`, with lost/shed/stranded attempts itemised. A nonzero
//! `unaccounted` column is a bug, and the smoke binary asserts it is zero.

use sim_core::{ProbeConfig, SimDuration, SimTime};
use systems::baseline::{BaselineConfig, BaselineKind};
use systems::multi_shinjuku::MultiShinjukuConfig;
use systems::offload::OffloadConfig;
use systems::rpcvalet::RpcValetConfig;
use systems::shinjuku::ShinjukuConfig;
use systems::{ResilienceConfig, ServerSystem, StalenessPolicy, SystemConfig};
use workload::{RetryPolicy, RunMetrics, ServiceDist, WorkloadSpec};

use crate::figures::Scale;

use sim_core::FaultConfig;

/// Fault scenario applied on top of a wire-loss rate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scenario {
    /// Random wire loss only.
    Loss,
    /// Wire loss plus one worker crashing 40% into the run.
    Crash,
    /// Wire loss plus a feedback blackout over the middle fifth of the
    /// run (informed dispatchers degrade to hashing; uninformed systems
    /// are unaffected by construction).
    Blackout,
}

impl Scenario {
    /// Stable label for tables and CSV.
    pub fn label(&self) -> &'static str {
        match self {
            Scenario::Loss => "loss",
            Scenario::Crash => "loss+crash",
            Scenario::Blackout => "loss+blackout",
        }
    }

    fn faults(&self, loss: f64, horizon: SimTime) -> FaultConfig {
        let base = FaultConfig::default().with_wire_loss(loss);
        let h = horizon.as_nanos();
        match self {
            Scenario::Loss => base,
            Scenario::Crash => base.with_crash(1, SimTime::from_nanos(h * 2 / 5)),
            Scenario::Blackout => base.with_blackout(
                SimTime::from_nanos(h * 2 / 5),
                SimTime::from_nanos(h * 3 / 5),
            ),
        }
    }
}

/// One cell of the resilience grid.
#[derive(Debug, Clone)]
pub struct ResilienceRow {
    /// System label (from [`ServerSystem::name`]).
    pub system: &'static str,
    /// Fault scenario label.
    pub scenario: &'static str,
    /// Random wire-loss probability.
    pub loss: f64,
    /// First-completions over launched requests.
    pub goodput: f64,
    /// p99 sojourn of completed requests.
    pub p99: SimDuration,
    /// Client retransmissions.
    pub retries: u64,
    /// Requests the client gave up on after exhausting retries.
    pub abandoned: u64,
    /// Frames lost on the wire (both directions).
    pub link_lost: u64,
    /// Frames dropped at full NIC rings plus shed admissions.
    pub dropped: u64,
    /// Attempts stranded inside crashed workers.
    pub stranded: u64,
    /// Time the dispatcher spent in degraded (hash-fallback) mode.
    pub fallback: SimDuration,
    /// Request-ledger residue — must be zero.
    pub unaccounted: i64,
}

fn systems_under_test(scale: Scale) -> Vec<SystemConfig> {
    systems_under_test_with(scale, None)
}

fn systems_under_test_with(
    scale: Scale,
    policy: Option<nicsched::PolicySpec>,
) -> Vec<SystemConfig> {
    let _ = scale;
    let policy = policy.unwrap_or(nicsched::PolicySpec::FCFS);
    vec![
        SystemConfig::Offload(OffloadConfig {
            policy,
            ..OffloadConfig::paper(4, 4)
        }),
        SystemConfig::Shinjuku(ShinjukuConfig {
            policy,
            ..ShinjukuConfig::paper(4)
        }),
        SystemConfig::Baseline(BaselineConfig {
            workers: 4,
            kind: BaselineKind::Rss,
        }),
        SystemConfig::RpcValet(RpcValetConfig { workers: 4 }),
        SystemConfig::MultiShinjuku(MultiShinjukuConfig {
            policy,
            ..MultiShinjukuConfig::split(10, 2)
        }),
    ]
}

fn spec_for(scale: Scale) -> WorkloadSpec {
    let (warmup, measure) = match scale {
        Scale::Quick => (SimDuration::from_millis(2), SimDuration::from_millis(10)),
        Scale::Full => (SimDuration::from_millis(5), SimDuration::from_millis(40)),
    };
    WorkloadSpec {
        offered_rps: 250_000.0,
        dist: ServiceDist::paper_bimodal(),
        body_len: 64,
        warmup,
        measure,
        seed: 7,
    }
}

fn loss_rates(scale: Scale) -> Vec<f64> {
    match scale {
        Scale::Quick => vec![0.0, 0.01],
        Scale::Full => vec![0.0, 0.001, 0.01, 0.05],
    }
}

fn cell(sys: &SystemConfig, spec: WorkloadSpec, scenario: Scenario, loss: f64) -> ResilienceRow {
    let res = ResilienceConfig {
        faults: scenario.faults(loss, spec.horizon()),
        retry: Some(RetryPolicy::paper_default()),
        admission: nicsched::AdmissionPolicy::Open,
        fallback: Some(StalenessPolicy::paper_default()),
        ..ResilienceConfig::default()
    };
    let m = sys.run_resilient(spec, ProbeConfig::disabled(), res);
    row_from(sys.name(), scenario, loss, &m)
}

fn row_from(system: &'static str, scenario: Scenario, loss: f64, m: &RunMetrics) -> ResilienceRow {
    let f = &m.faults;
    ResilienceRow {
        system,
        scenario: scenario.label(),
        loss,
        goodput: m.goodput_ratio(),
        p99: m.p99,
        retries: f.retries,
        abandoned: f.abandoned,
        link_lost: f.link_lost(),
        dropped: f.ring_dropped + f.shed,
        stranded: f.stranded,
        fallback: SimDuration::from_nanos(f.fallback_ns),
        unaccounted: f.unaccounted(),
    }
}

/// Run the full loss-rate × fault-type grid over every assembly. Cells
/// are independent seeded runs, so the grid fans out over the sweep pool
/// (`--jobs`) with rows returned in grid order.
pub fn run(scale: Scale) -> Vec<ResilienceRow> {
    run_with(scale, None)
}

/// [`run`] with an optional scheduler-policy override applied to every
/// policy-capable assembly (`--policy`); `None` matches [`run`] exactly.
pub fn run_with(scale: Scale, policy: Option<nicsched::PolicySpec>) -> Vec<ResilienceRow> {
    let spec = spec_for(scale);
    let mut cells = Vec::new();
    for sys in systems_under_test_with(scale, policy) {
        for scenario in [Scenario::Loss, Scenario::Crash, Scenario::Blackout] {
            for &loss in &loss_rates(scale) {
                cells.push((sys, scenario, loss));
            }
        }
    }
    crate::sweep::par_map(&cells, |&(sys, scenario, loss)| {
        cell(&sys, spec, scenario, loss)
    })
}

/// One loss+crash point per system with probing on — the CI smoke body.
/// Panics if any system leaks a request from its ledger.
pub fn smoke() -> Vec<ResilienceRow> {
    smoke_checked(false)
}

/// The smoke body with runtime invariant checking optionally enabled (the
/// "invcheck" pass). The rows must be bit-identical either way — CI runs
/// both and diffs the JSON — but the checked run additionally audits
/// engine causality, ring bounds and ledger conservation on every event
/// and panics with a violation report if the model misbehaves.
pub fn smoke_checked(invariants: bool) -> Vec<ResilienceRow> {
    let spec = spec_for(Scale::Quick);
    let mut rows = Vec::new();
    for sys in systems_under_test(Scale::Quick) {
        let mut res = ResilienceConfig {
            faults: Scenario::Crash.faults(0.01, spec.horizon()),
            retry: Some(RetryPolicy::paper_default()),
            admission: nicsched::AdmissionPolicy::Open,
            fallback: Some(StalenessPolicy::paper_default()),
            ..ResilienceConfig::default()
        };
        if invariants {
            res = res.with_invariants();
        }
        let m = sys.run_resilient(spec, ProbeConfig::enabled(), res);
        assert!(
            m.stages.is_some(),
            "{}: probed smoke run must report stages",
            sys.name()
        );
        let row = row_from(sys.name(), Scenario::Crash, 0.01, &m);
        assert_eq!(
            row.unaccounted,
            0,
            "{}: request ledger leaks under loss+crash: {:?}",
            sys.name(),
            m.faults
        );
        rows.push(row);
    }
    rows
}

/// Render rows as an aligned table.
pub fn table(rows: &[ResilienceRow]) -> String {
    use std::fmt::Write;
    let mut out = String::from(
        "## resilience — 250k rps paper bimodal: goodput / tail / recovery under injected faults\n",
    );
    let _ = writeln!(
        out,
        "{:<16} {:<14} {:>6} {:>8} {:>10} {:>8} {:>7} {:>7} {:>7} {:>6} {:>10} {:>6}",
        "system",
        "scenario",
        "loss%",
        "goodput",
        "p99",
        "retries",
        "abandon",
        "lost",
        "dropped",
        "strand",
        "fallback",
        "unacct"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<16} {:<14} {:>6.2} {:>8.4} {:>10} {:>8} {:>7} {:>7} {:>7} {:>6} {:>10} {:>6}",
            r.system,
            r.scenario,
            r.loss * 100.0,
            r.goodput,
            r.p99.to_string(),
            r.retries,
            r.abandoned,
            r.link_lost,
            r.dropped,
            r.stranded,
            r.fallback.to_string(),
            r.unaccounted
        );
    }
    out
}

/// Render rows as a JSON array (no external serializer: every field is a
/// number or a fixed label, so the encoding is trivial and stable).
pub fn json(rows: &[ResilienceRow]) -> String {
    use std::fmt::Write;
    let mut out = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "  {{\"system\":\"{}\",\"scenario\":\"{}\",\"loss\":{},\"goodput\":{:.6},\"p99_ns\":{},\"retries\":{},\"abandoned\":{},\"link_lost\":{},\"dropped\":{},\"stranded\":{},\"fallback_ns\":{},\"unaccounted\":{}}}",
            r.system,
            r.scenario,
            r.loss,
            r.goodput,
            r.p99.as_nanos(),
            r.retries,
            r.abandoned,
            r.link_lost,
            r.dropped,
            r.stranded,
            r.fallback.as_nanos(),
            r.unaccounted
        );
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push(']');
    out
}

/// Persist rows as CSV next to the figure outputs; returns the path.
pub fn write_csv(
    rows: &[ResilienceRow],
    dir: &std::path::Path,
) -> std::io::Result<std::path::PathBuf> {
    use std::fmt::Write;
    let mut out = String::from(
        "system,scenario,loss,goodput,p99_us,retries,abandoned,link_lost,dropped,stranded,fallback_us,unaccounted\n",
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{},{},{},{:.6},{:.3},{},{},{},{},{},{:.3},{}",
            r.system,
            r.scenario,
            r.loss,
            r.goodput,
            r.p99.as_nanos() as f64 / 1e3,
            r.retries,
            r.abandoned,
            r.link_lost,
            r.dropped,
            r.stranded,
            r.fallback.as_nanos() as f64 / 1e3,
            r.unaccounted
        );
    }
    std::fs::create_dir_all(dir)?;
    let path = dir.join("resilience.csv");
    std::fs::write(&path, out)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_rows_cover_every_system_and_close_ledgers() {
        let rows = smoke();
        assert_eq!(rows.len(), 5);
        for r in &rows {
            assert_eq!(r.unaccounted, 0, "{}: {r:?}", r.system);
            assert!(r.goodput > 0.5, "{}: goodput collapsed: {r:?}", r.system);
            assert!(r.retries > 0, "{}: 1% loss must force retries", r.system);
        }
        // The crash scenario must visibly strand work somewhere.
        assert!(rows.iter().any(|r| r.stranded > 0), "{rows:?}");
    }

    #[test]
    fn smoke_is_deterministic() {
        let a = json(&smoke());
        let b = json(&smoke());
        assert_eq!(a, b);
    }

    #[test]
    fn blackout_costs_the_informed_dispatcher_fallback_time() {
        let spec = spec_for(Scale::Quick);
        let sys = SystemConfig::Offload(OffloadConfig::paper(4, 4));
        let row = cell(&sys, spec, Scenario::Blackout, 0.0);
        assert_eq!(row.unaccounted, 0, "{row:?}");
        assert!(
            row.fallback > SimDuration::ZERO,
            "a feedback blackout must register measurable fallback time: {row:?}"
        );
        // The blackout spans a fifth of the run; fallback cannot exceed
        // the window by more than the detection+recovery hysteresis.
        let window = SimDuration::from_nanos(spec.horizon().as_nanos() / 5);
        assert!(
            row.fallback < window + SimDuration::from_millis(1),
            "fallback {} beyond blackout window {window}: {row:?}",
            row.fallback
        );
    }

    #[test]
    fn table_and_json_render_all_rows() {
        let rows = smoke();
        let t = table(&rows);
        assert!(t.contains("resilience"));
        assert!(t.contains("loss+crash"));
        let j = json(&rows);
        assert!(j.starts_with('[') && j.ends_with(']'));
        assert_eq!(j.matches("\"system\"").count(), rows.len());
    }
}
