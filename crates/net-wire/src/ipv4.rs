//! IPv4 packet format (header without options, which this system never
//! emits; packets carrying options are rejected as malformed rather than
//! silently mis-parsed).

use crate::addr::Ipv4Address;
use crate::checksum;
use crate::WireError;

/// IP protocol numbers used in this system.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Protocol {
    /// UDP, 17.
    Udp,
    /// Anything else (kept verbatim).
    Unknown(u8),
}

impl From<u8> for Protocol {
    fn from(raw: u8) -> Self {
        match raw {
            17 => Protocol::Udp,
            other => Protocol::Unknown(other),
        }
    }
}

impl From<Protocol> for u8 {
    fn from(p: Protocol) -> u8 {
        match p {
            Protocol::Udp => 17,
            Protocol::Unknown(other) => other,
        }
    }
}

/// Length of an option-less IPv4 header.
pub const HEADER_LEN: usize = 20;

mod field {
    use core::ops::Range;
    pub const VER_IHL: usize = 0;
    pub const DSCP_ECN: usize = 1;
    pub const LENGTH: Range<usize> = 2..4;
    pub const IDENT: Range<usize> = 4..6;
    pub const FLG_OFF: Range<usize> = 6..8;
    pub const TTL: usize = 8;
    pub const PROTOCOL: usize = 9;
    pub const CHECKSUM: Range<usize> = 10..12;
    pub const SRC_ADDR: Range<usize> = 12..16;
    pub const DST_ADDR: Range<usize> = 16..20;
}

/// A typed view over a buffer containing an IPv4 packet.
#[derive(Debug, Clone)]
pub struct Packet<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Packet<T> {
    /// Wrap a buffer without validation.
    pub fn new_unchecked(buffer: T) -> Packet<T> {
        Packet { buffer }
    }

    /// Wrap a buffer, validating lengths.
    pub fn new_checked(buffer: T) -> Result<Packet<T>, WireError> {
        let packet = Packet::new_unchecked(buffer);
        packet.check_len()?;
        Ok(packet)
    }

    /// Validate that the buffer is consistent with its length fields.
    pub fn check_len(&self) -> Result<(), WireError> {
        let data = self.buffer.as_ref();
        if data.len() < HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let total = self.total_len() as usize;
        if total < HEADER_LEN || data.len() < total {
            return Err(WireError::Truncated);
        }
        Ok(())
    }

    /// Recover the underlying buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// IP version field (must be 4).
    pub fn version(&self) -> u8 {
        self.buffer.as_ref()[field::VER_IHL] >> 4
    }

    /// Header length in bytes.
    pub fn header_len(&self) -> usize {
        usize::from(self.buffer.as_ref()[field::VER_IHL] & 0x0f) * 4
    }

    /// Total packet length (header + payload) from the length field.
    pub fn total_len(&self) -> u16 {
        let raw = &self.buffer.as_ref()[field::LENGTH];
        u16::from_be_bytes([raw[0], raw[1]])
    }

    /// Time-to-live.
    pub fn ttl(&self) -> u8 {
        self.buffer.as_ref()[field::TTL]
    }

    /// Payload protocol.
    pub fn protocol(&self) -> Protocol {
        Protocol::from(self.buffer.as_ref()[field::PROTOCOL])
    }

    /// Header checksum field.
    pub fn header_checksum(&self) -> u16 {
        let raw = &self.buffer.as_ref()[field::CHECKSUM];
        u16::from_be_bytes([raw[0], raw[1]])
    }

    /// Source address.
    pub fn src_addr(&self) -> Ipv4Address {
        Ipv4Address::from_bytes(&self.buffer.as_ref()[field::SRC_ADDR])
    }

    /// Destination address.
    pub fn dst_addr(&self) -> Ipv4Address {
        Ipv4Address::from_bytes(&self.buffer.as_ref()[field::DST_ADDR])
    }

    /// True when the header checksum validates.
    pub fn verify_checksum(&self) -> bool {
        let header = &self.buffer.as_ref()[..self.header_len().min(self.buffer.as_ref().len())];
        checksum::verify(header)
    }

    /// Payload bytes (after the header, within `total_len`).
    pub fn payload(&self) -> &[u8] {
        let hl = self.header_len();
        let total = self.total_len() as usize;
        &self.buffer.as_ref()[hl..total]
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Packet<T> {
    fn set_version_ihl(&mut self) {
        self.buffer.as_mut()[field::VER_IHL] = 0x45; // v4, 5 words
    }

    /// Set the total length field.
    pub fn set_total_len(&mut self, len: u16) {
        self.buffer.as_mut()[field::LENGTH].copy_from_slice(&len.to_be_bytes());
    }

    /// Set the TTL field.
    pub fn set_ttl(&mut self, ttl: u8) {
        self.buffer.as_mut()[field::TTL] = ttl;
    }

    /// Set the protocol field.
    pub fn set_protocol(&mut self, p: Protocol) {
        self.buffer.as_mut()[field::PROTOCOL] = p.into();
    }

    /// Set the source address.
    pub fn set_src_addr(&mut self, a: Ipv4Address) {
        self.buffer.as_mut()[field::SRC_ADDR].copy_from_slice(a.as_bytes());
    }

    /// Set the destination address.
    pub fn set_dst_addr(&mut self, a: Ipv4Address) {
        self.buffer.as_mut()[field::DST_ADDR].copy_from_slice(a.as_bytes());
    }

    /// Recompute and store the header checksum.
    pub fn fill_checksum(&mut self) {
        self.buffer.as_mut()[field::CHECKSUM].copy_from_slice(&[0, 0]);
        let c = checksum::checksum(&self.buffer.as_ref()[..HEADER_LEN]);
        self.buffer.as_mut()[field::CHECKSUM].copy_from_slice(&c.to_be_bytes());
    }

    /// Mutable payload bytes.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        let hl = self.header_len();
        let total = self.total_len() as usize;
        &mut self.buffer.as_mut()[hl..total]
    }
}

/// High-level representation of an option-less IPv4 header.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Repr {
    /// Source address.
    pub src_addr: Ipv4Address,
    /// Destination address.
    pub dst_addr: Ipv4Address,
    /// Payload protocol.
    pub protocol: Protocol,
    /// Payload length in bytes.
    pub payload_len: usize,
    /// Time-to-live.
    pub ttl: u8,
}

impl Repr {
    /// Default TTL for emitted packets.
    pub const DEFAULT_TTL: u8 = 64;

    /// Parse and validate a packet into its representation.
    pub fn parse<T: AsRef<[u8]>>(packet: &Packet<T>) -> Result<Repr, WireError> {
        packet.check_len()?;
        if packet.version() != 4 {
            return Err(WireError::Malformed);
        }
        if packet.header_len() != HEADER_LEN {
            // We never emit options; treat them as malformed.
            return Err(WireError::Malformed);
        }
        if !packet.verify_checksum() {
            return Err(WireError::BadChecksum);
        }
        Ok(Repr {
            src_addr: packet.src_addr(),
            dst_addr: packet.dst_addr(),
            protocol: packet.protocol(),
            payload_len: packet.total_len() as usize - HEADER_LEN,
            ttl: packet.ttl(),
        })
    }

    /// Length of the emitted header plus payload.
    pub const fn buffer_len(&self) -> usize {
        HEADER_LEN + self.payload_len
    }

    /// Write this header into a packet buffer and fill the checksum.
    pub fn emit<T: AsRef<[u8]> + AsMut<[u8]>>(&self, packet: &mut Packet<T>) {
        packet.set_version_ihl();
        packet.buffer.as_mut()[field::DSCP_ECN] = 0;
        packet.set_total_len((HEADER_LEN + self.payload_len) as u16);
        packet.buffer.as_mut()[field::IDENT].copy_from_slice(&[0, 0]);
        packet.buffer.as_mut()[field::FLG_OFF].copy_from_slice(&[0x40, 0]); // DF
        packet.set_ttl(self.ttl);
        packet.set_protocol(self.protocol);
        packet.set_src_addr(self.src_addr);
        packet.set_dst_addr(self.dst_addr);
        packet.fill_checksum();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn repr() -> Repr {
        Repr {
            src_addr: Ipv4Address::new(10, 0, 0, 1),
            dst_addr: Ipv4Address::new(10, 0, 0, 2),
            protocol: Protocol::Udp,
            payload_len: 12,
            ttl: Repr::DEFAULT_TTL,
        }
    }

    #[test]
    fn emit_parse_round_trip() {
        let r = repr();
        let mut buf = vec![0u8; r.buffer_len()];
        let mut p = Packet::new_unchecked(&mut buf);
        r.emit(&mut p);
        p.payload_mut().copy_from_slice(b"hello world!");

        let p = Packet::new_checked(&buf).unwrap();
        assert!(p.verify_checksum());
        assert_eq!(Repr::parse(&p).unwrap(), r);
        assert_eq!(p.payload(), b"hello world!");
    }

    #[test]
    fn checksum_corruption_detected() {
        let r = repr();
        let mut buf = vec![0u8; r.buffer_len()];
        let mut p = Packet::new_unchecked(&mut buf);
        r.emit(&mut p);
        buf[field::TTL] ^= 0xff;
        let p = Packet::new_checked(&buf).unwrap();
        assert_eq!(Repr::parse(&p).unwrap_err(), WireError::BadChecksum);
    }

    #[test]
    fn truncation_detected() {
        let r = repr();
        let mut buf = vec![0u8; r.buffer_len()];
        let mut p = Packet::new_unchecked(&mut buf);
        r.emit(&mut p);
        // Physically shorter than total_len claims:
        assert_eq!(
            Packet::new_checked(&buf[..buf.len() - 1]).unwrap_err(),
            WireError::Truncated
        );
        // Shorter than a header:
        assert_eq!(
            Packet::new_checked(&buf[..10]).unwrap_err(),
            WireError::Truncated
        );
    }

    #[test]
    fn wrong_version_rejected() {
        let r = repr();
        let mut buf = vec![0u8; r.buffer_len()];
        let mut p = Packet::new_unchecked(&mut buf);
        r.emit(&mut p);
        buf[0] = 0x65; // version 6
        let p = Packet::new_checked(&buf).unwrap();
        assert_eq!(Repr::parse(&p).unwrap_err(), WireError::Malformed);
    }

    #[test]
    fn options_rejected() {
        let r = repr();
        let mut buf = vec![0u8; r.buffer_len() + 4];
        let mut p = Packet::new_unchecked(&mut buf);
        r.emit(&mut p);
        buf[0] = 0x46; // IHL = 6 words (one option word)
        buf[2..4].copy_from_slice(&((24 + 12) as u16).to_be_bytes());
        // Re-checksum so we specifically hit the options check.
        let mut p = Packet::new_unchecked(&mut buf);
        p.fill_checksum();
        let p = Packet::new_checked(&buf).unwrap();
        assert_eq!(Repr::parse(&p).unwrap_err(), WireError::Malformed);
    }

    #[test]
    fn protocol_codes() {
        assert_eq!(u8::from(Protocol::Udp), 17);
        assert_eq!(Protocol::from(17), Protocol::Udp);
        assert_eq!(Protocol::from(6), Protocol::Unknown(6));
    }
}
