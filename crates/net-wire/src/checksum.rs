//! The Internet checksum (RFC 1071), shared by the IPv4 and UDP layers.

/// Accumulate 16-bit one's-complement sums over `data` into `acc`.
pub(crate) fn sum(mut acc: u32, data: &[u8]) -> u32 {
    let mut chunks = data.chunks_exact(2);
    for chunk in &mut chunks {
        acc += u32::from(u16::from_be_bytes([chunk[0], chunk[1]]));
    }
    if let [last] = chunks.remainder() {
        acc += u32::from(u16::from_be_bytes([*last, 0]));
    }
    acc
}

/// Fold a 32-bit accumulator into the final 16-bit checksum field value.
pub(crate) fn finish(mut acc: u32) -> u16 {
    while acc >> 16 != 0 {
        acc = (acc & 0xffff) + (acc >> 16);
    }
    !(acc as u16)
}

/// Compute the Internet checksum of a byte slice.
pub fn checksum(data: &[u8]) -> u16 {
    finish(sum(0, data))
}

/// Verify a buffer whose checksum field is in place: the total must fold
/// to zero.
pub fn verify(data: &[u8]) -> bool {
    finish(sum(0, data)) == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_worked_example() {
        // Example from RFC 1071 §3: 00 01 f2 03 f4 f5 f6 f7
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        // Sum = 0x2ddf0 -> folded 0xddf2 -> complement 0x220d
        assert_eq!(checksum(&data), 0x220d);
    }

    #[test]
    fn odd_length_padding() {
        // An odd trailing byte is padded with zero on the right.
        assert_eq!(checksum(&[0xab]), !0xab00);
    }

    #[test]
    fn verify_detects_corruption() {
        let mut data = vec![0x45, 0x00, 0x00, 0x1c, 0x00, 0x00, 0x00, 0x00, 0x40, 0x11];
        // Append the checksum of the data itself to make it self-verifying.
        let c = checksum(&data);
        data.extend_from_slice(&c.to_be_bytes());
        assert!(verify(&data));
        data[0] ^= 0x01;
        assert!(!verify(&data));
    }

    #[test]
    fn empty_checksum() {
        assert_eq!(checksum(&[]), 0xffff);
    }
}
