//! Link-layer and network-layer addresses.

use core::fmt;
use core::str::FromStr;

use crate::WireError;

/// A 48-bit Ethernet MAC address.
///
/// In this system MAC addresses are load-bearing: the Stingray steers each
/// packet to the host-CPU or ARM-CPU interface — and, with SR-IOV, to a
/// specific worker's virtual function — purely on the destination MAC
/// (paper §3.3–§3.4.2).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct EthernetAddress(pub [u8; 6]);

impl EthernetAddress {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: EthernetAddress = EthernetAddress([0xff; 6]);

    /// Construct from raw octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8, e: u8, f: u8) -> Self {
        EthernetAddress([a, b, c, d, e, f])
    }

    /// Parse from a big-endian byte slice.
    pub fn from_bytes(data: &[u8]) -> Self {
        let mut bytes = [0u8; 6];
        bytes.copy_from_slice(data);
        EthernetAddress(bytes)
    }

    /// The octets of the address.
    pub const fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// True for the broadcast address.
    pub fn is_broadcast(&self) -> bool {
        *self == Self::BROADCAST
    }

    /// True for group (multicast) addresses, broadcast included.
    pub fn is_multicast(&self) -> bool {
        self.0[0] & 0x01 != 0
    }

    /// True for a unicast, non-zero address.
    pub fn is_unicast(&self) -> bool {
        !self.is_multicast() && self.0 != [0; 6]
    }

    /// True if the locally-administered bit is set.
    pub fn is_local(&self) -> bool {
        self.0[0] & 0x02 != 0
    }
}

impl fmt::Display for EthernetAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            b[0], b[1], b[2], b[3], b[4], b[5]
        )
    }
}

impl fmt::Debug for EthernetAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl FromStr for EthernetAddress {
    type Err = WireError;

    fn from_str(s: &str) -> Result<Self, WireError> {
        let mut bytes = [0u8; 6];
        let mut parts = s.split(':');
        for byte in &mut bytes {
            let p = parts.next().ok_or(WireError::Malformed)?;
            *byte = u8::from_str_radix(p, 16).map_err(|_| WireError::Malformed)?;
        }
        if parts.next().is_some() {
            return Err(WireError::Malformed);
        }
        Ok(EthernetAddress(bytes))
    }
}

/// A 32-bit IPv4 address.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Ipv4Address(pub [u8; 4]);

impl Ipv4Address {
    /// The unspecified address `0.0.0.0`.
    pub const UNSPECIFIED: Ipv4Address = Ipv4Address([0; 4]);
    /// The limited-broadcast address `255.255.255.255`.
    pub const BROADCAST: Ipv4Address = Ipv4Address([0xff; 4]);

    /// Construct from dotted-quad octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        Ipv4Address([a, b, c, d])
    }

    /// Parse from a big-endian byte slice.
    pub fn from_bytes(data: &[u8]) -> Self {
        let mut bytes = [0u8; 4];
        bytes.copy_from_slice(data);
        Ipv4Address(bytes)
    }

    /// The octets of the address.
    pub const fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Big-endian numeric value — handy as RSS hash input.
    pub fn to_u32(&self) -> u32 {
        u32::from_be_bytes(self.0)
    }

    /// True for the limited-broadcast address.
    pub fn is_broadcast(&self) -> bool {
        *self == Self::BROADCAST
    }

    /// True for class-D multicast addresses.
    pub fn is_multicast(&self) -> bool {
        self.0[0] & 0xf0 == 0xe0
    }

    /// True for `0.0.0.0`.
    pub fn is_unspecified(&self) -> bool {
        *self == Self::UNSPECIFIED
    }

    /// True for addresses usable as a unicast source/destination.
    pub fn is_unicast(&self) -> bool {
        !self.is_broadcast() && !self.is_multicast() && !self.is_unspecified()
    }
}

impl fmt::Display for Ipv4Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        write!(f, "{}.{}.{}.{}", b[0], b[1], b[2], b[3])
    }
}

impl fmt::Debug for Ipv4Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl FromStr for Ipv4Address {
    type Err = WireError;

    fn from_str(s: &str) -> Result<Self, WireError> {
        let mut bytes = [0u8; 4];
        let mut parts = s.split('.');
        for byte in &mut bytes {
            let p = parts.next().ok_or(WireError::Malformed)?;
            *byte = p.parse().map_err(|_| WireError::Malformed)?;
        }
        if parts.next().is_some() {
            return Err(WireError::Malformed);
        }
        Ok(Ipv4Address(bytes))
    }
}

/// A UDP/IPv4 endpoint (address, port) — the 2-tuple half of the RSS 4-tuple.
///
/// `Ord` so endpoints can key ordered maps (`BTreeMap`), which model code
/// prefers over hashed maps for deterministic iteration.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Default)]
pub struct Endpoint {
    /// IPv4 address.
    pub addr: Ipv4Address,
    /// UDP port.
    pub port: u16,
}

impl Endpoint {
    /// Construct an endpoint.
    pub const fn new(addr: Ipv4Address, port: u16) -> Self {
        Endpoint { addr, port }
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.addr, self.port)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_display_and_parse_round_trip() {
        let mac = EthernetAddress::new(0x02, 0x00, 0x5e, 0x10, 0x00, 0x01);
        let s = mac.to_string();
        assert_eq!(s, "02:00:5e:10:00:01");
        assert_eq!(s.parse::<EthernetAddress>().unwrap(), mac);
    }

    #[test]
    fn mac_classification() {
        assert!(EthernetAddress::BROADCAST.is_broadcast());
        assert!(EthernetAddress::BROADCAST.is_multicast());
        let uni = EthernetAddress::new(0x02, 0, 0, 0, 0, 1);
        assert!(uni.is_unicast());
        assert!(uni.is_local());
        assert!(!uni.is_multicast());
        let multi = EthernetAddress::new(0x01, 0, 0x5e, 0, 0, 1);
        assert!(multi.is_multicast());
        assert!(!multi.is_unicast());
        assert!(!EthernetAddress::default().is_unicast());
    }

    #[test]
    fn mac_parse_rejects_garbage() {
        assert!("".parse::<EthernetAddress>().is_err());
        assert!("1:2:3".parse::<EthernetAddress>().is_err());
        assert!("zz:00:00:00:00:00".parse::<EthernetAddress>().is_err());
        assert!("00:00:00:00:00:00:00".parse::<EthernetAddress>().is_err());
    }

    #[test]
    fn ipv4_display_and_parse_round_trip() {
        let ip = Ipv4Address::new(10, 1, 2, 3);
        assert_eq!(ip.to_string(), "10.1.2.3");
        assert_eq!("10.1.2.3".parse::<Ipv4Address>().unwrap(), ip);
        assert_eq!(ip.to_u32(), 0x0a010203);
    }

    #[test]
    fn ipv4_classification() {
        assert!(Ipv4Address::BROADCAST.is_broadcast());
        assert!(Ipv4Address::new(224, 0, 0, 1).is_multicast());
        assert!(Ipv4Address::UNSPECIFIED.is_unspecified());
        assert!(Ipv4Address::new(192, 168, 0, 1).is_unicast());
        assert!(!Ipv4Address::new(239, 255, 255, 255).is_unicast());
    }

    #[test]
    fn ipv4_parse_rejects_garbage() {
        assert!("10.1.2".parse::<Ipv4Address>().is_err());
        assert!("10.1.2.3.4".parse::<Ipv4Address>().is_err());
        assert!("10.1.2.256".parse::<Ipv4Address>().is_err());
    }

    #[test]
    fn endpoint_display() {
        let e = Endpoint::new(Ipv4Address::new(10, 0, 0, 1), 8080);
        assert_eq!(e.to_string(), "10.0.0.1:8080");
    }

    #[test]
    fn byte_round_trips() {
        let mac = EthernetAddress::new(1, 2, 3, 4, 5, 6);
        assert_eq!(EthernetAddress::from_bytes(mac.as_bytes()), mac);
        let ip = Ipv4Address::new(9, 8, 7, 6);
        assert_eq!(Ipv4Address::from_bytes(ip.as_bytes()), ip);
    }
}
