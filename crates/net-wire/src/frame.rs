//! Whole-frame assembly and disassembly.
//!
//! Every hop in the simulated system exchanges complete
//! Ethernet → IPv4 → UDP → message frames, built and verified byte-for-byte,
//! exactly as the Stingray prototype does. [`FrameSpec::build`] produces the
//! wire bytes (checksums filled); [`ParsedFrame::parse`] validates all four
//! layers. Buffers are [`bytes::Bytes`], so queuing a frame at several
//! places (e.g. an RX ring and a latency tracer) is a refcount bump, not a
//! copy.

use bytes::Bytes;

use crate::addr::{Endpoint, EthernetAddress};
use crate::message::MsgRepr;
use crate::{ethernet, ipv4, udp, WireError};

/// Everything needed to build one request/response/control frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrameSpec {
    /// Source MAC.
    pub src_mac: EthernetAddress,
    /// Destination MAC — on the Stingray this alone selects the receiving
    /// interface (host worker VF, ARM dispatcher, or external port).
    pub dst_mac: EthernetAddress,
    /// Source UDP/IPv4 endpoint.
    pub src: Endpoint,
    /// Destination UDP/IPv4 endpoint.
    pub dst: Endpoint,
    /// The application message.
    pub msg: MsgRepr,
}

impl FrameSpec {
    /// Total frame length in bytes (headers + message).
    pub fn frame_len(&self) -> usize {
        ethernet::HEADER_LEN + ipv4::HEADER_LEN + udp::HEADER_LEN + self.msg.buffer_len()
    }

    /// Build the complete frame, all checksums computed.
    pub fn build(&self) -> Bytes {
        let msg_len = self.msg.buffer_len();
        let udp_repr = udp::Repr {
            src_port: self.src.port,
            dst_port: self.dst.port,
            payload_len: msg_len,
        };
        let ip_repr = ipv4::Repr {
            src_addr: self.src.addr,
            dst_addr: self.dst.addr,
            protocol: ipv4::Protocol::Udp,
            payload_len: udp_repr.buffer_len(),
            ttl: ipv4::Repr::DEFAULT_TTL,
        };
        let eth_repr = ethernet::Repr {
            src_addr: self.src_mac,
            dst_addr: self.dst_mac,
            ethertype: ethernet::EtherType::Ipv4,
        };

        let mut buf = vec![0u8; self.frame_len()];
        let mut frame = ethernet::Frame::new_unchecked(&mut buf[..]);
        eth_repr.emit(&mut frame);

        let mut ip = ipv4::Packet::new_unchecked(frame.payload_mut());
        ip_repr.emit(&mut ip);

        let mut dgram = udp::Datagram::new_unchecked(ip.payload_mut());
        udp_repr.emit(&mut dgram);
        self.msg.emit(dgram.payload_mut());
        dgram.fill_checksum(self.src.addr, self.dst.addr);

        Bytes::from(buf)
    }
}

/// A fully validated frame: all four layers parsed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParsedFrame {
    /// Ethernet header.
    pub eth: ethernet::Repr,
    /// IPv4 header.
    pub ip: ipv4::Repr,
    /// UDP header.
    pub udp: udp::Repr,
    /// Application message.
    pub msg: MsgRepr,
}

impl ParsedFrame {
    /// Parse and validate all layers of `data`.
    pub fn parse(data: &[u8]) -> Result<ParsedFrame, WireError> {
        let frame = ethernet::Frame::new_checked(data)?;
        let eth = ethernet::Repr::parse(&frame)?;
        if eth.ethertype != ethernet::EtherType::Ipv4 {
            return Err(WireError::Malformed);
        }
        let packet = ipv4::Packet::new_checked(frame.payload())?;
        let ip = ipv4::Repr::parse(&packet)?;
        if ip.protocol != ipv4::Protocol::Udp {
            return Err(WireError::Malformed);
        }
        let dgram = udp::Datagram::new_checked(packet.payload())?;
        let udp = udp::Repr::parse(&dgram, ip.src_addr, ip.dst_addr)?;
        let msg = MsgRepr::parse(dgram.payload())?;
        Ok(ParsedFrame { eth, ip, udp, msg })
    }

    /// Source endpoint of the frame.
    pub fn src(&self) -> Endpoint {
        Endpoint::new(self.ip.src_addr, self.udp.src_port)
    }

    /// Destination endpoint of the frame.
    pub fn dst(&self) -> Endpoint {
        Endpoint::new(self.ip.dst_addr, self.udp.dst_port)
    }

    /// The 4-tuple RSS hash input: (src ip, dst ip, src port, dst port).
    pub fn four_tuple(&self) -> ([u8; 4], [u8; 4], u16, u16) {
        (
            self.ip.src_addr.0,
            self.ip.dst_addr.0,
            self.udp.src_port,
            self.udp.dst_port,
        )
    }

    /// Build the spec that would regenerate this frame (e.g. to bounce a
    /// message back with modified fields).
    pub fn to_spec(&self) -> FrameSpec {
        FrameSpec {
            src_mac: self.eth.src_addr,
            dst_mac: self.eth.dst_addr,
            src: self.src(),
            dst: self.dst(),
            msg: self.msg,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Ipv4Address;

    fn spec() -> FrameSpec {
        FrameSpec {
            src_mac: EthernetAddress::new(2, 0, 0, 0, 0, 1),
            dst_mac: EthernetAddress::new(2, 0, 0, 0, 0, 2),
            src: Endpoint::new(Ipv4Address::new(10, 0, 0, 1), 7000),
            dst: Endpoint::new(Ipv4Address::new(10, 0, 0, 2), 8000),
            msg: MsgRepr::request(42, 3, 5_000, 1_000_000, 22),
        }
    }

    #[test]
    fn build_parse_round_trip() {
        let s = spec();
        let bytes = s.build();
        assert_eq!(bytes.len(), s.frame_len());
        let parsed = ParsedFrame::parse(&bytes).unwrap();
        assert_eq!(parsed.eth.src_addr, s.src_mac);
        assert_eq!(parsed.eth.dst_addr, s.dst_mac);
        assert_eq!(parsed.src(), s.src);
        assert_eq!(parsed.dst(), s.dst);
        assert_eq!(parsed.msg, s.msg);
    }

    #[test]
    fn frame_len_matches_paper_scale() {
        // A 64 B-body request frame should be on the order of the paper's
        // "64 B requests": 14 + 20 + 8 + 42 + 64 = 148 bytes.
        let mut s = spec();
        s.msg.body_len = 64;
        assert_eq!(s.frame_len(), 148);
    }

    #[test]
    fn to_spec_round_trips() {
        let s = spec();
        let parsed = ParsedFrame::parse(&s.build()).unwrap();
        let rebuilt = parsed.to_spec().build();
        assert_eq!(&rebuilt[..], &s.build()[..]);
    }

    #[test]
    fn corruption_at_any_layer_detected() {
        let bytes = spec().build();
        // Flip one byte in each layer and expect *some* validation failure.
        let layer_offsets = [
            ethernet::HEADER_LEN + 2,                                  // IPv4 length
            ethernet::HEADER_LEN + ipv4::HEADER_LEN + 6,               // UDP checksum
            ethernet::HEADER_LEN + ipv4::HEADER_LEN + udp::HEADER_LEN, // msg magic
        ];
        for off in layer_offsets {
            let mut corrupt = bytes.to_vec();
            corrupt[off] ^= 0xff;
            assert!(
                ParsedFrame::parse(&corrupt).is_err(),
                "corruption at offset {off} must be detected"
            );
        }
    }

    #[test]
    fn non_ipv4_rejected() {
        let bytes = spec().build();
        let mut raw = bytes.to_vec();
        raw[12] = 0x86; // EtherType -> not IPv4
        raw[13] = 0xdd;
        assert_eq!(ParsedFrame::parse(&raw).unwrap_err(), WireError::Malformed);
    }

    #[test]
    fn four_tuple_extraction() {
        let parsed = ParsedFrame::parse(&spec().build()).unwrap();
        let (sip, dip, sp, dp) = parsed.four_tuple();
        assert_eq!(sip, [10, 0, 0, 1]);
        assert_eq!(dip, [10, 0, 0, 2]);
        assert_eq!(sp, 7000);
        assert_eq!(dp, 8000);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::addr::Ipv4Address;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn arbitrary_specs_round_trip(
            smac in any::<[u8; 6]>(), dmac in any::<[u8; 6]>(),
            sip in any::<[u8; 4]>(), dip in any::<[u8; 4]>(),
            sport in any::<u16>(), dport in any::<u16>(),
            req_id in any::<u64>(), service in any::<u64>(), body in 0u16..1024,
        ) {
            let s = FrameSpec {
                src_mac: EthernetAddress(smac),
                dst_mac: EthernetAddress(dmac),
                src: Endpoint::new(Ipv4Address(sip), sport),
                dst: Endpoint::new(Ipv4Address(dip), dport),
                msg: MsgRepr::request(req_id, 1, service, 0, body),
            };
            let parsed = ParsedFrame::parse(&s.build()).unwrap();
            prop_assert_eq!(parsed.msg.req_id, req_id);
            prop_assert_eq!(parsed.src().port, sport);
            prop_assert_eq!(parsed.eth.dst_addr, EthernetAddress(dmac));
        }

        #[test]
        fn random_bytes_never_panic(data in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = ParsedFrame::parse(&data);
        }
    }
}
