//! UDP datagram format.
//!
//! All request/response traffic in the paper's evaluation travels over UDP
//! (§4: "an open loop load generator … that transmits requests over UDP"),
//! as does the dispatcher↔worker control channel (§3.4.2). The checksum is
//! computed with the IPv4 pseudo-header.

use crate::addr::Ipv4Address;
use crate::checksum;
use crate::WireError;

/// Length of the UDP header.
pub const HEADER_LEN: usize = 8;

mod field {
    use core::ops::Range;
    pub const SRC_PORT: Range<usize> = 0..2;
    pub const DST_PORT: Range<usize> = 2..4;
    pub const LENGTH: Range<usize> = 4..6;
    pub const CHECKSUM: Range<usize> = 6..8;
    pub const PAYLOAD: core::ops::RangeFrom<usize> = 8..;
}

/// A typed view over a buffer containing a UDP datagram.
#[derive(Debug, Clone)]
pub struct Datagram<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Datagram<T> {
    /// Wrap a buffer without validation.
    pub fn new_unchecked(buffer: T) -> Datagram<T> {
        Datagram { buffer }
    }

    /// Wrap a buffer, validating lengths.
    pub fn new_checked(buffer: T) -> Result<Datagram<T>, WireError> {
        let dgram = Datagram::new_unchecked(buffer);
        dgram.check_len()?;
        Ok(dgram)
    }

    /// Validate the buffer against the length field.
    pub fn check_len(&self) -> Result<(), WireError> {
        let data = self.buffer.as_ref();
        if data.len() < HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let len = self.len() as usize;
        if len < HEADER_LEN || data.len() < len {
            return Err(WireError::Truncated);
        }
        Ok(())
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        let raw = &self.buffer.as_ref()[field::SRC_PORT];
        u16::from_be_bytes([raw[0], raw[1]])
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        let raw = &self.buffer.as_ref()[field::DST_PORT];
        u16::from_be_bytes([raw[0], raw[1]])
    }

    /// Datagram length field (header + payload).
    pub fn len(&self) -> u16 {
        let raw = &self.buffer.as_ref()[field::LENGTH];
        u16::from_be_bytes([raw[0], raw[1]])
    }

    /// True when the length field says the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.len() as usize == HEADER_LEN
    }

    /// Checksum field.
    pub fn checksum_field(&self) -> u16 {
        let raw = &self.buffer.as_ref()[field::CHECKSUM];
        u16::from_be_bytes([raw[0], raw[1]])
    }

    /// Verify the checksum with the given pseudo-header addresses.
    /// A zero checksum means "not computed" and passes (RFC 768).
    pub fn verify_checksum(&self, src: Ipv4Address, dst: Ipv4Address) -> bool {
        if self.checksum_field() == 0 {
            return true;
        }
        let len = self.len();
        let acc = pseudo_header_sum(src, dst, len);
        let data = &self.buffer.as_ref()[..len as usize];
        checksum::finish(checksum::sum(acc, data)) == 0
    }

    /// Payload bytes.
    pub fn payload(&self) -> &[u8] {
        let len = self.len() as usize;
        &self.buffer.as_ref()[HEADER_LEN..len]
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Datagram<T> {
    /// Set the source port.
    pub fn set_src_port(&mut self, port: u16) {
        self.buffer.as_mut()[field::SRC_PORT].copy_from_slice(&port.to_be_bytes());
    }

    /// Set the destination port.
    pub fn set_dst_port(&mut self, port: u16) {
        self.buffer.as_mut()[field::DST_PORT].copy_from_slice(&port.to_be_bytes());
    }

    /// Set the length field.
    pub fn set_len(&mut self, len: u16) {
        self.buffer.as_mut()[field::LENGTH].copy_from_slice(&len.to_be_bytes());
    }

    /// Compute and store the checksum using the pseudo-header.
    pub fn fill_checksum(&mut self, src: Ipv4Address, dst: Ipv4Address) {
        self.buffer.as_mut()[field::CHECKSUM].copy_from_slice(&[0, 0]);
        let len = self.len();
        let acc = pseudo_header_sum(src, dst, len);
        let data = &self.buffer.as_ref()[..len as usize];
        let mut c = checksum::finish(checksum::sum(acc, data));
        if c == 0 {
            c = 0xffff; // 0 is reserved for "no checksum"
        }
        self.buffer.as_mut()[field::CHECKSUM].copy_from_slice(&c.to_be_bytes());
    }

    /// Mutable payload bytes.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        &mut self.buffer.as_mut()[field::PAYLOAD]
    }
}

fn pseudo_header_sum(src: Ipv4Address, dst: Ipv4Address, udp_len: u16) -> u32 {
    let mut acc = 0;
    acc = checksum::sum(acc, src.as_bytes());
    acc = checksum::sum(acc, dst.as_bytes());
    acc = checksum::sum(acc, &[0, 17]); // zero + protocol
    acc = checksum::sum(acc, &udp_len.to_be_bytes());
    acc
}

/// High-level representation of a UDP header.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Repr {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Payload length in bytes.
    pub payload_len: usize,
}

impl Repr {
    /// Parse and checksum-verify a datagram.
    pub fn parse<T: AsRef<[u8]>>(
        dgram: &Datagram<T>,
        src: Ipv4Address,
        dst: Ipv4Address,
    ) -> Result<Repr, WireError> {
        dgram.check_len()?;
        if !dgram.verify_checksum(src, dst) {
            return Err(WireError::BadChecksum);
        }
        Ok(Repr {
            src_port: dgram.src_port(),
            dst_port: dgram.dst_port(),
            payload_len: dgram.len() as usize - HEADER_LEN,
        })
    }

    /// Length of the emitted header plus payload.
    pub const fn buffer_len(&self) -> usize {
        HEADER_LEN + self.payload_len
    }

    /// Write this header; call [`Datagram::fill_checksum`] after writing the
    /// payload (the checksum covers it).
    pub fn emit<T: AsRef<[u8]> + AsMut<[u8]>>(&self, dgram: &mut Datagram<T>) {
        dgram.set_src_port(self.src_port);
        dgram.set_dst_port(self.dst_port);
        dgram.set_len((HEADER_LEN + self.payload_len) as u16);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: Ipv4Address = Ipv4Address::new(10, 0, 0, 1);
    const DST: Ipv4Address = Ipv4Address::new(10, 0, 0, 2);

    #[test]
    fn emit_parse_round_trip() {
        let r = Repr {
            src_port: 5000,
            dst_port: 6000,
            payload_len: 5,
        };
        let mut buf = vec![0u8; r.buffer_len()];
        let mut d = Datagram::new_unchecked(&mut buf);
        r.emit(&mut d);
        d.payload_mut()[..5].copy_from_slice(b"salut");
        d.fill_checksum(SRC, DST);

        let d = Datagram::new_checked(&buf).unwrap();
        assert!(d.verify_checksum(SRC, DST));
        assert_eq!(Repr::parse(&d, SRC, DST).unwrap(), r);
        assert_eq!(d.payload(), b"salut");
        assert!(!d.is_empty());
    }

    #[test]
    fn checksum_covers_payload() {
        let r = Repr {
            src_port: 1,
            dst_port: 2,
            payload_len: 4,
        };
        let mut buf = vec![0u8; r.buffer_len()];
        let mut d = Datagram::new_unchecked(&mut buf);
        r.emit(&mut d);
        d.payload_mut()[..4].copy_from_slice(b"data");
        d.fill_checksum(SRC, DST);
        buf[HEADER_LEN] ^= 0x55;
        let d = Datagram::new_checked(&buf).unwrap();
        assert_eq!(
            Repr::parse(&d, SRC, DST).unwrap_err(),
            WireError::BadChecksum
        );
    }

    #[test]
    fn checksum_covers_pseudo_header() {
        let r = Repr {
            src_port: 1,
            dst_port: 2,
            payload_len: 0,
        };
        let mut buf = vec![0u8; r.buffer_len()];
        let mut d = Datagram::new_unchecked(&mut buf);
        r.emit(&mut d);
        d.fill_checksum(SRC, DST);
        let d = Datagram::new_checked(&buf).unwrap();
        // Wrong source address in the pseudo-header must fail.
        assert!(!d.verify_checksum(Ipv4Address::new(10, 0, 0, 9), DST));
    }

    #[test]
    fn zero_checksum_means_unchecked() {
        let r = Repr {
            src_port: 1,
            dst_port: 2,
            payload_len: 0,
        };
        let mut buf = vec![0u8; r.buffer_len()];
        let mut d = Datagram::new_unchecked(&mut buf);
        r.emit(&mut d);
        let d = Datagram::new_checked(&buf).unwrap();
        assert_eq!(d.checksum_field(), 0);
        assert!(d.verify_checksum(SRC, DST));
        assert!(d.is_empty());
    }

    #[test]
    fn truncation_detected() {
        let r = Repr {
            src_port: 1,
            dst_port: 2,
            payload_len: 10,
        };
        let mut buf = vec![0u8; r.buffer_len()];
        let mut d = Datagram::new_unchecked(&mut buf);
        r.emit(&mut d);
        assert!(Datagram::new_checked(&buf[..HEADER_LEN + 3]).is_err());
        assert!(Datagram::new_checked(&buf[..4]).is_err());
    }
}
