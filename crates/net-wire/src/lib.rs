//! # net-wire — byte-accurate wire formats
//!
//! The packet layer of the `mindgap` reproduction. Requests, responses and
//! dispatcher↔worker control traffic are real Ethernet II / IPv4 / UDP
//! frames carrying the [`message`] application header, built and parsed
//! byte-for-byte with checksum verification — the same framing the paper's
//! Stingray prototype uses (§3.4.2), so header overheads, packet sizes and
//! MAC-based SR-IOV steering behave honestly in the simulation.
//!
//! The API follows the smoltcp idiom: a typed *view* (`Frame`, `Packet`,
//! `Datagram`) wraps any `AsRef<[u8]>` buffer with checked accessors, and a
//! plain-old-data *representation* (`Repr`) offers `parse`/`emit`.
//!
//! # Example
//!
//! ```
//! use net_wire::{Endpoint, EthernetAddress, FrameSpec, Ipv4Address, MsgRepr, ParsedFrame};
//!
//! let spec = FrameSpec {
//!     src_mac: EthernetAddress::new(2, 0, 0, 0, 0, 1),
//!     dst_mac: EthernetAddress::new(2, 0, 0, 0, 1, 0),
//!     src: Endpoint::new(Ipv4Address::new(10, 0, 0, 1), 7000),
//!     dst: Endpoint::new(Ipv4Address::new(10, 0, 1, 0), 6000),
//!     msg: MsgRepr::request(42, 1, 5_000, 0, 64),
//! };
//! let bytes = spec.build(); // checksums filled
//! let parsed = ParsedFrame::parse(&bytes).unwrap();
//! assert_eq!(parsed.msg.req_id, 42);
//! assert_eq!(parsed.msg.service_ns, 5_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
pub mod checksum;
pub mod ethernet;
mod frame;
pub mod ipv4;
pub mod message;
pub mod udp;

pub use addr::{Endpoint, EthernetAddress, Ipv4Address};
pub use frame::{FrameSpec, ParsedFrame};
pub use message::{MsgKind, MsgRepr};

/// Errors surfaced while parsing or validating wire data.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WireError {
    /// The buffer is shorter than the format requires.
    Truncated,
    /// A checksum failed to verify.
    BadChecksum,
    /// The message magic did not match.
    BadMagic,
    /// A field held a value this stack does not accept.
    Malformed,
}

impl core::fmt::Display for WireError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "buffer truncated"),
            WireError::BadChecksum => write!(f, "checksum mismatch"),
            WireError::BadMagic => write!(f, "bad message magic"),
            WireError::Malformed => write!(f, "malformed field"),
        }
    }
}

impl std::error::Error for WireError {}
