//! Ethernet II framing.
//!
//! Typed views over byte buffers in the smoltcp idiom: [`Frame`] wraps a
//! buffer and exposes checked field accessors; [`Repr`] is the high-level
//! representation with `parse`/`emit`.

use crate::addr::EthernetAddress;
use crate::WireError;

/// EtherType values used in this system.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum EtherType {
    /// IPv4, `0x0800`.
    Ipv4,
    /// Anything else (kept verbatim).
    Unknown(u16),
}

impl From<u16> for EtherType {
    fn from(raw: u16) -> Self {
        match raw {
            0x0800 => EtherType::Ipv4,
            other => EtherType::Unknown(other),
        }
    }
}

impl From<EtherType> for u16 {
    fn from(v: EtherType) -> u16 {
        match v {
            EtherType::Ipv4 => 0x0800,
            EtherType::Unknown(other) => other,
        }
    }
}

/// Length of the Ethernet II header: dst(6) + src(6) + ethertype(2).
pub const HEADER_LEN: usize = 14;

/// Minimum Ethernet payload (frames are padded to 64 B on the wire; we model
/// the 46 B minimum payload when computing wire occupancy, not in buffers).
pub const MIN_PAYLOAD: usize = 46;

mod field {
    pub const DST: core::ops::Range<usize> = 0..6;
    pub const SRC: core::ops::Range<usize> = 6..12;
    pub const ETHERTYPE: core::ops::Range<usize> = 12..14;
    pub const PAYLOAD: core::ops::RangeFrom<usize> = 14..;
}

/// A typed view over a buffer containing an Ethernet II frame.
#[derive(Debug, Clone)]
pub struct Frame<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Frame<T> {
    /// Wrap a buffer without length checking.
    pub fn new_unchecked(buffer: T) -> Frame<T> {
        Frame { buffer }
    }

    /// Wrap a buffer, ensuring it is long enough to hold a header.
    pub fn new_checked(buffer: T) -> Result<Frame<T>, WireError> {
        let frame = Frame::new_unchecked(buffer);
        frame.check_len()?;
        Ok(frame)
    }

    /// Ensure the buffer holds at least a full header.
    pub fn check_len(&self) -> Result<(), WireError> {
        if self.buffer.as_ref().len() < HEADER_LEN {
            Err(WireError::Truncated)
        } else {
            Ok(())
        }
    }

    /// Recover the underlying buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// Destination MAC address.
    pub fn dst_addr(&self) -> EthernetAddress {
        EthernetAddress::from_bytes(&self.buffer.as_ref()[field::DST])
    }

    /// Source MAC address.
    pub fn src_addr(&self) -> EthernetAddress {
        EthernetAddress::from_bytes(&self.buffer.as_ref()[field::SRC])
    }

    /// EtherType field.
    pub fn ethertype(&self) -> EtherType {
        let raw = &self.buffer.as_ref()[field::ETHERTYPE];
        EtherType::from(u16::from_be_bytes([raw[0], raw[1]]))
    }

    /// Payload bytes following the header.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[field::PAYLOAD]
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Frame<T> {
    /// Set the destination MAC address.
    pub fn set_dst_addr(&mut self, addr: EthernetAddress) {
        self.buffer.as_mut()[field::DST].copy_from_slice(addr.as_bytes());
    }

    /// Set the source MAC address.
    pub fn set_src_addr(&mut self, addr: EthernetAddress) {
        self.buffer.as_mut()[field::SRC].copy_from_slice(addr.as_bytes());
    }

    /// Set the EtherType field.
    pub fn set_ethertype(&mut self, value: EtherType) {
        let raw = u16::from(value).to_be_bytes();
        self.buffer.as_mut()[field::ETHERTYPE].copy_from_slice(&raw);
    }

    /// Mutable payload bytes.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        &mut self.buffer.as_mut()[field::PAYLOAD]
    }
}

/// High-level representation of an Ethernet II header.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Repr {
    /// Source MAC.
    pub src_addr: EthernetAddress,
    /// Destination MAC.
    pub dst_addr: EthernetAddress,
    /// EtherType of the payload.
    pub ethertype: EtherType,
}

impl Repr {
    /// Parse a frame header into its representation.
    pub fn parse<T: AsRef<[u8]>>(frame: &Frame<T>) -> Result<Repr, WireError> {
        frame.check_len()?;
        Ok(Repr {
            src_addr: frame.src_addr(),
            dst_addr: frame.dst_addr(),
            ethertype: frame.ethertype(),
        })
    }

    /// Length of the emitted header.
    pub const fn buffer_len(&self) -> usize {
        HEADER_LEN
    }

    /// Write this header into a frame.
    pub fn emit<T: AsRef<[u8]> + AsMut<[u8]>>(&self, frame: &mut Frame<T>) {
        frame.set_src_addr(self.src_addr);
        frame.set_dst_addr(self.dst_addr);
        frame.set_ethertype(self.ethertype);
    }
}

/// Bytes a frame with `payload_len` payload occupies on the wire, including
/// preamble (8), header (14), FCS (4), minimum-frame padding and the
/// inter-frame gap (12). Used by the link model for serialization delay.
pub fn wire_occupancy(payload_len: usize) -> usize {
    let padded = payload_len.max(MIN_PAYLOAD);
    8 + HEADER_LEN + padded + 4 + 12
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: EthernetAddress = EthernetAddress::new(0x02, 0, 0, 0, 0, 0x01);
    const DST: EthernetAddress = EthernetAddress::new(0x02, 0, 0, 0, 0, 0x02);

    #[test]
    fn emit_parse_round_trip() {
        let repr = Repr {
            src_addr: SRC,
            dst_addr: DST,
            ethertype: EtherType::Ipv4,
        };
        let mut buf = vec![0u8; repr.buffer_len() + 4];
        let mut frame = Frame::new_unchecked(&mut buf);
        repr.emit(&mut frame);
        frame.payload_mut()[..4].copy_from_slice(b"abcd");

        let frame = Frame::new_checked(&buf).unwrap();
        assert_eq!(Repr::parse(&frame).unwrap(), repr);
        assert_eq!(frame.payload(), b"abcd");
    }

    #[test]
    fn truncated_buffer_rejected() {
        let buf = [0u8; HEADER_LEN - 1];
        assert_eq!(
            Frame::new_checked(&buf[..]).unwrap_err(),
            WireError::Truncated
        );
    }

    #[test]
    fn ethertype_codes() {
        assert_eq!(u16::from(EtherType::Ipv4), 0x0800);
        assert_eq!(EtherType::from(0x0800), EtherType::Ipv4);
        assert_eq!(EtherType::from(0x86dd), EtherType::Unknown(0x86dd));
        assert_eq!(u16::from(EtherType::Unknown(0x1234)), 0x1234);
    }

    #[test]
    fn wire_occupancy_includes_overheads() {
        // 64 B request payload: 8 + 14 + 64 + 4 + 12 = 102 B.
        assert_eq!(wire_occupancy(64), 102);
        // Tiny payloads are padded to the 64 B minimum frame.
        assert_eq!(wire_occupancy(1), 8 + 14 + 46 + 4 + 12);
        assert_eq!(wire_occupancy(0), wire_occupancy(46));
    }
}
