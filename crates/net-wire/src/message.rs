//! Application-level message format.
//!
//! The paper's evaluation uses synthetic requests whose payload encodes how
//! long the server must spin ("requests contain fake work that keeps the
//! server busy for a specific amount of time", §4.1), and the offloaded
//! dispatcher exchanges control messages with workers as UDP packets
//! (§3.4.2). This module defines one self-describing header for all of
//! them, carried as the UDP payload.

use crate::WireError;

/// Magic bytes identifying a mindgap message ("MG").
pub const MAGIC: u16 = 0x4d47;

/// Fixed header length in bytes.
pub const HEADER_LEN: usize = 42;

/// Message kinds.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MsgKind {
    /// Client → server: a new request carrying `service_ns` of fake work.
    Request,
    /// Server → client: the response for a finished request.
    Response,
    /// Dispatcher → worker: run this request (possibly resumed after an
    /// earlier preemption, in which case `remaining_ns < service_ns`).
    Assign,
    /// Worker → dispatcher: the request finished; the worker is free.
    Done,
    /// Worker → dispatcher: the time slice expired; the request goes back to
    /// the tail of the centralized queue with `remaining_ns` left.
    Preempted,
    /// Worker → dispatcher: idle heartbeat / load feedback (core-status
    /// message in the informed-scheduling design, §2.3).
    Feedback,
    /// Dispatcher → client: early negative acknowledgement — the request
    /// was shed by admission control and will never run; retry or give up
    /// now instead of waiting out the timeout.
    Nack,
    /// Worker → dispatcher: lease renewal for the failure detector. Only
    /// emitted when NIC-side recovery is enabled; runs without recovery
    /// never put this kind on the wire.
    Heartbeat,
}

impl MsgKind {
    fn to_u8(self) -> u8 {
        match self {
            MsgKind::Request => 1,
            MsgKind::Response => 2,
            MsgKind::Assign => 3,
            MsgKind::Done => 4,
            MsgKind::Preempted => 5,
            MsgKind::Feedback => 6,
            MsgKind::Nack => 7,
            MsgKind::Heartbeat => 8,
        }
    }

    fn from_u8(v: u8) -> Result<MsgKind, WireError> {
        Ok(match v {
            1 => MsgKind::Request,
            2 => MsgKind::Response,
            3 => MsgKind::Assign,
            4 => MsgKind::Done,
            5 => MsgKind::Preempted,
            6 => MsgKind::Feedback,
            7 => MsgKind::Nack,
            8 => MsgKind::Heartbeat,
            _ => return Err(WireError::Malformed),
        })
    }
}

/// The parsed/constructed application header.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MsgRepr {
    /// What this message is.
    pub kind: MsgKind,
    /// Unique request identifier (assigned by the client).
    pub req_id: u64,
    /// Originating client identifier.
    pub client_id: u32,
    /// Total fake-work service time, nanoseconds.
    pub service_ns: u64,
    /// Remaining fake work (== `service_ns` until first preemption).
    /// In `Response` messages this field is repurposed as the NIC's
    /// instantaneous scheduler-load stamp (queued + outstanding requests)
    /// for the §5.2 congestion-control co-design; pure open-loop clients
    /// ignore it.
    pub remaining_ns: u64,
    /// Client send timestamp, nanoseconds on the simulation clock; carried
    /// end-to-end so the client can compute sojourn latency.
    pub sent_at_ns: u64,
    /// Extra padding bytes appended after the header, emulating request
    /// bodies of different sizes (the paper considers 64 B and 1 KiB).
    pub body_len: u16,
    /// Scheduler slice grant riding `Assign` frames in the once-reserved
    /// header byte: 0 = inherit the worker's configured slice, 255 = run
    /// to completion, 1–254 = budget in microseconds (see
    /// `nicsched::PreemptDecision`). Zero — the old reserved value — in
    /// every other kind, so default frames are byte-identical to the
    /// pre-grant protocol.
    pub grant_code: u8,
}

mod field {
    use core::ops::Range;
    pub const MAGIC: Range<usize> = 0..2;
    pub const KIND: usize = 2;
    pub const GRANT: usize = 3;
    pub const REQ_ID: Range<usize> = 4..12;
    pub const CLIENT_ID: Range<usize> = 12..16;
    pub const SERVICE: Range<usize> = 16..24;
    pub const REMAINING: Range<usize> = 24..32;
    pub const SENT_AT: Range<usize> = 32..40;
    pub const BODY_LEN: Range<usize> = 40..42;
}

impl MsgRepr {
    /// A fresh client request.
    pub fn request(
        req_id: u64,
        client_id: u32,
        service_ns: u64,
        sent_at_ns: u64,
        body_len: u16,
    ) -> Self {
        MsgRepr {
            kind: MsgKind::Request,
            req_id,
            client_id,
            service_ns,
            remaining_ns: service_ns,
            sent_at_ns,
            body_len,
            grant_code: 0,
        }
    }

    /// Derive the response for this request.
    pub fn response(&self) -> MsgRepr {
        MsgRepr {
            kind: MsgKind::Response,
            remaining_ns: 0,
            grant_code: 0,
            ..*self
        }
    }

    /// Derive a message of a different kind, preserving identity fields
    /// but not the grant (only `Assign` frames carry one).
    pub fn with_kind(&self, kind: MsgKind) -> MsgRepr {
        MsgRepr {
            kind,
            grant_code: 0,
            ..*self
        }
    }

    /// Total emitted length: header plus padding body.
    pub fn buffer_len(&self) -> usize {
        HEADER_LEN + self.body_len as usize
    }

    /// Write the header (and zero body padding) into `buf`.
    ///
    /// # Panics
    /// Panics if `buf` is shorter than [`MsgRepr::buffer_len`].
    pub fn emit(&self, buf: &mut [u8]) {
        assert!(buf.len() >= self.buffer_len(), "message buffer too short");
        buf[field::MAGIC].copy_from_slice(&MAGIC.to_be_bytes());
        buf[field::KIND] = self.kind.to_u8();
        buf[field::GRANT] = self.grant_code;
        buf[field::REQ_ID].copy_from_slice(&self.req_id.to_be_bytes());
        buf[field::CLIENT_ID].copy_from_slice(&self.client_id.to_be_bytes());
        buf[field::SERVICE].copy_from_slice(&self.service_ns.to_be_bytes());
        buf[field::REMAINING].copy_from_slice(&self.remaining_ns.to_be_bytes());
        buf[field::SENT_AT].copy_from_slice(&self.sent_at_ns.to_be_bytes());
        buf[field::BODY_LEN].copy_from_slice(&self.body_len.to_be_bytes());
        buf[HEADER_LEN..self.buffer_len()].fill(0);
    }

    /// Parse a header from `buf`.
    pub fn parse(buf: &[u8]) -> Result<MsgRepr, WireError> {
        if buf.len() < HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let magic = u16::from_be_bytes([buf[0], buf[1]]);
        if magic != MAGIC {
            return Err(WireError::BadMagic);
        }
        let kind = MsgKind::from_u8(buf[field::KIND])?;
        let body_len =
            u16::from_be_bytes([buf[field::BODY_LEN.start], buf[field::BODY_LEN.start + 1]]);
        if buf.len() < HEADER_LEN + body_len as usize {
            return Err(WireError::Truncated);
        }
        let be64 = |r: core::ops::Range<usize>| {
            let mut b = [0u8; 8];
            b.copy_from_slice(&buf[r]);
            u64::from_be_bytes(b)
        };
        let mut cid = [0u8; 4];
        cid.copy_from_slice(&buf[field::CLIENT_ID]);
        Ok(MsgRepr {
            kind,
            req_id: be64(field::REQ_ID),
            client_id: u32::from_be_bytes(cid),
            service_ns: be64(field::SERVICE),
            remaining_ns: be64(field::REMAINING),
            sent_at_ns: be64(field::SENT_AT),
            body_len,
            grant_code: buf[field::GRANT],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MsgRepr {
        MsgRepr::request(0xdead_beef_0123, 7, 5_000, 123_456_789, 22)
    }

    #[test]
    fn emit_parse_round_trip() {
        let m = sample();
        let mut buf = vec![0u8; m.buffer_len()];
        m.emit(&mut buf);
        assert_eq!(MsgRepr::parse(&buf).unwrap(), m);
        assert_eq!(buf.len(), HEADER_LEN + 22);
    }

    #[test]
    fn all_kinds_round_trip() {
        for kind in [
            MsgKind::Request,
            MsgKind::Response,
            MsgKind::Assign,
            MsgKind::Done,
            MsgKind::Preempted,
            MsgKind::Feedback,
            MsgKind::Nack,
            MsgKind::Heartbeat,
        ] {
            let m = sample().with_kind(kind);
            let mut buf = vec![0u8; m.buffer_len()];
            m.emit(&mut buf);
            assert_eq!(MsgRepr::parse(&buf).unwrap().kind, kind);
        }
    }

    #[test]
    fn response_derivation() {
        let m = sample();
        let r = m.response();
        assert_eq!(r.kind, MsgKind::Response);
        assert_eq!(r.req_id, m.req_id);
        assert_eq!(r.sent_at_ns, m.sent_at_ns);
        assert_eq!(r.remaining_ns, 0);
        assert_eq!(r.grant_code, 0);
    }

    #[test]
    fn grant_codes_ride_the_reserved_byte() {
        let mut m = sample().with_kind(MsgKind::Assign);
        m.grant_code = 25;
        let mut buf = vec![0u8; m.buffer_len()];
        m.emit(&mut buf);
        assert_eq!(buf[3], 25, "grant occupies the old reserved offset");
        assert_eq!(MsgRepr::parse(&buf).unwrap().grant_code, 25);
        // A zero grant reproduces the pre-grant frame bytes exactly.
        let legacy = sample().with_kind(MsgKind::Assign);
        let mut legacy_buf = vec![0u8; legacy.buffer_len()];
        legacy.emit(&mut legacy_buf);
        assert_eq!(legacy_buf[3], 0);
    }

    #[test]
    fn bad_magic_rejected() {
        let m = sample();
        let mut buf = vec![0u8; m.buffer_len()];
        m.emit(&mut buf);
        buf[0] = 0;
        assert_eq!(MsgRepr::parse(&buf).unwrap_err(), WireError::BadMagic);
    }

    #[test]
    fn bad_kind_rejected() {
        let m = sample();
        let mut buf = vec![0u8; m.buffer_len()];
        m.emit(&mut buf);
        buf[2] = 99;
        assert_eq!(MsgRepr::parse(&buf).unwrap_err(), WireError::Malformed);
    }

    #[test]
    fn truncation_rejected() {
        let m = sample();
        let mut buf = vec![0u8; m.buffer_len()];
        m.emit(&mut buf);
        assert_eq!(
            MsgRepr::parse(&buf[..HEADER_LEN - 1]).unwrap_err(),
            WireError::Truncated
        );
        // Header claims a 22-byte body; give it less.
        assert_eq!(
            MsgRepr::parse(&buf[..HEADER_LEN + 2]).unwrap_err(),
            WireError::Truncated
        );
    }

    #[test]
    #[should_panic(expected = "buffer too short")]
    fn emit_into_short_buffer_panics() {
        let m = sample();
        let mut buf = vec![0u8; HEADER_LEN]; // missing body space
        m.emit(&mut buf);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_kind() -> impl Strategy<Value = MsgKind> {
        prop_oneof![
            Just(MsgKind::Request),
            Just(MsgKind::Response),
            Just(MsgKind::Assign),
            Just(MsgKind::Done),
            Just(MsgKind::Preempted),
            Just(MsgKind::Feedback),
            Just(MsgKind::Nack),
            Just(MsgKind::Heartbeat),
        ]
    }

    proptest! {
        #[test]
        fn any_message_round_trips(kind in arb_kind(), req_id in any::<u64>(),
                                   client_id in any::<u32>(), service in any::<u64>(),
                                   remaining in any::<u64>(), sent in any::<u64>(),
                                   body in 0u16..2048, grant in any::<u8>()) {
            let m = MsgRepr { kind, req_id, client_id, service_ns: service,
                              remaining_ns: remaining, sent_at_ns: sent, body_len: body,
                              grant_code: grant };
            let mut buf = vec![0xaau8; m.buffer_len()];
            m.emit(&mut buf);
            prop_assert_eq!(MsgRepr::parse(&buf).unwrap(), m);
        }

        #[test]
        fn random_bytes_never_panic(data in proptest::collection::vec(any::<u8>(), 0..128)) {
            let _ = MsgRepr::parse(&data);
        }
    }
}
