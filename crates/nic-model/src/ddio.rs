//! Direct Data I/O cache-placement model.
//!
//! DDIO lets the NIC DMA packets straight into the LLC instead of DRAM
//! (§5.2), but is restricted to a couple of LLC ways to avoid cache
//! pollution. The paper's observation: because the informed scheduler
//! guarantees at most one (or a small bounded number of) in-flight requests
//! per core, packets could safely be placed even in the *L1* without
//! filling it — a use case unlocked by NIC-side scheduling.
//!
//! The model answers one question with honest accounting: when the worker
//! first touches a freshly DMA'd packet, how long does that access take?

use sim_core::SimDuration;

/// Where the NIC placed a packet's cache lines.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Placement {
    /// Main memory: DDIO off or the DDIO way quota was exhausted.
    Dram,
    /// Last-level cache (classic DDIO).
    Llc,
    /// A core-private high-level cache (the §5.2 proposal).
    L1,
}

/// Per-line first-access latencies (Xeon E5-class, §4 platform).
#[derive(Clone, Copy, Debug)]
pub struct AccessLatencies {
    /// DRAM access.
    pub dram: SimDuration,
    /// LLC hit.
    pub llc: SimDuration,
    /// L1 hit.
    pub l1: SimDuration,
}

impl Default for AccessLatencies {
    fn default() -> Self {
        AccessLatencies {
            dram: SimDuration::from_nanos(90),
            llc: SimDuration::from_nanos(20),
            l1: SimDuration::from_nanos(2),
        }
    }
}

/// DDIO configuration and occupancy tracking.
#[derive(Debug, Clone)]
pub struct Ddio {
    /// Whether DDIO is enabled at all.
    pub enabled: bool,
    /// Whether high-level-cache placement (the §5.2 extension) is allowed.
    /// Safe only when the scheduler bounds in-flight requests per core.
    pub allow_l1: bool,
    /// Cache lines the DDIO way quota can hold concurrently.
    pub llc_line_quota: usize,
    /// Lines a single core's L1 can safely absorb per in-flight request
    /// budget; beyond this, placement falls back to LLC.
    pub l1_line_quota: usize,
    latencies: AccessLatencies,
    llc_resident: usize,
    /// Per-core L1-resident line counts are tracked by the caller handing
    /// us the current count; the model stays stateless across cores.
    pub placements_dram: u64,
    /// Packets placed in LLC.
    pub placements_llc: u64,
    /// Packets placed in L1.
    pub placements_l1: u64,
}

impl Ddio {
    /// Classic DDIO: enabled, LLC only, 2 ways of a 2.5 MiB/way LLC slice
    /// (≈ 80k lines across the socket; we default to a deliberately small
    /// quota so overload spills visibly).
    pub fn classic(llc_line_quota: usize) -> Ddio {
        Ddio {
            enabled: true,
            allow_l1: false,
            llc_line_quota,
            l1_line_quota: 512, // 32 KiB L1d
            latencies: AccessLatencies::default(),
            llc_resident: 0,
            placements_dram: 0,
            placements_llc: 0,
            placements_l1: 0,
        }
    }

    /// DDIO disabled: every packet lands in DRAM.
    pub fn disabled() -> Ddio {
        Ddio {
            enabled: false,
            ..Ddio::classic(0)
        }
    }

    /// The §5.2 design: L1 placement allowed because the NIC scheduler
    /// bounds per-core in-flight requests.
    pub fn informed_l1(llc_line_quota: usize) -> Ddio {
        Ddio {
            allow_l1: true,
            ..Ddio::classic(llc_line_quota)
        }
    }

    /// Decide placement for a packet of `lines` cache lines destined to a
    /// core that currently has `core_l1_lines` packet lines in its L1.
    pub fn place(&mut self, lines: usize, core_l1_lines: usize) -> Placement {
        if !self.enabled {
            self.placements_dram += 1;
            return Placement::Dram;
        }
        if self.allow_l1 && core_l1_lines + lines <= self.l1_line_quota {
            self.placements_l1 += 1;
            return Placement::L1;
        }
        if self.llc_resident + lines <= self.llc_line_quota {
            self.llc_resident += lines;
            self.placements_llc += 1;
            Placement::Llc
        } else {
            self.placements_dram += 1;
            Placement::Dram
        }
    }

    /// Release a packet's LLC residency once the worker has consumed it.
    pub fn release(&mut self, placement: Placement, lines: usize) {
        if placement == Placement::Llc {
            self.llc_resident = self.llc_resident.saturating_sub(lines);
        }
    }

    /// First-touch cost for the worker to read a packet of `lines` lines
    /// from `placement`. Only the latency-bound first line pays the full
    /// trip; subsequent lines stream (we charge 1/4 of the lead latency).
    pub fn first_touch(&self, placement: Placement, lines: usize) -> SimDuration {
        self.first_touch_from(placement, lines, SimDuration::ZERO)
    }

    /// [`Ddio::first_touch`] with a per-line interconnect penalty added —
    /// the cross-socket case §1 warns about: DDIO preloaded the packet
    /// into the NIC socket's LLC, but the dispatcher picked a worker on
    /// the other socket, so every line crosses QPI/UPI.
    pub fn first_touch_from(
        &self,
        placement: Placement,
        lines: usize,
        interconnect: SimDuration,
    ) -> SimDuration {
        let per_line = match placement {
            Placement::Dram => self.latencies.dram,
            Placement::Llc => self.latencies.llc,
            Placement::L1 => self.latencies.l1,
        } + interconnect;
        if lines == 0 {
            return SimDuration::ZERO;
        }
        per_line + per_line.mul_f64(0.25) * (lines as u64 - 1)
    }

    /// Lines currently resident under the LLC quota.
    pub fn llc_resident(&self) -> usize {
        self.llc_resident
    }
}

/// Cache lines a packet of `bytes` occupies (64-byte lines).
pub fn packet_lines(bytes: usize) -> usize {
    bytes.div_ceil(64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_means_dram() {
        let mut d = Ddio::disabled();
        assert_eq!(d.place(3, 0), Placement::Dram);
        assert_eq!(d.placements_dram, 1);
    }

    #[test]
    fn classic_places_in_llc_until_quota() {
        let mut d = Ddio::classic(10);
        assert_eq!(d.place(4, 0), Placement::Llc);
        assert_eq!(d.place(4, 0), Placement::Llc);
        assert_eq!(d.llc_resident(), 8);
        // Next 4-line packet exceeds the quota -> DRAM spill.
        assert_eq!(d.place(4, 0), Placement::Dram);
        d.release(Placement::Llc, 4);
        assert_eq!(d.place(4, 0), Placement::Llc);
    }

    #[test]
    fn informed_scheduler_unlocks_l1() {
        let mut d = Ddio::informed_l1(10);
        // One bounded in-flight packet fits the L1 quota.
        assert_eq!(d.place(3, 0), Placement::L1);
        // A core already flooded with packet lines falls back to LLC.
        assert_eq!(d.place(3, 511), Placement::Llc);
    }

    #[test]
    fn first_touch_orders_correctly() {
        let d = Ddio::classic(100);
        let lines = packet_lines(148);
        let dram = d.first_touch(Placement::Dram, lines);
        let llc = d.first_touch(Placement::Llc, lines);
        let l1 = d.first_touch(Placement::L1, lines);
        assert!(l1 < llc && llc < dram, "{l1} < {llc} < {dram}");
        assert_eq!(d.first_touch(Placement::Dram, 0), SimDuration::ZERO);
    }

    #[test]
    fn release_never_underflows() {
        let mut d = Ddio::classic(10);
        d.release(Placement::Llc, 99);
        assert_eq!(d.llc_resident(), 0);
        d.release(Placement::Dram, 5); // no-op
        assert_eq!(d.llc_resident(), 0);
    }

    #[test]
    fn packet_line_math() {
        assert_eq!(packet_lines(0), 0);
        assert_eq!(packet_lines(1), 1);
        assert_eq!(packet_lines(64), 1);
        assert_eq!(packet_lines(65), 2);
        assert_eq!(packet_lines(148), 3);
        assert_eq!(packet_lines(1024), 16);
    }
}
