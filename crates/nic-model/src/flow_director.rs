//! Intel Flow Director-style exact-match steering.
//!
//! MICA (§2.1) steers requests to cores with Flow Director: an exact-match
//! table from flow identity (here, the UDP 4-tuple — MICA encodes the key
//! partition in the destination port) to a specific RX queue. Unlike RSS
//! there is no hashing ambiguity: a rule pins a flow to a core, which gives
//! MICA its EREW partitioning but inherits RSS's blindness to load.

use std::collections::BTreeMap;

use net_wire::Endpoint;

/// A flow signature: the UDP/IPv4 4-tuple.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct FlowKey {
    /// Source endpoint.
    pub src: Endpoint,
    /// Destination endpoint.
    pub dst: Endpoint,
}

/// An exact-match flow steering table with bounded capacity, like the
/// 8K-entry perfect-match Flow Director tables in the 82599.
///
/// Rules live in a `BTreeMap`: iteration order is the key order, never the
/// hasher's, so any future walk over the table (eviction sweeps, dumps)
/// cannot leak nondeterminism into event timing.
#[derive(Debug)]
pub struct FlowDirector {
    rules: BTreeMap<FlowKey, u32>,
    capacity: usize,
    /// Packets matched by a rule.
    pub hits: u64,
    /// Packets that fell through to the default path.
    pub misses: u64,
}

/// Outcome of attempting to install a rule.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum InstallResult {
    /// New rule installed.
    Installed,
    /// An existing rule for the same flow was overwritten.
    Replaced,
    /// The table is full; rule rejected.
    TableFull,
}

impl FlowDirector {
    /// A table holding up to `capacity` rules.
    pub fn new(capacity: usize) -> FlowDirector {
        assert!(capacity > 0, "flow table capacity must be positive");
        FlowDirector {
            rules: BTreeMap::new(),
            capacity,
            hits: 0,
            misses: 0,
        }
    }

    /// Install (or replace) a rule steering `key` to `queue`.
    pub fn install(&mut self, key: FlowKey, queue: u32) -> InstallResult {
        if let Some(q) = self.rules.get_mut(&key) {
            *q = queue;
            return InstallResult::Replaced;
        }
        if self.rules.len() >= self.capacity {
            return InstallResult::TableFull;
        }
        self.rules.insert(key, queue);
        InstallResult::Installed
    }

    /// Remove the rule for `key`, returning its queue if present.
    pub fn remove(&mut self, key: &FlowKey) -> Option<u32> {
        self.rules.remove(key)
    }

    /// Steer a packet: `Some(queue)` on a rule hit, `None` to fall through
    /// to the default path (typically RSS).
    pub fn steer(&mut self, key: &FlowKey) -> Option<u32> {
        match self.rules.get(key) {
            Some(&q) => {
                self.hits += 1;
                Some(q)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Number of installed rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True when no rules are installed.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use net_wire::Ipv4Address;

    fn key(port: u16) -> FlowKey {
        FlowKey {
            src: Endpoint::new(Ipv4Address::new(10, 0, 0, 1), port),
            dst: Endpoint::new(Ipv4Address::new(10, 0, 0, 2), 6000),
        }
    }

    #[test]
    fn install_and_steer() {
        let mut fd = FlowDirector::new(16);
        assert_eq!(fd.install(key(1), 3), InstallResult::Installed);
        assert_eq!(fd.steer(&key(1)), Some(3));
        assert_eq!(fd.steer(&key(2)), None);
        assert_eq!(fd.hits, 1);
        assert_eq!(fd.misses, 1);
    }

    #[test]
    fn replace_updates_queue() {
        let mut fd = FlowDirector::new(16);
        fd.install(key(1), 3);
        assert_eq!(fd.install(key(1), 5), InstallResult::Replaced);
        assert_eq!(fd.steer(&key(1)), Some(5));
        assert_eq!(fd.len(), 1);
    }

    #[test]
    fn capacity_enforced_but_replacement_allowed_when_full() {
        let mut fd = FlowDirector::new(2);
        fd.install(key(1), 0);
        fd.install(key(2), 1);
        assert_eq!(fd.install(key(3), 2), InstallResult::TableFull);
        // Replacing an existing rule still works at capacity.
        assert_eq!(fd.install(key(2), 7), InstallResult::Replaced);
        assert_eq!(fd.steer(&key(2)), Some(7));
    }

    #[test]
    fn remove_frees_space() {
        let mut fd = FlowDirector::new(1);
        fd.install(key(1), 0);
        assert_eq!(fd.remove(&key(1)), Some(0));
        assert!(fd.is_empty());
        assert_eq!(fd.install(key(2), 1), InstallResult::Installed);
        assert_eq!(fd.remove(&key(9)), None);
    }
}
