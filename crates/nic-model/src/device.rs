//! The NIC device: interfaces, MAC/SR-IOV steering, and DMA cost.
//!
//! The Stingray "presents network interfaces, each with a unique MAC
//! address, to both the host server CPU and the ARM CPU. When a packet
//! arrives, it is steered to the proper CPU based on the MAC address in the
//! Ethernet header" (§3.3), and "SR-IOV is used to create enough virtual
//! network interfaces such that there is one virtual interface per worker"
//! (§3.4.2). [`NicDevice`] models exactly that: a MAC-keyed interface
//! table, per-interface RX rings, optional multi-queue RSS / Flow Director
//! steering within an interface, and the PCIe DMA latency a frame pays
//! between the wire and host memory.

use std::collections::BTreeMap;

use net_wire::{EthernetAddress, ParsedFrame};
use sim_core::SimDuration;

use crate::flow_director::{FlowDirector, FlowKey};
use crate::ring::Ring;
use crate::rss::Rss;

/// Identifies an interface (physical function or SR-IOV VF) on the device.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct IfaceId(pub u32);

/// How a multi-queue interface spreads frames across its RX queues.
#[derive(Debug)]
pub enum QueueSteering {
    /// Single queue: everything lands in queue 0.
    Single,
    /// RSS over the 4-tuple.
    Rss(Rss),
    /// Flow Director exact-match with RSS fallback for unmatched flows.
    FlowDirector {
        /// The exact-match table.
        table: FlowDirector,
        /// Fallback for flows without a rule.
        fallback: Rss,
    },
}

/// One interface: MAC identity, RX queues, and a steering mode.
#[derive(Debug)]
pub struct Iface {
    /// The interface MAC address.
    pub mac: EthernetAddress,
    /// RX descriptor rings.
    pub rx: Vec<Ring>,
    /// Queue-selection policy.
    pub steering: QueueSteering,
}

impl Iface {
    /// Queue index this frame steers to.
    fn select_queue(&mut self, frame: &ParsedFrame) -> usize {
        match &mut self.steering {
            QueueSteering::Single => 0,
            QueueSteering::Rss(rss) => {
                let (sip, dip, sp, dp) = frame.four_tuple();
                rss.steer(sip, dip, sp, dp) as usize % self.rx.len()
            }
            QueueSteering::FlowDirector { table, fallback } => {
                let key = FlowKey {
                    src: frame.src(),
                    dst: frame.dst(),
                };
                match table.steer(&key) {
                    Some(q) => q as usize % self.rx.len(),
                    None => {
                        let (sip, dip, sp, dp) = frame.four_tuple();
                        fallback.steer(sip, dip, sp, dp) as usize % self.rx.len()
                    }
                }
            }
        }
    }
}

/// Where the device decided a frame goes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SteerDecision {
    /// Target interface.
    pub iface: IfaceId,
    /// Target RX queue within the interface.
    pub queue: usize,
}

/// The NIC device model.
#[derive(Debug)]
pub struct NicDevice {
    ifaces: Vec<Iface>,
    // Ordered map: MAC lookups are point queries today, but an ordered
    // table guarantees any future iteration (dump, broadcast) is
    // deterministic.
    mac_table: BTreeMap<EthernetAddress, IfaceId>,
    /// One-way DMA latency between the device and host memory over PCIe.
    pub dma_latency: SimDuration,
    /// Frames whose destination MAC matched no interface.
    pub unmatched_drops: u64,
}

impl NicDevice {
    /// A device with the given PCIe DMA latency and no interfaces.
    pub fn new(dma_latency: SimDuration) -> NicDevice {
        NicDevice {
            ifaces: Vec::new(),
            mac_table: BTreeMap::new(),
            dma_latency,
            unmatched_drops: 0,
        }
    }

    /// Add an interface (PF or SR-IOV VF) with `queues` RX rings of
    /// `ring_capacity` descriptors each.
    ///
    /// # Panics
    /// Panics if the MAC is already registered — VF MACs must be unique,
    /// that is the whole steering mechanism.
    pub fn add_iface(
        &mut self,
        mac: EthernetAddress,
        queues: usize,
        ring_capacity: usize,
        steering: QueueSteering,
    ) -> IfaceId {
        assert!(queues > 0, "an interface needs at least one queue");
        let id = IfaceId(self.ifaces.len() as u32);
        let previous = self.mac_table.insert(mac, id);
        assert!(previous.is_none(), "duplicate interface MAC {mac}");
        self.ifaces.push(Iface {
            mac,
            rx: (0..queues).map(|_| Ring::new(ring_capacity)).collect(),
            steering,
        });
        id
    }

    /// Steer a parsed frame by destination MAC (and intra-interface
    /// steering). `None` means no interface owns the MAC; the frame is
    /// dropped and counted.
    pub fn steer(&mut self, frame: &ParsedFrame) -> Option<SteerDecision> {
        match self.mac_table.get(&frame.eth.dst_addr) {
            Some(&id) => {
                let queue = self.ifaces[id.0 as usize].select_queue(frame);
                Some(SteerDecision { iface: id, queue })
            }
            None => {
                self.unmatched_drops += 1;
                None
            }
        }
    }

    /// Access an interface.
    pub fn iface(&self, id: IfaceId) -> &Iface {
        &self.ifaces[id.0 as usize]
    }

    /// Mutable access to an interface (to push/pop its rings).
    pub fn iface_mut(&mut self, id: IfaceId) -> &mut Iface {
        &mut self.ifaces[id.0 as usize]
    }

    /// Look up an interface by MAC.
    pub fn iface_by_mac(&self, mac: EthernetAddress) -> Option<IfaceId> {
        self.mac_table.get(&mac).copied()
    }

    /// Number of interfaces.
    pub fn iface_count(&self) -> usize {
        self.ifaces.len()
    }

    /// Audit every RX ring of every interface (occupancy bounds and frame
    /// conservation), reporting violations through `inv`. Called from
    /// [`sim_core::Model::check_invariants`] implementations on invcheck
    /// runs; pure observation, never mutates.
    pub fn check_invariants(&self, now: sim_core::SimTime, inv: &mut sim_core::InvariantChecker) {
        for iface in &self.ifaces {
            for ring in &iface.rx {
                ring.check_invariants(now, inv);
            }
        }
    }

    /// Total frames dropped across every ring of every interface plus
    /// unmatched-MAC drops.
    pub fn total_drops(&self) -> u64 {
        self.unmatched_drops
            + self
                .ifaces
                .iter()
                .flat_map(|i| i.rx.iter())
                .map(|r| r.dropped)
                .sum::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use net_wire::{Endpoint, FrameSpec, Ipv4Address, MsgRepr};

    fn mac(n: u8) -> EthernetAddress {
        EthernetAddress::new(2, 0, 0, 0, 0, n)
    }

    fn frame_to(dst: EthernetAddress, src_port: u16) -> ParsedFrame {
        let spec = FrameSpec {
            src_mac: mac(99),
            dst_mac: dst,
            src: Endpoint::new(Ipv4Address::new(10, 0, 0, 1), src_port),
            dst: Endpoint::new(Ipv4Address::new(10, 0, 0, 2), 6000),
            msg: MsgRepr::request(1, 1, 1000, 0, 22),
        };
        ParsedFrame::parse(&spec.build()).unwrap()
    }

    #[test]
    fn mac_steering_selects_interface() {
        let mut dev = NicDevice::new(SimDuration::from_nanos(900));
        let a = dev.add_iface(mac(1), 1, 64, QueueSteering::Single);
        let b = dev.add_iface(mac(2), 1, 64, QueueSteering::Single);
        assert_eq!(dev.steer(&frame_to(mac(1), 5)).unwrap().iface, a);
        assert_eq!(dev.steer(&frame_to(mac(2), 5)).unwrap().iface, b);
        assert_eq!(dev.iface_by_mac(mac(2)), Some(b));
        assert_eq!(dev.iface_count(), 2);
    }

    #[test]
    fn unmatched_mac_dropped_and_counted() {
        let mut dev = NicDevice::new(SimDuration::ZERO);
        dev.add_iface(mac(1), 1, 64, QueueSteering::Single);
        assert_eq!(dev.steer(&frame_to(mac(7), 5)), None);
        assert_eq!(dev.unmatched_drops, 1);
        assert_eq!(dev.total_drops(), 1);
    }

    #[test]
    #[should_panic(expected = "duplicate interface MAC")]
    fn duplicate_mac_rejected() {
        let mut dev = NicDevice::new(SimDuration::ZERO);
        dev.add_iface(mac(1), 1, 64, QueueSteering::Single);
        dev.add_iface(mac(1), 1, 64, QueueSteering::Single);
    }

    #[test]
    fn rss_interface_spreads_flows() {
        let mut dev = NicDevice::new(SimDuration::ZERO);
        let id = dev.add_iface(mac(1), 4, 64, QueueSteering::Rss(Rss::new(4)));
        let mut seen = std::collections::BTreeSet::new();
        for port in 0..512 {
            let d = dev.steer(&frame_to(mac(1), port)).unwrap();
            assert_eq!(d.iface, id);
            seen.insert(d.queue);
        }
        assert_eq!(seen.len(), 4, "all queues should receive flows");
    }

    #[test]
    fn flow_director_overrides_rss() {
        let mut dev = NicDevice::new(SimDuration::ZERO);
        let mut table = FlowDirector::new(8);
        let probe = frame_to(mac(1), 77);
        table.install(
            FlowKey {
                src: probe.src(),
                dst: probe.dst(),
            },
            2,
        );
        dev.add_iface(
            mac(1),
            4,
            64,
            QueueSteering::FlowDirector {
                table,
                fallback: Rss::new(4),
            },
        );
        let d = dev.steer(&frame_to(mac(1), 77)).unwrap();
        assert_eq!(d.queue, 2, "rule hit steers to the pinned queue");
        // Flow without a rule falls back to RSS deterministically.
        let d1 = dev.steer(&frame_to(mac(1), 78)).unwrap();
        let d2 = dev.steer(&frame_to(mac(1), 78)).unwrap();
        assert_eq!(d1.queue, d2.queue);
    }

    #[test]
    fn ring_drops_count_in_totals() {
        let mut dev = NicDevice::new(SimDuration::ZERO);
        let id = dev.add_iface(mac(1), 1, 1, QueueSteering::Single);
        let data = bytes::Bytes::from_static(b"x");
        let now = sim_core::SimTime::ZERO;
        assert!(dev.iface_mut(id).rx[0].push(now, data.clone()));
        assert!(!dev.iface_mut(id).rx[0].push(now, data));
        assert_eq!(dev.total_drops(), 1);
    }
}
