//! RX/TX descriptor ring model.
//!
//! Every interface in the system — each worker's SR-IOV virtual function,
//! the dispatcher's ARM-side interface, the external port — owns descriptor
//! rings. A ring has a fixed descriptor count; when it is full the hardware
//! drops the frame (tail drop), which is exactly the overload behaviour the
//! queuing optimization (§3.4.5) must not trip over: the dispatcher stashes
//! only a bounded number of outstanding requests in each worker's RX ring.
//!
//! The ring records an enqueue timestamp per frame so consumers can account
//! HW-queueing delay separately from software processing.

use std::collections::VecDeque;

use bytes::Bytes;
use sim_core::{SimDuration, SimTime};

/// One queued frame with its hardware arrival timestamp.
#[derive(Debug, Clone)]
pub struct RxFrame {
    /// The frame bytes (refcounted; cloning is cheap).
    pub data: Bytes,
    /// When the NIC placed the frame in the ring.
    pub enqueued_at: SimTime,
}

/// A fixed-capacity descriptor ring with tail-drop semantics.
#[derive(Debug)]
pub struct Ring {
    frames: VecDeque<RxFrame>,
    capacity: usize,
    /// Frames accepted.
    pub enqueued: u64,
    /// Frames dequeued by software.
    pub popped: u64,
    /// Frames dropped because the ring was full.
    pub dropped: u64,
    /// Occupancy high-water mark.
    pub peak: usize,
}

impl Ring {
    /// A ring with `capacity` descriptors (hardware commonly uses 512–4096).
    pub fn new(capacity: usize) -> Ring {
        assert!(capacity > 0, "ring capacity must be positive");
        Ring {
            frames: VecDeque::with_capacity(capacity),
            capacity,
            enqueued: 0,
            popped: 0,
            dropped: 0,
            peak: 0,
        }
    }

    /// Descriptor count the ring was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Audit this ring's occupancy bound and frame conservation at `now`,
    /// reporting violations through `inv`. Pure observation: safe to call
    /// on every event of an invcheck run.
    pub fn check_invariants(&self, now: SimTime, inv: &mut sim_core::InvariantChecker) {
        inv.check_bound(
            now,
            "nic.ring",
            self.frames.len() as u64,
            self.capacity as u64,
        );
        inv.check_bound(now, "nic.ring.peak", self.peak as u64, self.capacity as u64);
        inv.check_conservation(
            now,
            "nic.ring frames (enqueued = popped + resident)",
            self.enqueued,
            self.popped + self.frames.len() as u64,
        );
    }

    /// Hardware-side enqueue. Returns `false` (and counts a drop) when full.
    pub fn push(&mut self, now: SimTime, data: Bytes) -> bool {
        if self.frames.len() >= self.capacity {
            self.dropped += 1;
            return false;
        }
        self.frames.push_back(RxFrame {
            data,
            enqueued_at: now,
        });
        self.enqueued += 1;
        self.peak = self.peak.max(self.frames.len());
        true
    }

    /// Software-side dequeue of the oldest frame.
    pub fn pop(&mut self) -> Option<RxFrame> {
        let frame = self.frames.pop_front();
        self.popped += frame.is_some() as u64;
        frame
    }

    /// Burst dequeue of up to `max` frames (DPDK `rx_burst`).
    pub fn pop_burst(&mut self, max: usize) -> Vec<RxFrame> {
        let n = max.min(self.frames.len());
        self.popped += n as u64;
        self.frames.drain(..n).collect()
    }

    /// Frames currently queued.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// True when no frames are queued.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Free descriptors.
    pub fn free(&self) -> usize {
        self.capacity - self.frames.len()
    }

    /// Queueing delay the head frame has experienced by `now`.
    pub fn head_wait(&self, now: SimTime) -> Option<SimDuration> {
        self.frames
            .front()
            .map(|f| now.saturating_duration_since(f.enqueued_at))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(n: u8) -> Bytes {
        Bytes::from(vec![n; 4])
    }

    fn us(n: u64) -> SimTime {
        SimTime::from_micros(n)
    }

    #[test]
    fn fifo_order() {
        let mut r = Ring::new(4);
        for i in 0..3 {
            assert!(r.push(us(i as u64), frame(i)));
        }
        assert_eq!(r.pop().unwrap().data[0], 0);
        assert_eq!(r.pop().unwrap().data[0], 1);
        assert_eq!(r.pop().unwrap().data[0], 2);
        assert!(r.pop().is_none());
    }

    #[test]
    fn tail_drop_when_full() {
        let mut r = Ring::new(2);
        assert!(r.push(us(0), frame(0)));
        assert!(r.push(us(0), frame(1)));
        assert!(!r.push(us(0), frame(2)), "third frame dropped");
        assert_eq!(r.dropped, 1);
        assert_eq!(r.enqueued, 2);
        assert_eq!(r.len(), 2);
        // The queued frames are the first two, not the dropped one.
        assert_eq!(r.pop().unwrap().data[0], 0);
    }

    #[test]
    fn burst_dequeue() {
        let mut r = Ring::new(8);
        for i in 0..5 {
            r.push(us(0), frame(i));
        }
        let burst = r.pop_burst(3);
        assert_eq!(burst.len(), 3);
        assert_eq!(burst[0].data[0], 0);
        assert_eq!(r.len(), 2);
        assert_eq!(r.pop_burst(10).len(), 2);
        assert!(r.pop_burst(10).is_empty());
    }

    #[test]
    fn head_wait_measures_hw_queueing() {
        let mut r = Ring::new(4);
        r.push(us(10), frame(0));
        assert_eq!(r.head_wait(us(25)), Some(SimDuration::from_micros(15)));
        r.pop();
        assert_eq!(r.head_wait(us(25)), None);
    }

    #[test]
    fn occupancy_accounting() {
        let mut r = Ring::new(4);
        r.push(us(0), frame(0));
        r.push(us(0), frame(1));
        r.pop();
        r.push(us(0), frame(2));
        assert_eq!(r.peak, 2);
        assert_eq!(r.free(), 2);
        assert_eq!(r.popped, 1);
        assert_eq!(r.capacity(), 4);
    }

    #[test]
    fn invariant_audit_is_clean_and_conserves_frames() {
        use sim_core::{InvariantChecker, InvariantConfig};
        let mut r = Ring::new(2);
        r.push(us(0), frame(0));
        r.push(us(0), frame(1));
        r.push(us(0), frame(2)); // dropped
        r.pop_burst(1);
        let mut inv = InvariantChecker::new(InvariantConfig::enabled());
        r.check_invariants(us(1), &mut inv);
        inv.assert_clean();
        assert_eq!(inv.checks_performed(), 3);
    }
}
