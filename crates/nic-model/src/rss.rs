//! Receive Side Scaling: the Toeplitz hash and indirection table.
//!
//! RSS is the baseline steering mechanism the paper argues against (§1:
//! dataplane OSes "rely on Receive Side Scaling to randomly distribute
//! incoming requests to polling CPU cores"). We implement the real
//! algorithm — the Microsoft Toeplitz hash over the IPv4 4-tuple plus an
//! indirection table — verified against the published test vectors, so the
//! load-imbalance behaviour of RSS-based baselines (IX/ZygOS) is faithful.

/// The Microsoft-documented 40-byte default hash key, also the default in
/// most NIC drivers.
pub const DEFAULT_KEY: [u8; 40] = [
    0x6d, 0x5a, 0x56, 0xda, 0x25, 0x5b, 0x0e, 0xc2, 0x41, 0x67, 0x25, 0x3d, 0x43, 0xa3, 0x8f, 0xb0,
    0xd0, 0xca, 0x2b, 0xcb, 0xae, 0x7b, 0x30, 0xb4, 0x77, 0xcb, 0x2d, 0xa3, 0x80, 0x30, 0xf2, 0x0c,
    0x6a, 0x42, 0xb7, 0x3b, 0xbe, 0xac, 0x01, 0xfa,
];

/// Compute the Toeplitz hash of `input` under `key`.
///
/// For every set bit of the input (MSB-first), XOR in the 32-bit window of
/// the key beginning at that bit position.
pub fn toeplitz_hash(key: &[u8; 40], input: &[u8]) -> u32 {
    assert!(input.len() <= 36, "RSS input exceeds key coverage");
    let mut result: u32 = 0;
    // Current 32-bit window of the key, advanced one bit per input bit.
    let mut window: u32 = u32::from_be_bytes([key[0], key[1], key[2], key[3]]);
    let mut consumed_bits = 0;
    for &byte in input {
        for bit in (0..8).rev() {
            if byte >> bit & 1 == 1 {
                result ^= window;
            }
            window = advance(window, key, &mut consumed_bits);
        }
    }
    result
}

/// Shift the window left one bit, pulling the next key *bit* in at the LSB.
/// `bit_index` counts key bits already consumed beyond the initial window.
fn advance(window: u32, key: &[u8; 40], bit_index: &mut usize) -> u32 {
    let abs_bit = 32 + *bit_index; // absolute bit position in the key
    let byte = key[abs_bit / 8];
    let bit = (byte >> (7 - (abs_bit % 8))) & 1;
    *bit_index += 1;
    (window << 1) | u32::from(bit)
}

/// The hash input for UDP/IPv4: src addr, dst addr, src port, dst port,
/// all big-endian (the "4-tuple" configuration).
pub fn four_tuple_input(src: [u8; 4], dst: [u8; 4], src_port: u16, dst_port: u16) -> [u8; 12] {
    let mut input = [0u8; 12];
    input[0..4].copy_from_slice(&src);
    input[4..8].copy_from_slice(&dst);
    input[8..10].copy_from_slice(&src_port.to_be_bytes());
    input[10..12].copy_from_slice(&dst_port.to_be_bytes());
    input
}

/// The hash input for IPv4 without ports (the "2-tuple" configuration).
pub fn two_tuple_input(src: [u8; 4], dst: [u8; 4]) -> [u8; 8] {
    let mut input = [0u8; 8];
    input[0..4].copy_from_slice(&src);
    input[4..8].copy_from_slice(&dst);
    input
}

/// An RSS engine: key + indirection table mapping hash → RX queue.
#[derive(Debug, Clone)]
pub struct Rss {
    key: [u8; 40],
    /// Indirection table; hardware typically has 128 or 512 entries.
    table: Vec<u32>,
}

impl Rss {
    /// An RSS engine spreading over `queues` RX queues round-robin through
    /// a 128-entry indirection table, with the default key.
    pub fn new(queues: u32) -> Rss {
        Rss::with_table(DEFAULT_KEY, (0..128).map(|i| i % queues).collect())
    }

    /// Full control over key and indirection table.
    pub fn with_table(key: [u8; 40], table: Vec<u32>) -> Rss {
        assert!(!table.is_empty(), "indirection table must not be empty");
        Rss { key, table }
    }

    /// Hash a 4-tuple and look up the target queue.
    pub fn steer(&self, src: [u8; 4], dst: [u8; 4], src_port: u16, dst_port: u16) -> u32 {
        let hash = toeplitz_hash(&self.key, &four_tuple_input(src, dst, src_port, dst_port));
        self.queue_for(hash)
    }

    /// Map an already-computed hash through the indirection table (the
    /// low-order bits index the table, as in hardware).
    pub fn queue_for(&self, hash: u32) -> u32 {
        self.table[hash as usize % self.table.len()]
    }

    /// Rewrite the indirection table (Elastic-RSS-style reconfiguration).
    pub fn set_table(&mut self, table: Vec<u32>) {
        assert!(!table.is_empty(), "indirection table must not be empty");
        self.table = table;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Microsoft's published IPv4 4-tuple verification suite.
    #[test]
    fn msdn_four_tuple_vectors() {
        type Case = ([u8; 4], u16, [u8; 4], u16, u32);
        let cases: &[Case] = &[
            (
                [66, 9, 149, 187],
                2794,
                [161, 142, 100, 80],
                1766,
                0x51cc_c178,
            ),
            (
                [199, 92, 111, 2],
                14230,
                [65, 69, 140, 83],
                4739,
                0xc626_b0ea,
            ),
            (
                [24, 19, 198, 95],
                12898,
                [12, 22, 207, 184],
                38024,
                0x5c2b_394a,
            ),
            (
                [38, 27, 205, 30],
                48228,
                [209, 142, 163, 6],
                2217,
                0xafc7_327f,
            ),
            (
                [153, 39, 163, 191],
                44251,
                [202, 188, 127, 2],
                1303,
                0x10e8_28a2,
            ),
        ];
        for &(src, sport, dst, dport, expect) in cases {
            let h = toeplitz_hash(&DEFAULT_KEY, &four_tuple_input(src, dst, sport, dport));
            assert_eq!(h, expect, "src {src:?}:{sport} dst {dst:?}:{dport}");
        }
    }

    /// Microsoft's published IPv4 2-tuple verification suite.
    #[test]
    fn msdn_two_tuple_vectors() {
        let cases: &[([u8; 4], [u8; 4], u32)] = &[
            ([66, 9, 149, 187], [161, 142, 100, 80], 0x323e_8fc2),
            ([199, 92, 111, 2], [65, 69, 140, 83], 0xd718_262a),
            ([24, 19, 198, 95], [12, 22, 207, 184], 0xd2d0_a5de),
            ([38, 27, 205, 30], [209, 142, 163, 6], 0x8298_9176),
            ([153, 39, 163, 191], [202, 188, 127, 2], 0x5d18_09c5),
        ];
        for &(src, dst, expect) in cases {
            let h = toeplitz_hash(&DEFAULT_KEY, &two_tuple_input(src, dst));
            assert_eq!(h, expect, "src {src:?} dst {dst:?}");
        }
    }

    #[test]
    fn steering_is_stable_per_flow() {
        let rss = Rss::new(8);
        let q1 = rss.steer([10, 0, 0, 1], [10, 0, 0, 2], 1234, 80);
        let q2 = rss.steer([10, 0, 0, 1], [10, 0, 0, 2], 1234, 80);
        assert_eq!(q1, q2, "same 4-tuple, same queue");
        assert!(q1 < 8);
    }

    #[test]
    fn many_flows_spread_across_queues() {
        let rss = Rss::new(8);
        let mut counts = [0usize; 8];
        for port in 0..4096u16 {
            let q = rss.steer([10, 0, 0, 1], [10, 0, 0, 2], port, 80);
            counts[q as usize] += 1;
        }
        // Every queue gets flows, and no queue gets everything.
        for (q, &c) in counts.iter().enumerate() {
            assert!(c > 0, "queue {q} starved");
            assert!(c < 4096, "queue {q} monopolized");
        }
    }

    #[test]
    fn indirection_table_rewrite_redirects_traffic() {
        let mut rss = Rss::new(4);
        // Pin everything to queue 3.
        rss.set_table(vec![3]);
        for port in 0..32u16 {
            assert_eq!(rss.steer([1, 2, 3, 4], [5, 6, 7, 8], port, 9), 3);
        }
    }

    #[test]
    #[should_panic(expected = "indirection table")]
    fn empty_table_rejected() {
        let _ = Rss::with_table(DEFAULT_KEY, vec![]);
    }

    #[test]
    #[should_panic(expected = "exceeds key coverage")]
    fn oversized_input_rejected() {
        let _ = toeplitz_hash(&DEFAULT_KEY, &[0u8; 37]);
    }
}
