//! Point-to-point link model: serialization + propagation delay.
//!
//! The evaluation uses dual-port 10 GbE (§3.3). A link transmits one frame
//! at a time: a frame of `n` wire bytes occupies the link for `n * 8 /
//! bandwidth` seconds (wire bytes include preamble, FCS, minimum-frame
//! padding and the inter-frame gap — see [`net_wire::ethernet::wire_occupancy`]),
//! then arrives `propagation` later. Back-to-back sends queue behind each
//! other, which is how the simulation develops honest congestion at high
//! offered load.

use net_wire::ethernet::wire_occupancy;
use sim_core::{Rng, SimDuration, SimTime};

/// A unidirectional link with finite bandwidth.
#[derive(Debug, Clone)]
pub struct Link {
    bits_per_sec: u64,
    propagation: SimDuration,
    /// The instant the transmitter becomes free.
    next_free: SimTime,
    /// Frames transmitted.
    pub frames: u64,
    /// Wire bytes transmitted (including framing overhead).
    pub wire_bytes: u64,
    /// Per-frame corruption/loss probability and its RNG stream.
    loss: Option<(f64, Rng)>,
    /// Frames lost to corruption.
    pub lost: u64,
}

impl Link {
    /// A link with the given bandwidth and propagation delay.
    pub fn new(bits_per_sec: u64, propagation: SimDuration) -> Link {
        assert!(bits_per_sec > 0, "link bandwidth must be positive");
        Link {
            bits_per_sec,
            propagation,
            next_free: SimTime::ZERO,
            frames: 0,
            wire_bytes: 0,
            loss: None,
            lost: 0,
        }
    }

    /// Add a per-frame loss probability (bit errors, switch drops) drawn
    /// from a deterministic stream. Lossy frames still occupy the wire —
    /// they are corrupted in flight, not suppressed at the sender.
    pub fn with_loss(mut self, probability: f64, rng: Rng) -> Link {
        assert!(
            (0.0..=1.0).contains(&probability),
            "loss probability out of range"
        );
        self.loss = Some((probability, rng));
        self
    }

    /// 10 GbE with in-rack propagation (cable + PHY, ~500 ns — kept in
    /// sync with `nicsched::params::NETWORK_PROPAGATION`).
    pub fn ten_gbe() -> Link {
        Link::new(10_000_000_000, SimDuration::from_nanos(500))
    }

    /// Serialization time for a frame whose Ethernet *payload* (IP packet)
    /// is `payload_len` bytes.
    pub fn serialization(&self, payload_len: usize) -> SimDuration {
        let wire_bits = wire_occupancy(payload_len) as u64 * 8;
        let bits = wire_bits as f64;
        let rate = self.bits_per_sec as f64;
        SimDuration::from_secs_f64(bits / rate)
    }

    /// Transmit a frame whose Ethernet payload is `payload_len` bytes at
    /// `now`; returns the instant the frame is fully received at the far
    /// end. Transmissions serialize: a busy link delays the frame.
    /// (Loss-free variant; see [`Link::transmit_lossy`].)
    pub fn transmit(&mut self, now: SimTime, payload_len: usize) -> SimTime {
        let start = if self.next_free > now {
            self.next_free
        } else {
            now
        };
        let ser = self.serialization(payload_len);
        self.next_free = start + ser;
        self.frames += 1;
        self.wire_bytes += wire_occupancy(payload_len) as u64;
        self.next_free + self.propagation
    }

    /// Like [`Link::transmit`], but the frame may be corrupted in flight
    /// when the link was built [`Link::with_loss`]: `None` means the
    /// receiver never sees a valid frame (its FCS check fails and the NIC
    /// discards it silently — the behaviour real hardware has).
    pub fn transmit_lossy(&mut self, now: SimTime, payload_len: usize) -> Option<SimTime> {
        let arrival = self.transmit(now, payload_len);
        if let Some((p, rng)) = &mut self.loss {
            if rng.chance(*p) {
                self.lost += 1;
                return None;
            }
        }
        Some(arrival)
    }

    /// The instant the transmitter becomes idle.
    pub fn free_at(&self) -> SimTime {
        self.next_free
    }

    /// Link utilization over `[0, now]`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        if now == SimTime::ZERO {
            return 0.0;
        }
        let busy = (self.wire_bytes * 8) as f64 / self.bits_per_sec as f64;
        (busy / now.as_secs_f64()).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_gbe_serialization_of_small_request() {
        let link = Link::ten_gbe();
        // 148-byte payload (64B-body request): wire = 8+14+148+4+12 = 186 B
        // = 1488 bits = 148.8 ns at 10 Gb/s.
        let ser = link.serialization(148);
        assert_eq!(ser.as_nanos(), 149);
    }

    #[test]
    fn arrival_includes_propagation() {
        let mut link = Link::new(1_000_000_000, SimDuration::from_micros(1));
        // 100-byte payload: wire = 138 B = 1104 bits = 1104 ns at 1 Gb/s.
        let arrive = link.transmit(SimTime::ZERO, 100);
        assert_eq!(arrive.as_nanos(), 1104 + 1000);
    }

    #[test]
    fn back_to_back_frames_queue() {
        let mut link = Link::new(1_000_000_000, SimDuration::ZERO);
        let a1 = link.transmit(SimTime::ZERO, 100); // finishes at 1104ns
        let a2 = link.transmit(SimTime::ZERO, 100); // must wait
        assert_eq!(a2.as_nanos(), a1.as_nanos() * 2);
        assert_eq!(link.frames, 2);
    }

    #[test]
    fn idle_gaps_are_not_carried_forward() {
        let mut link = Link::new(1_000_000_000, SimDuration::ZERO);
        link.transmit(SimTime::ZERO, 100);
        let late = SimTime::from_millis(1);
        let arrive = link.transmit(late, 100);
        assert_eq!(arrive, late + link.serialization(100));
    }

    #[test]
    fn utilization_accounting() {
        let mut link = Link::new(1_000_000_000, SimDuration::ZERO);
        // One 138-wire-byte frame in 11.04us ≈ 10% utilization.
        link.transmit(SimTime::ZERO, 100);
        let u = link.utilization(SimTime::from_nanos(11_040));
        assert!((u - 0.1).abs() < 0.001, "utilization {u}");
    }

    #[test]
    fn lossless_link_never_drops() {
        let mut link = Link::ten_gbe();
        for i in 0..100 {
            assert!(link.transmit_lossy(SimTime::from_micros(i), 100).is_some());
        }
        assert_eq!(link.lost, 0);
    }

    #[test]
    fn lossy_link_drops_at_the_configured_rate() {
        let mut link = Link::ten_gbe().with_loss(0.01, Rng::new(7));
        let mut delivered = 0;
        let n = 100_000;
        for i in 0..n {
            if link.transmit_lossy(SimTime::from_micros(i), 100).is_some() {
                delivered += 1;
            }
        }
        let rate = link.lost as f64 / n as f64;
        assert!((0.007..0.013).contains(&rate), "loss rate {rate}");
        assert_eq!(delivered + link.lost, n);
        // Lost frames still occupied the wire.
        assert_eq!(link.frames, n);
    }

    #[test]
    fn loss_is_deterministic_per_seed() {
        let run = || {
            let mut link = Link::ten_gbe().with_loss(0.05, Rng::new(3));
            (0..1000)
                .map(|i| link.transmit_lossy(SimTime::from_micros(i), 64).is_some())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "probability out of range")]
    fn invalid_loss_rejected() {
        let _ = Link::ten_gbe().with_loss(1.5, Rng::new(1));
    }

    #[test]
    fn min_frame_padding_counts_against_the_wire() {
        let link = Link::ten_gbe();
        // 1-byte and 46-byte payloads occupy identical wire time.
        assert_eq!(link.serialization(1), link.serialization(46));
    }
}
