//! # nic-model — SmartNIC and network-path models
//!
//! Everything between the wire and a CPU core in the `mindgap`
//! reproduction: the Toeplitz [`Rss`] engine with indirection table
//! (verified against Microsoft's published vectors), Intel-style
//! [`FlowDirector`] exact-match steering, SR-IOV MAC-based interface
//! steering with per-interface descriptor [`Ring`]s ([`NicDevice`]),
//! a finite-bandwidth [`Link`] model with honest serialization and
//! framing overheads, and the [`Ddio`] cache-placement model including the
//! paper's §5.2 L1-placement extension.
//!
//! The Stingray-specific compute costs (ARM dispatcher pipeline stages,
//! the 2.56 µs ARM↔host path) live in `nicsched::params`, the single
//! calibration source.

//! # Example
//!
//! ```
//! use nic_model::Rss;
//!
//! // Spread flows over 8 RX queues with the verified Toeplitz hash.
//! let rss = Rss::new(8);
//! let q = rss.steer([10, 0, 0, 1], [10, 0, 1, 0], 7123, 6000);
//! assert!(q < 8);
//! // Same 4-tuple, same queue — flows never migrate under RSS.
//! assert_eq!(q, rss.steer([10, 0, 0, 1], [10, 0, 1, 0], 7123, 6000));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ddio;
mod device;
mod flow_director;
mod link;
mod ring;
mod rss;

pub use ddio::{packet_lines, AccessLatencies, Ddio, Placement};
pub use device::{Iface, IfaceId, NicDevice, QueueSteering, SteerDecision};
pub use flow_director::{FlowDirector, FlowKey, InstallResult};
pub use link::Link;
pub use ring::{Ring, RxFrame};
pub use rss::{four_tuple_input, toeplitz_hash, two_tuple_input, Rss, DEFAULT_KEY};
