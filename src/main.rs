//! `mindgap` — command-line front end for the simulation.
//!
//! ```text
//! mindgap <system> [options]
//!
//! systems:
//!   offload    Shinjuku-Offload (dispatcher on the SmartNIC)   [default]
//!   shinjuku   vanilla Shinjuku (dispatcher on a host core)
//!   rss        IX-style RSS run-to-completion
//!   stealing   ZygOS-style RSS + work stealing
//!   flowdir    MICA-style Flow Director
//!   erss       Elastic RSS (us-scale core provisioning)
//!   ideal      Shinjuku-Offload on the ideal NIC (ASIC + coherent memory)
//!
//! options:
//!   --rps N            offered load, requests/second        [300000]
//!   --dist SPEC        fixed:<dur> | bimodal | exp:<dur> |
//!                      lognormal:<dur>:<sigma> | pareto:<dur>:<alpha>:<cap>
//!                                                           [bimodal]
//!   --workers N        worker cores                         [4]
//!   --cap N            outstanding requests per worker      [4]
//!   --slice DUR|off    preemption time slice                [10us]
//!   --body N           request body bytes                   [64]
//!   --measure-ms N     measurement window, milliseconds     [50]
//!   --seed N           RNG seed                             [1]
//!
//! durations: 500ns, 5us, 10ms, 1s
//! ```

use mindgap::nicsched::{params, NicProfile};
use mindgap::sim::SimDuration;
use mindgap::systems::baseline::{BaselineConfig, BaselineKind};
use mindgap::systems::offload::OffloadConfig;
use mindgap::systems::shinjuku::ShinjukuConfig;
use mindgap::systems::{ProbeConfig, ServerSystem};
use mindgap::workload::{RunMetrics, ServiceDist, WorkloadSpec};

fn usage() -> ! {
    eprint!("{}", USAGE);
    std::process::exit(2);
}

const USAGE: &str = "\
usage: mindgap <system> [options]

systems: offload (default) | shinjuku | rss | stealing | flowdir | erss | ideal

options:
  --rps N            offered load, requests/second        [300000]
  --dist SPEC        fixed:<dur> | bimodal | exp:<dur> |
                     lognormal:<dur>:<sigma> | pareto:<dur>:<alpha>:<cap>
                                                          [bimodal]
  --workers N        worker cores                         [4]
  --cap N            outstanding requests per worker      [4]
  --slice DUR|off    preemption time slice                [10us]
  --body N           request body bytes                   [64]
  --measure-ms N     measurement window, milliseconds     [50]
  --seed N           RNG seed                             [1]

durations: 500ns, 5us, 10ms, 1s
";

/// Parse a human duration: `500ns`, `2.56us`, `10ms`, `1s`.
fn parse_duration(s: &str) -> Option<SimDuration> {
    let (num, unit) = s.split_at(s.find(|c: char| c.is_ascii_alphabetic())?);
    let v: f64 = num.parse().ok()?;
    if v < 0.0 {
        return None;
    }
    let ns = match unit {
        "ns" => v,
        "us" => v * 1e3,
        "ms" => v * 1e6,
        "s" => v * 1e9,
        _ => return None,
    };
    Some(SimDuration::from_nanos(ns.round() as u64))
}

/// Parse a distribution spec (see usage).
fn parse_dist(s: &str) -> Option<ServiceDist> {
    let mut parts = s.split(':');
    let kind = parts.next()?;
    let dist = match kind {
        "bimodal" => ServiceDist::paper_bimodal(),
        "fixed" => ServiceDist::Fixed(parse_duration(parts.next()?)?),
        "exp" => ServiceDist::Exponential {
            mean: parse_duration(parts.next()?)?,
        },
        "lognormal" => ServiceDist::Lognormal {
            mean: parse_duration(parts.next()?)?,
            sigma: parts.next()?.parse().ok()?,
        },
        "pareto" => ServiceDist::Pareto {
            scale: parse_duration(parts.next()?)?,
            alpha: parts.next()?.parse().ok()?,
            cap: parse_duration(parts.next()?)?,
        },
        _ => return None,
    };
    parts.next().is_none().then_some(dist)
}

struct Options {
    system: String,
    rps: f64,
    dist: ServiceDist,
    workers: usize,
    cap: u32,
    slice: Option<SimDuration>,
    body: u16,
    measure_ms: u64,
    seed: u64,
}

fn parse_args(args: &[String]) -> Option<Options> {
    let mut opts = Options {
        system: "offload".into(),
        rps: 300_000.0,
        dist: ServiceDist::paper_bimodal(),
        workers: 4,
        cap: 4,
        slice: Some(params::TIME_SLICE),
        body: 64,
        measure_ms: 50,
        seed: 1,
    };
    let mut it = args.iter();
    let mut system_set = false;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--rps" => opts.rps = it.next()?.parse().ok().filter(|v| *v > 0.0)?,
            "--dist" => opts.dist = parse_dist(it.next()?)?,
            "--workers" => opts.workers = it.next()?.parse().ok().filter(|v| *v > 0)?,
            "--cap" => opts.cap = it.next()?.parse().ok().filter(|v| *v > 0)?,
            "--slice" => {
                let v = it.next()?;
                opts.slice = if v == "off" {
                    None
                } else {
                    Some(parse_duration(v)?)
                };
            }
            "--body" => opts.body = it.next()?.parse().ok()?,
            "--measure-ms" => opts.measure_ms = it.next()?.parse().ok().filter(|v| *v > 0)?,
            "--seed" => opts.seed = it.next()?.parse().ok()?,
            "--help" | "-h" => return None,
            s if !s.starts_with('-') && !system_set => {
                opts.system = s.to_string();
                system_set = true;
            }
            _ => return None,
        }
    }
    Some(opts)
}

fn run(opts: &Options) -> Option<RunMetrics> {
    let spec = WorkloadSpec {
        offered_rps: opts.rps,
        dist: opts.dist,
        body_len: opts.body,
        warmup: SimDuration::from_millis(5),
        measure: SimDuration::from_millis(opts.measure_ms),
        seed: opts.seed,
    };
    let m = match opts.system.as_str() {
        "offload" => OffloadConfig {
            time_slice: opts.slice,
            ..OffloadConfig::paper(opts.workers, opts.cap)
        }
        .run(spec, ProbeConfig::disabled()),
        "ideal" => OffloadConfig {
            time_slice: opts.slice,
            profile: NicProfile::ideal(),
            ..OffloadConfig::paper(opts.workers, opts.cap)
        }
        .run(spec, ProbeConfig::disabled()),
        "shinjuku" => ShinjukuConfig {
            workers: opts.workers,
            time_slice: opts.slice,
            ..ShinjukuConfig::paper(opts.workers)
        }
        .run(spec, ProbeConfig::disabled()),
        "rss" => BaselineConfig {
            workers: opts.workers,
            kind: BaselineKind::Rss,
        }
        .run(spec, ProbeConfig::disabled()),
        "stealing" => BaselineConfig {
            workers: opts.workers,
            kind: BaselineKind::RssStealing,
        }
        .run(spec, ProbeConfig::disabled()),
        "flowdir" => BaselineConfig {
            workers: opts.workers,
            kind: BaselineKind::FlowDirector,
        }
        .run(spec, ProbeConfig::disabled()),
        "erss" => BaselineConfig {
            workers: opts.workers,
            kind: BaselineKind::ElasticRss,
        }
        .run(spec, ProbeConfig::disabled()),
        _ => return None,
    };
    Some(m)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(opts) = parse_args(&args) else {
        usage()
    };
    let Some(m) = run(&opts) else { usage() };

    println!("system    {}", opts.system);
    println!("workload  {} at {:.0} req/s", opts.dist.label(), opts.rps);
    println!(
        "config    {} workers, cap {}, slice {}",
        opts.workers,
        opts.cap,
        opts.slice
            .map(|s| s.to_string())
            .unwrap_or_else(|| "off".into())
    );
    println!();
    println!("completed            {:>12}", m.completed);
    println!("achieved throughput  {:>12.0} req/s", m.achieved_rps);
    println!("median latency       {:>12}", m.p50);
    println!("p99 latency          {:>12}", m.p99);
    println!("p99.9 latency        {:>12}", m.p999);
    println!("p99 (short class)    {:>12}", m.p99_short);
    println!("p99 (long class)     {:>12}", m.p99_long);
    println!("preemptions          {:>12}", m.preemptions);
    println!("drops                {:>12}", m.dropped);
    println!(
        "worker utilization   {:>11.1}%",
        m.worker_utilization * 100.0
    );
    if m.saturated(0.05) {
        println!("\nNOTE: the system is saturated at this offered load.");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn durations_parse() {
        assert_eq!(parse_duration("500ns"), Some(SimDuration::from_nanos(500)));
        assert_eq!(
            parse_duration("2.56us"),
            Some(SimDuration::from_nanos(2_560))
        );
        assert_eq!(parse_duration("10ms"), Some(SimDuration::from_millis(10)));
        assert_eq!(parse_duration("1s"), Some(SimDuration::from_secs(1)));
        assert_eq!(parse_duration("10"), None);
        assert_eq!(parse_duration("xyz"), None);
        assert_eq!(parse_duration("-5us"), None);
    }

    #[test]
    fn dists_parse() {
        assert_eq!(parse_dist("bimodal"), Some(ServiceDist::paper_bimodal()));
        assert_eq!(
            parse_dist("fixed:5us"),
            Some(ServiceDist::Fixed(SimDuration::from_micros(5)))
        );
        assert!(matches!(
            parse_dist("exp:10us"),
            Some(ServiceDist::Exponential { .. })
        ));
        assert!(matches!(
            parse_dist("lognormal:10us:2"),
            Some(ServiceDist::Lognormal { .. })
        ));
        assert!(matches!(
            parse_dist("pareto:1us:1.5:1ms"),
            Some(ServiceDist::Pareto { .. })
        ));
        assert_eq!(parse_dist("fixed"), None);
        assert_eq!(parse_dist("nope:1us"), None);
        assert_eq!(parse_dist("fixed:5us:extra"), None);
    }

    #[test]
    fn args_parse_with_defaults() {
        let opts = parse_args(&[]).unwrap();
        assert_eq!(opts.system, "offload");
        assert_eq!(opts.workers, 4);

        let opts = parse_args(&[
            "shinjuku".into(),
            "--rps".into(),
            "100000".into(),
            "--slice".into(),
            "off".into(),
            "--workers".into(),
            "3".into(),
        ])
        .unwrap();
        assert_eq!(opts.system, "shinjuku");
        assert_eq!(opts.rps, 100_000.0);
        assert_eq!(opts.slice, None);
        assert_eq!(opts.workers, 3);
    }

    #[test]
    fn bad_args_rejected() {
        assert!(parse_args(&["--rps".into(), "abc".into()]).is_none());
        assert!(parse_args(&["--bogus".into()]).is_none());
        assert!(parse_args(&["--workers".into(), "0".into()]).is_none());
        assert!(parse_args(&["-h".into()]).is_none());
    }

    #[test]
    fn every_system_name_runs() {
        for system in [
            "offload", "shinjuku", "rss", "stealing", "flowdir", "erss", "ideal",
        ] {
            let opts = Options {
                system: system.into(),
                rps: 50_000.0,
                dist: ServiceDist::Fixed(SimDuration::from_micros(5)),
                workers: 2,
                cap: 2,
                slice: None,
                body: 64,
                measure_ms: 5,
                seed: 1,
            };
            let m = run(&opts).unwrap_or_else(|| panic!("{system} must run"));
            assert!(m.completed > 0, "{system}");
        }
        assert!(run(&Options {
            system: "unknown".into(),
            rps: 1.0,
            dist: ServiceDist::paper_bimodal(),
            workers: 1,
            cap: 1,
            slice: None,
            body: 0,
            measure_ms: 1,
            seed: 1,
        })
        .is_none());
    }
}
