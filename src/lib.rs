//! # mindgap — informed request scheduling at the NIC
//!
//! Facade crate for the reproduction of *"Mind the Gap: A Case for Informed
//! Request Scheduling at the NIC"* (Humphries, Kaffes, Mazières, Kozyrakis —
//! HotNets '19). Re-exports the workspace crates under one roof:
//!
//! * [`sim`] — deterministic discrete-event engine, clocks, RNG, statistics.
//! * [`wire`] — byte-accurate Ethernet/IPv4/UDP wire formats and the
//!   request/response application header.
//! * [`nic`] — NIC device model: RSS (Toeplitz), Flow Director, SR-IOV,
//!   descriptor rings, DMA/DDIO, link model, ARM-core compute model.
//! * [`cpu`] — host CPU substrate: cores, execution contexts, APIC timers
//!   (Linux vs Dune cost modes), posted interrupts, shared-memory queues.
//! * [`workload`] — service-time distributions, open-loop load generation,
//!   latency recording, load sweeps.
//! * [`nicsched`] — the paper's contribution: the informed-scheduling
//!   framework (core feedback, centralized queue, policies, preemption,
//!   the queuing optimization, the ideal-NIC model).
//! * [`systems`] — full-system assemblies: Shinjuku, Shinjuku-Offload, and
//!   the RSS / work-stealing / Flow-Director baselines.
//! * [`experiments`] — the harness that regenerates every figure in the
//!   paper's evaluation.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the full inventory.

#![forbid(unsafe_code)]

pub use cpu_model as cpu;
pub use experiments;
pub use net_wire as wire;
pub use nic_model as nic;
pub use nicsched;
pub use sim_core as sim;
pub use systems;
pub use workload;
